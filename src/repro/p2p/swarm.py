"""The swarm simulation: flow-level BitTorrent piece exchange.

The model is flow-level (bandwidth shares, not per-message): each round,
the aggregate *useful* upload capacity of seeds and partially-complete
leechers is allocated to downloading leechers, capped by their download
links. This reproduces the system-level phenomena the paper's studies
report — upload-limited swarms under ADSL asymmetry, slow downloads during
flashcrowds until enough peers convert to seeds, and post-completion seed
lingering sustaining the swarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.faults.models import MessageLossModel
from repro.p2p.peer import ContentDescriptor, Peer, PeerClass, PEER_CLASSES
from repro.p2p.tracker import Tracker
from repro.sim import Environment, Monitor
from repro.workload.arrivals import ArrivalProcess


@dataclass
class SwarmConfig:
    """Parameters of one swarm simulation."""

    content: ContentDescriptor
    #: (class name, probability) mix of arriving peers.
    peer_mix: Sequence[tuple[str, float]] = (
        ("adsl", 0.7), ("cable", 0.2), ("symmetric", 0.08),
        ("university", 0.02))
    initial_seeds: int = 2
    #: Bandwidth class of the origin seeds (a modest home seeder by
    #: default; use "university" for a well-provisioned publisher).
    seed_class: str = "cable"
    round_s: float = 10.0
    #: Protocol efficiency: fraction of raw bandwidth turned into payload.
    efficiency: float = 0.9
    seed_linger_s: float = 1800.0
    horizon_s: float = 4 * 3600.0
    #: A leecher with fraction f of the content uploads at
    #: upload * min(1, f / useful_fraction); models piece availability.
    useful_fraction: float = 0.25
    #: Fraction of transferred payload lost on the wire; lost pieces are
    #: re-requested, so downloads slow down but eventually complete.
    loss_rate: float = 0.0
    #: Mean leecher session length before churn aborts the download
    #: (None = no churn). Exponential sessions, drawn per round.
    mean_session_s: Optional[float] = None

    def __post_init__(self):
        total = sum(p for _, p in self.peer_mix)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"peer_mix probabilities sum to {total}, not 1")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.mean_session_s is not None and self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")


@dataclass
class SwarmResult:
    """Everything a study needs after a swarm run."""

    config: SwarmConfig
    peers: list[Peer]
    monitor: Monitor
    completed: list[Peer] = field(default_factory=list)

    @property
    def download_times(self) -> list[float]:
        return [p.download_time for p in self.completed]

    @property
    def mean_download_time(self) -> float:
        times = self.download_times
        return float(np.mean(times)) if times else float("nan")

    @property
    def completion_rate(self) -> float:
        leechers = [p for p in self.peers if not p.arrival_time < 0]
        if not leechers:
            return 0.0
        return len(self.completed) / len(leechers)

    @property
    def churned_count(self) -> int:
        return sum(1 for p in self.peers if p.aborted)

    @property
    def re_requested_mb(self) -> float:
        return float(sum(p.re_requested_mb for p in self.peers))

    def peak_swarm_size(self) -> int:
        series = self.monitor.series.get("swarm_size")
        return int(max(series.values)) if series and series.values else 0


class Swarm:
    """A single-torrent swarm running on the DES kernel."""

    def __init__(self, env: Environment, config: SwarmConfig,
                 tracker: Tracker, rng: np.random.Generator,
                 arrivals: Optional[ArrivalProcess] = None,
                 tracer=None, registry=None):
        self.env = env
        self.config = config
        self.tracker = tracker
        self.rng = rng
        self.arrivals = arrivals
        self.monitor = Monitor(env, registry=registry, namespace="p2p")
        #: Optional :class:`~repro.observability.Tracer`: the whole run is
        #: a ``p2p.swarm`` span; every leecher a ``p2p.download`` child
        #: (status ok / churned / incomplete).
        self.tracer = tracer
        if tracer is not None and tracer.env is None:
            tracer.bind(env)
        self._root_span = (tracer.start_span("p2p.swarm",
                                             torrent=config.content.torrent_id)
                           if tracer is not None else None)
        self._peer_spans: dict[int, object] = {}
        self.peers: list[Peer] = []
        self.completed: list[Peer] = []
        self.loss = (MessageLossModel(rng, config.loss_rate)
                     if config.loss_rate > 0 else None)
        #: Leechers that churned out before completing.
        self.churned = 0
        self._class_names = [name for name, _ in config.peer_mix]
        self._class_probs = [p for _, p in config.peer_mix]
        # Initial seeds: negative arrival time marks them as origin seeds.
        for _ in range(config.initial_seeds):
            seed = Peer(peer_class=PEER_CLASSES[config.seed_class],
                        arrival_time=-1.0,
                        downloaded_mb=config.content.size_mb,
                        is_seed=True,
                        seed_linger_s=float("inf"))
            self.peers.append(seed)
            self.tracker.announce(config.content.torrent_id, seed)
        self.process = env.process(self._run())

    # -- public ----------------------------------------------------------------
    def add_peer(self, peer_class: Optional[PeerClass] = None) -> Peer:
        """Admit one leecher now."""
        if peer_class is None:
            name = self.rng.choice(self._class_names, p=self._class_probs)
            peer_class = PEER_CLASSES[str(name)]
        peer = Peer(peer_class=peer_class, arrival_time=self.env.now,
                    seed_linger_s=self.config.seed_linger_s)
        self.peers.append(peer)
        if self.tracer is not None:
            self._peer_spans[id(peer)] = self.tracer.start_span(
                "p2p.download", parent=self._root_span,
                peer=len(self.peers) - 1,
                peer_class=peer.peer_class.name)
        self.tracker.announce(self.config.content.torrent_id, peer, self.rng)
        return peer

    def active_peers(self) -> list[Peer]:
        return [p for p in self.peers if p.active]

    # -- internals ----------------------------------------------------------
    def _run(self):
        cfg = self.config
        pending_arrivals = []
        if self.arrivals is not None:
            pending_arrivals = list(self.arrivals.times(cfg.horizon_s))
        arrival_idx = 0
        while self.env.now < cfg.horizon_s:
            # Admit peers that arrived since the last round.
            while (arrival_idx < len(pending_arrivals)
                   and pending_arrivals[arrival_idx] <= self.env.now):
                self.add_peer()
                arrival_idx += 1
            self._exchange_round(cfg.round_s)
            self._departures()
            self._record()
            yield self.env.timeout(cfg.round_s)

    def _exchange_round(self, dt: float) -> None:
        cfg = self.config
        size = cfg.content.size_mb
        active = self.active_peers()
        leechers = [p for p in active if not p.is_seed]
        if not leechers:
            return
        # Useful upload capacity (KB/s -> MB/s = /1024).
        supply_mbps = 0.0
        for peer in active:
            up = peer.peer_class.upload_kbps / 1024.0
            if peer.is_seed:
                supply_mbps += up
            else:
                fraction = peer.downloaded_mb / size
                supply_mbps += up * min(1.0, fraction / cfg.useful_fraction)
        supply_mbps *= cfg.efficiency
        # Demand: each leecher can take at most its download link.
        demands = np.array([
            min(p.peer_class.download_kbps / 1024.0,
                p.remaining_mb(size) / dt)
            for p in leechers
        ])
        total_demand = demands.sum()
        if total_demand <= 0:
            return
        scale = min(1.0, supply_mbps / total_demand)
        rates = demands * scale
        uploaded_total = float(rates.sum()) * dt
        # Charge uploads to contributors proportionally to their supply.
        uploaders = [(p, (p.peer_class.upload_kbps / 1024.0)
                      * (1.0 if p.is_seed else min(
                          1.0, (p.downloaded_mb / size) / cfg.useful_fraction)))
                     for p in active]
        supply_sum = sum(s for _, s in uploaders) or 1.0
        for peer, share in uploaders:
            peer.uploaded_mb += uploaded_total * share / supply_sum
        for peer, rate in zip(leechers, rates):
            transfer = rate * dt
            if self.loss is not None and transfer > 0:
                # Lost pieces consume the sender's bandwidth but deliver no
                # progress; the receiver re-requests them next rounds.
                goodput = self.loss.transfer(transfer)
                peer.re_requested_mb += transfer - goodput
                transfer = goodput
            peer.downloaded_mb = min(size, peer.downloaded_mb + transfer)
            if peer.downloaded_mb >= size - 1e-9 and not peer.is_seed:
                peer.is_seed = True
                peer.completed_at = self.env.now + dt
                self.completed.append(peer)
                span = self._peer_spans.pop(id(peer), None)
                if span is not None:
                    self.tracer.end_span(span, t=peer.completed_at,
                                         status="ok")

    def _departures(self) -> None:
        now = self.env.now
        cfg = self.config
        churn_p = (1.0 - float(np.exp(-cfg.round_s / cfg.mean_session_s))
                   if cfg.mean_session_s is not None else 0.0)
        for peer in self.active_peers():
            if (peer.is_seed and peer.completed_at is not None
                    and now - peer.completed_at >= peer.seed_linger_s):
                peer.departed_at = now
                self.tracker.depart(cfg.content.torrent_id, peer)
            elif (churn_p > 0.0 and not peer.is_seed
                    and peer.arrival_time >= 0
                    and self.rng.random() < churn_p):
                # Churn: the leecher gives up mid-download and leaves.
                peer.aborted = True
                peer.departed_at = now
                self.churned += 1
                self.monitor.count("churned")
                span = self._peer_spans.pop(id(peer), None)
                if span is not None:
                    self.tracer.end_span(span, status="churned")
                self.tracker.depart(cfg.content.torrent_id, peer)

    def _record(self) -> None:
        active = self.active_peers()
        seeds = sum(1 for p in active if p.is_seed)
        self.monitor.record("swarm_size", len(active))
        self.monitor.record("seeders", seeds)
        self.monitor.record("leechers", len(active) - seeds)
        if self.loss is not None:
            self.monitor.record("re_requested_mb", self.loss.lost_mb)

    def result(self) -> SwarmResult:
        if self.tracer is not None:
            # Close what the horizon cut off: leechers still downloading
            # and the run-root span itself.
            for peer in self.peers:
                span = self._peer_spans.pop(id(peer), None)
                if span is not None:
                    self.tracer.end_span(span, status="incomplete")
            if self._root_span is not None and not self._root_span.finished:
                self.tracer.end_span(self._root_span,
                                     completed=len(self.completed),
                                     churned=self.churned)
        return SwarmResult(config=self.config, peers=self.peers,
                           monitor=self.monitor, completed=self.completed)


def run_swarm(config: SwarmConfig, tracker: Tracker,
              rng: np.random.Generator,
              arrivals: Optional[ArrivalProcess] = None,
              env: Optional[Environment] = None,
              tracer=None, registry=None) -> SwarmResult:
    """Convenience wrapper: build, run to the horizon, return the result."""
    env = env or Environment()
    swarm = Swarm(env, config, tracker, rng, arrivals,
                  tracer=tracer, registry=registry)
    env.run(until=config.horizon_s)
    return swarm.result()
