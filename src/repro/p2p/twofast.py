"""2fast: collaborative downloads in P2P networks (the paper's [68]).

In a reciprocity-driven (tit-for-tat) swarm, a peer's achievable download
rate is roughly what its upload contribution earns plus a small altruistic
share from seeds. Under ADSL asymmetry the upload link is the binding
constraint — the [62] phenomenon that motivated 2fast.

2fast lets a *collector* enlist *helpers* whose incentive to share "does
not need immediate repay": helpers spend their own upload capacity on the
collector's behalf, so the group contribution (and hence the earned
download rate) grows with every helper, until the collector's download
link saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p2p.peer import PEER_CLASSES, PeerClass
from repro.sim import Environment


@dataclass
class TwoFastResult:
    """Download times for a collector with 0..max_helpers helpers."""

    content_size_mb: float
    peer_class: PeerClass
    download_times: list[float]  # index = number of helpers

    @property
    def solo_time(self) -> float:
        return self.download_times[0]

    def speedup(self, helpers: int) -> float:
        return self.solo_time / self.download_times[helpers]

    @property
    def max_speedup(self) -> float:
        return self.solo_time / min(self.download_times)

    @property
    def saturation_helpers(self) -> int:
        """First helper count at which adding helpers stops paying (<2%)."""
        for k in range(1, len(self.download_times)):
            if self.download_times[k] > self.download_times[k - 1] * 0.98:
                return k - 1
        return len(self.download_times) - 1


def collector_rate_mbps(peer_class: PeerClass, helpers: int,
                        reciprocity: float = 1.0,
                        seed_altruism_kbps: float = 32.0) -> float:
    """Achievable download rate of a collector with ``helpers`` helpers.

    Earned rate = group upload × reciprocity + altruism, capped by the
    collector's download link. All helpers share the collector's class.
    """
    if helpers < 0:
        raise ValueError("helpers must be >= 0")
    group_upload_kbps = peer_class.upload_kbps * (1 + helpers)
    earned_kbps = group_upload_kbps * reciprocity + seed_altruism_kbps
    return min(earned_kbps, peer_class.download_kbps) / 1024.0


def run_2fast_experiment(content_size_mb: float = 700.0,
                         peer_class_name: str = "adsl",
                         max_helpers: int = 10,
                         reciprocity: float = 1.0,
                         seed_altruism_kbps: float = 32.0,
                         round_s: float = 10.0) -> TwoFastResult:
    """Simulate collector downloads with 0..max_helpers helpers.

    Each configuration runs as a DES process accumulating content at the
    earned rate; returns per-helper-count download times.
    """
    if content_size_mb <= 0:
        raise ValueError("content size must be positive")
    peer_class = PEER_CLASSES[peer_class_name]
    times: list[float] = []
    for helpers in range(max_helpers + 1):
        env = Environment()
        rate = collector_rate_mbps(peer_class, helpers, reciprocity,
                                   seed_altruism_kbps)
        done = {}

        def download(env, rate=rate, done=done):
            fetched = 0.0
            while fetched < content_size_mb:
                yield env.timeout(round_s)
                fetched += rate * round_s
            done["time"] = env.now

        env.process(download(env))
        env.run()
        times.append(done["time"])
    return TwoFastResult(content_size_mb=content_size_mb,
                         peer_class=peer_class, download_times=times)
