"""Ecosystem-level analytics over swarms and monitor data.

Implements the analyses behind the Table 5 studies:

- aliased media detection ([61]): group swarms sharing the same content
  in different formats;
- bandwidth asymmetry ([62]): the ecosystem-wide upload/download imbalance;
- flashcrowd identification ([66]): sustained arrival-rate spikes;
- giant swarms ([63]): the heavy tail of swarm sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.p2p.peer import ContentDescriptor, Peer
from repro.p2p.swarm import SwarmResult


@dataclass
class AliasGroup:
    """Swarms sharing one underlying content in several formats."""

    content_key: str
    formats: list[str]
    total_peers: int

    @property
    def alias_count(self) -> int:
        return len(self.formats)

    @property
    def is_aliased(self) -> bool:
        return self.alias_count > 1


def detect_aliased_media(descriptors: Sequence[ContentDescriptor],
                         swarm_sizes: Sequence[int]) -> list[AliasGroup]:
    """Group torrents by content key; report aliasing and peer dilution."""
    if len(descriptors) != len(swarm_sizes):
        raise ValueError("descriptors and swarm_sizes must align")
    groups: dict[str, AliasGroup] = {}
    for desc, size in zip(descriptors, swarm_sizes):
        group = groups.get(desc.content_key)
        if group is None:
            group = AliasGroup(content_key=desc.content_key, formats=[],
                               total_peers=0)
            groups[desc.content_key] = group
        if desc.format not in group.formats:
            group.formats.append(desc.format)
        group.total_peers += int(size)
    return sorted(groups.values(), key=lambda g: (-g.alias_count,
                                                  g.content_key))


def aliasing_dilution(groups: Sequence[AliasGroup]) -> float:
    """Mean peers-per-format among aliased groups over non-aliased ones.

    < 1 means aliasing splits communities into smaller, slower swarms —
    the operational cost of aliased media the [61] study characterizes.
    """
    aliased = [g for g in groups if g.is_aliased]
    plain = [g for g in groups if not g.is_aliased]
    if not aliased or not plain:
        return float("nan")
    per_format_aliased = np.mean(
        [g.total_peers / g.alias_count for g in aliased])
    per_swarm_plain = np.mean([g.total_peers for g in plain])
    if per_swarm_plain == 0:
        return float("nan")
    return float(per_format_aliased / per_swarm_plain)


def bandwidth_asymmetry(peers: Sequence[Peer]) -> dict[str, float]:
    """Ecosystem-wide capacity imbalance ([62]'s headline measurement)."""
    if not peers:
        raise ValueError("no peers to analyze")
    down = np.array([p.peer_class.download_kbps for p in peers])
    up = np.array([p.peer_class.upload_kbps for p in peers])
    return {
        "mean_download_kbps": float(down.mean()),
        "mean_upload_kbps": float(up.mean()),
        "capacity_ratio": float(down.sum() / up.sum()),
        "asymmetric_fraction": float(np.mean(down > up * 1.5)),
    }


@dataclass
class Flashcrowd:
    """One detected flashcrowd episode."""

    start: float
    end: float
    peak_rate: float
    baseline_rate: float

    @property
    def magnitude(self) -> float:
        return self.peak_rate / max(self.baseline_rate, 1e-12)

    @property
    def duration(self) -> float:
        return self.end - self.start


def detect_flashcrowds(arrival_times: Sequence[float],
                       window_s: float = 600.0,
                       threshold: float = 5.0) -> list[Flashcrowd]:
    """The [66] method (simplified): windows whose arrival rate exceeds
    ``threshold`` × the median window rate form flashcrowd episodes."""
    times = np.asarray(sorted(arrival_times), dtype=float)
    if times.size < 10:
        return []
    t0, t1 = times[0], times[-1]
    edges = np.arange(t0, t1 + window_s, window_s)
    counts, _ = np.histogram(times, bins=edges)
    rates = counts / window_s
    baseline = float(np.median(rates))
    if baseline <= 0:
        positive = rates[rates > 0]
        baseline = float(positive.min()) if positive.size else 0.0
    if baseline <= 0:
        return []
    hot = rates >= threshold * baseline
    episodes: list[Flashcrowd] = []
    i = 0
    while i < hot.size:
        if hot[i]:
            j = i
            while j + 1 < hot.size and hot[j + 1]:
                j += 1
            episodes.append(Flashcrowd(
                start=float(edges[i]), end=float(edges[j + 1]),
                peak_rate=float(rates[i:j + 1].max()),
                baseline_rate=baseline))
            i = j + 1
        else:
            i += 1
    return episodes


def giant_swarms(swarm_sizes: Sequence[int],
                 giant_threshold_quantile: float = 0.99
                 ) -> dict[str, float]:
    """Heavy-tail statistics of swarm sizes ([63]'s giant swarms)."""
    sizes = np.asarray(swarm_sizes, dtype=float)
    if sizes.size == 0:
        raise ValueError("no swarm sizes")
    threshold = float(np.quantile(sizes, giant_threshold_quantile))
    giants = sizes[sizes >= threshold]
    return {
        "n_swarms": int(sizes.size),
        "giant_threshold": threshold,
        "n_giants": int(giants.size),
        "giant_peer_share": float(giants.sum() / sizes.sum())
        if sizes.sum() else 0.0,
        "max_size": float(sizes.max()),
        "median_size": float(np.median(sizes)),
    }


def mean_download_slowdown_during(result: SwarmResult,
                                  start: float, end: float) -> float:
    """Mean download time of peers arriving in [start, end) over the mean
    of peers arriving outside it — the flashcrowd degradation measure."""
    inside = [p.download_time for p in result.completed
              if start <= p.arrival_time < end]
    outside = [p.download_time for p in result.completed
               if not start <= p.arrival_time < end]
    if not inside or not outside:
        return float("nan")
    return float(np.mean(inside) / np.mean(outside))
