"""Trackers: swarm membership directories, honest and spammy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.p2p.peer import Peer


@dataclass
class TrackerStats:
    """A scrape response: seeders/leechers per torrent at a moment."""

    torrent_id: str
    time: float
    seeders: int
    leechers: int

    @property
    def swarm_size(self) -> int:
        return self.seeders + self.leechers


class Tracker:
    """An honest tracker: tracks peers per torrent, answers announces
    and scrapes truthfully."""

    def __init__(self, name: str):
        self.name = name
        self._swarms: dict[str, dict[int, Peer]] = {}
        self.announce_count = 0
        self.scrape_count = 0

    def __repr__(self) -> str:
        return f"<Tracker {self.name}: {len(self._swarms)} torrents>"

    @property
    def is_spam(self) -> bool:
        return False

    def torrents(self) -> list[str]:
        return sorted(self._swarms)

    def announce(self, torrent_id: str, peer: Peer,
                 rng: Optional[np.random.Generator] = None,
                 max_peers: int = 50) -> list[Peer]:
        """Register the peer; return up to ``max_peers`` other peers."""
        self.announce_count += 1
        swarm = self._swarms.setdefault(torrent_id, {})
        swarm[peer.peer_id] = peer
        others = [p for pid, p in swarm.items()
                  if pid != peer.peer_id and p.active]
        if len(others) > max_peers:
            if rng is None:
                others = others[:max_peers]
            else:
                idx = rng.choice(len(others), size=max_peers, replace=False)
                others = [others[int(i)] for i in idx]
        return others

    def depart(self, torrent_id: str, peer: Peer) -> None:
        swarm = self._swarms.get(torrent_id, {})
        swarm.pop(peer.peer_id, None)

    def scrape(self, torrent_id: str, time: float) -> TrackerStats:
        self.scrape_count += 1
        swarm = self._swarms.get(torrent_id, {})
        active = [p for p in swarm.values() if p.active]
        seeders = sum(1 for p in active if p.is_seed)
        return TrackerStats(torrent_id=torrent_id, time=time,
                            seeders=seeders,
                            leechers=len(active) - seeders)


class SpamTracker(Tracker):
    """A spam tracker ([63]): reports inflated, fabricated swarm statistics
    and returns fake peer lists — inserted 'by unidentified entities to
    presumably mislead and track BT-users'."""

    def __init__(self, name: str, rng: np.random.Generator,
                 inflation: float = 20.0):
        super().__init__(name)
        if inflation < 1:
            raise ValueError("inflation must be >= 1")
        self.rng = rng
        self.inflation = inflation

    @property
    def is_spam(self) -> bool:
        return True

    def scrape(self, torrent_id: str, time: float) -> TrackerStats:
        self.scrape_count += 1
        # Fabricate statistics regardless of real membership.
        fake_total = int(self.rng.integers(100, 1000) * self.inflation)
        fake_seeders = int(fake_total * float(self.rng.uniform(0.3, 0.7)))
        return TrackerStats(torrent_id=torrent_id, time=time,
                            seeders=fake_seeders,
                            leechers=fake_total - fake_seeders)

    def announce(self, torrent_id: str, peer: Peer,
                 rng: Optional[np.random.Generator] = None,
                 max_peers: int = 50) -> list[Peer]:
        """Returns an empty (useless) peer list; still logs the announce —
        the tracking part of the spam."""
        self.announce_count += 1
        self._swarms.setdefault(torrent_id, {})[peer.peer_id] = peer
        return []
