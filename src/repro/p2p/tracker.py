"""Trackers: swarm membership directories, honest and spammy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.p2p.peer import Peer


@dataclass
class TrackerStats:
    """A scrape response: seeders/leechers per torrent at a moment."""

    torrent_id: str
    time: float
    seeders: int
    leechers: int

    @property
    def swarm_size(self) -> int:
        return self.seeders + self.leechers


class Tracker:
    """An honest tracker: tracks peers per torrent, answers announces
    and scrapes truthfully."""

    def __init__(self, name: str):
        self.name = name
        self._swarms: dict[str, dict[int, Peer]] = {}
        self.announce_count = 0
        self.scrape_count = 0

    def __repr__(self) -> str:
        return f"<Tracker {self.name}: {len(self._swarms)} torrents>"

    @property
    def is_spam(self) -> bool:
        return False

    def torrents(self) -> list[str]:
        return sorted(self._swarms)

    def announce(self, torrent_id: str, peer: Peer,
                 rng: Optional[np.random.Generator] = None,
                 max_peers: int = 50) -> list[Peer]:
        """Register the peer; return up to ``max_peers`` other peers."""
        self.announce_count += 1
        swarm = self._swarms.setdefault(torrent_id, {})
        swarm[peer.peer_id] = peer
        others = [p for pid, p in swarm.items()
                  if pid != peer.peer_id and p.active]
        if len(others) > max_peers:
            if rng is None:
                others = others[:max_peers]
            else:
                idx = rng.choice(len(others), size=max_peers, replace=False)
                others = [others[int(i)] for i in idx]
        return others

    def depart(self, torrent_id: str, peer: Peer) -> None:
        swarm = self._swarms.get(torrent_id, {})
        swarm.pop(peer.peer_id, None)

    def scrape(self, torrent_id: str, time: float) -> TrackerStats:
        self.scrape_count += 1
        swarm = self._swarms.get(torrent_id, {})
        active = [p for p in swarm.values() if p.active]
        seeders = sum(1 for p in active if p.is_seed)
        return TrackerStats(torrent_id=torrent_id, time=time,
                            seeders=seeders,
                            leechers=len(active) - seeders)


class HeartbeatTracker(Tracker):
    """A tracker that believes announces instead of reading ground truth.

    The plain :class:`Tracker` filters peer lists by ``p.active`` — the
    simulator's omniscient view of which peers are up, which no real
    tracker has. This one treats announces as heartbeats: a peer is
    *believed* live while its last announce for the torrent is younger
    than ``liveness_timeout_s``. Peers that churn away without a polite
    ``depart`` linger until the timeout expires (stale entries handed to
    other peers), and scrapes garbage-collect and count only believed-live
    peers — the failure-detection trade-off of Section "P3" at the
    membership layer.
    """

    def __init__(self, name: str, env, liveness_timeout_s: float = 120.0):
        super().__init__(name)
        if liveness_timeout_s <= 0:
            raise ValueError("liveness_timeout_s must be positive")
        self.env = env
        self.liveness_timeout_s = liveness_timeout_s
        #: Last announce time per (torrent, peer).
        self._last_seen: dict[str, dict[int, float]] = {}
        #: Entries garbage-collected after missing their timeout.
        self.expired = 0

    def believed_live(self, torrent_id: str, peer_id: int) -> bool:
        seen = self._last_seen.get(torrent_id, {}).get(peer_id)
        return (seen is not None
                and self.env.now - seen <= self.liveness_timeout_s)

    def announce(self, torrent_id: str, peer: Peer,
                 rng: Optional[np.random.Generator] = None,
                 max_peers: int = 50) -> list[Peer]:
        """Register the announce as a heartbeat; return believed-live peers.

        Note the returned list may contain peers that are already gone
        (announced recently, crashed since) — the price of not being
        omniscient.
        """
        self.announce_count += 1
        swarm = self._swarms.setdefault(torrent_id, {})
        swarm[peer.peer_id] = peer
        self._last_seen.setdefault(torrent_id, {})[peer.peer_id] = self.env.now
        others = [p for pid, p in swarm.items()
                  if pid != peer.peer_id
                  and self.believed_live(torrent_id, pid)]
        if len(others) > max_peers:
            if rng is None:
                others = others[:max_peers]
            else:
                idx = rng.choice(len(others), size=max_peers, replace=False)
                others = [others[int(i)] for i in idx]
        return others

    def depart(self, torrent_id: str, peer: Peer) -> None:
        super().depart(torrent_id, peer)
        self._last_seen.get(torrent_id, {}).pop(peer.peer_id, None)

    def _gc(self, torrent_id: str) -> None:
        seen = self._last_seen.get(torrent_id, {})
        swarm = self._swarms.get(torrent_id, {})
        cutoff = self.env.now - self.liveness_timeout_s
        stale = [pid for pid, t in seen.items() if t < cutoff]
        for pid in stale:
            del seen[pid]
            swarm.pop(pid, None)
            self.expired += 1

    def scrape(self, torrent_id: str, time: float) -> TrackerStats:
        """Counts believed-live peers (and expires stale entries)."""
        self.scrape_count += 1
        self._gc(torrent_id)
        swarm = self._swarms.get(torrent_id, {})
        live = [p for pid, p in swarm.items()
                if self.believed_live(torrent_id, pid)]
        seeders = sum(1 for p in live if p.is_seed)
        return TrackerStats(torrent_id=torrent_id, time=time,
                            seeders=seeders,
                            leechers=len(live) - seeders)


def reannounce_process(env, tracker: Tracker, torrent_id: str, peer: Peer,
                       interval_s: float,
                       rng: Optional[np.random.Generator] = None):
    """A peer's periodic re-announce loop (its tracker heartbeat).

    Run as ``env.process(reannounce_process(...))``. Announces every
    ``interval_s`` (with up to 10% deterministic-seeded jitter when ``rng``
    is given) while the peer is active; stops silently when the peer churns
    away — exactly the impolite departure the heartbeat tracker exists to
    survive.
    """
    while peer.active:
        tracker.announce(torrent_id, peer, rng=rng)
        delay = interval_s
        if rng is not None:
            delay *= 1.0 + 0.1 * (2.0 * float(rng.random()) - 1.0)
        yield env.timeout(delay)


class SpamTracker(Tracker):
    """A spam tracker ([63]): reports inflated, fabricated swarm statistics
    and returns fake peer lists — inserted 'by unidentified entities to
    presumably mislead and track BT-users'."""

    def __init__(self, name: str, rng: np.random.Generator,
                 inflation: float = 20.0):
        super().__init__(name)
        if inflation < 1:
            raise ValueError("inflation must be >= 1")
        self.rng = rng
        self.inflation = inflation

    @property
    def is_spam(self) -> bool:
        return True

    def scrape(self, torrent_id: str, time: float) -> TrackerStats:
        self.scrape_count += 1
        # Fabricate statistics regardless of real membership.
        fake_total = int(self.rng.integers(100, 1000) * self.inflation)
        fake_seeders = int(fake_total * float(self.rng.uniform(0.3, 0.7)))
        return TrackerStats(torrent_id=torrent_id, time=time,
                            seeders=fake_seeders,
                            leechers=fake_total - fake_seeders)

    def announce(self, torrent_id: str, peer: Peer,
                 rng: Optional[np.random.Generator] = None,
                 max_peers: int = 50) -> list[Peer]:
        """Returns an empty (useless) peer list; still logs the announce —
        the tracking part of the spam."""
        self.announce_count += 1
        self._swarms.setdefault(torrent_id, {})[peer.peer_id] = peer
        return []
