"""BitTorrent-style P2P ecosystem (paper §6.1, Table 5).

A flow-level swarm simulator with the mechanisms the paper's P2P studies
measured or designed:

- :mod:`repro.p2p.peer` — peers with asymmetric (ADSL) bandwidth, seeds and
  leechers, content descriptors with *aliased media* (the same content in
  several formats, the [61] discovery);
- :mod:`repro.p2p.tracker` — trackers (including the spam trackers the
  BTWorld study [63] uncovered);
- :mod:`repro.p2p.swarm` — the swarm simulation: piece exchange, choking,
  flashcrowd arrivals, seed lingering, per-peer download times;
- :mod:`repro.p2p.twofast` — the 2fast collaborative-download protocol
  [68]: helpers donate idle upload capacity to a collector;
- :mod:`repro.p2p.monitor` — a BTWorld-style global monitor sampling
  trackers, plus the sampling-bias meta-analysis of [65];
- :mod:`repro.p2p.analytics` — ecosystem analytics: aliased-media
  detection, bandwidth-asymmetry measurement, flashcrowd identification,
  giant-swarm statistics.
"""

from repro.p2p.peer import ContentDescriptor, Peer, PeerClass, PEER_CLASSES
from repro.p2p.tracker import (
    HeartbeatTracker,
    SpamTracker,
    Tracker,
    TrackerStats,
    reannounce_process,
)
from repro.p2p.swarm import Swarm, SwarmConfig, SwarmResult, run_swarm
from repro.p2p.twofast import TwoFastResult, run_2fast_experiment
from repro.p2p.monitor import BTWorldMonitor, SamplingBiasReport, bias_study
from repro.p2p.analytics import (
    AliasGroup,
    bandwidth_asymmetry,
    detect_aliased_media,
    detect_flashcrowds,
    giant_swarms,
)

__all__ = [
    "AliasGroup",
    "BTWorldMonitor",
    "ContentDescriptor",
    "HeartbeatTracker",
    "PEER_CLASSES",
    "Peer",
    "PeerClass",
    "SamplingBiasReport",
    "SpamTracker",
    "Swarm",
    "SwarmConfig",
    "SwarmResult",
    "Tracker",
    "TrackerStats",
    "TwoFastResult",
    "bandwidth_asymmetry",
    "bias_study",
    "detect_aliased_media",
    "detect_flashcrowds",
    "giant_swarms",
    "reannounce_process",
    "run_2fast_experiment",
    "run_swarm",
]
