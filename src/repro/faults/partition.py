"""Partition and gray-failure fault models.

The crash/loss palette of :mod:`repro.faults.models` covers components
that *die*; ecosystems mostly suffer components that merely become
unreachable or unreliable. This module adds the two regimes the paper's
availability challenge (C6) turns on:

- :class:`NetworkPartitionModel` — named node-groups and scheduled
  split/heal episodes, including asymmetric ("one-way") partitions where
  traffic flows in only one direction. Attachable to a
  :class:`~repro.sim.Network` via its ``blocks`` hook.
- :class:`GrayFailureModel` — the node that is *heartbeat-alive but
  service-degraded* (Huang et al.'s "gray failure"): responses slow by a
  factor, error rates climb, and data-plane messages are partially
  dropped, while the control-plane liveness signal stays healthy. It
  exposes per-node :meth:`target` adapters speaking the
  ``fail``/``repair``/``is_up`` protocol, so a
  :class:`~repro.faults.CorrelatedBurst` can gray out a correlated
  fraction of nodes exactly as it crashes them.

Both are deterministic replayable: schedules are data, and any
randomness (episode generation, error/drop draws) comes from named
:class:`~repro.sim.RandomStreams` streams supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from repro.sim import Environment, Monitor

__all__ = ["GrayFailureModel", "NetworkPartitionModel", "PartitionEpisode",
           "ScheduledMessageLoss"]

_DIRECTIONS = ("both", "outbound", "inbound")


@dataclass(frozen=True)
class PartitionEpisode:
    """One scheduled split: ``isolate`` is cut off during [start, end).

    ``direction`` shapes the cut: ``"both"`` severs all traffic crossing
    the group boundary; ``"outbound"`` blocks only messages *from* the
    isolated group (its announcements vanish but it still hears the
    world); ``"inbound"`` blocks only messages *to* it (it shouts into
    the void that no longer answers) — the two asymmetric halves real
    switch/firewall faults produce.
    """

    start_s: float
    end_s: float
    isolate: str
    direction: str = "both"

    def __post_init__(self):
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError(
                f"episode needs 0 <= start_s < end_s, got "
                f"[{self.start_s}, {self.end_s})")
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"direction must be one of {_DIRECTIONS}, "
                             f"got {self.direction!r}")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def severs(self, now: float, src_inside: bool, dst_inside: bool) -> bool:
        """Whether this episode blocks a src->dst message at ``now``."""
        if not self.active(now) or src_inside == dst_inside:
            return False
        if self.direction == "both":
            return True
        if self.direction == "outbound":
            return src_inside
        return dst_inside

    def as_dict(self) -> dict:
        """A JSON-able representation; :meth:`from_dict` round-trips it."""
        return {"start_s": self.start_s, "end_s": self.end_s,
                "isolate": self.isolate, "direction": self.direction}

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionEpisode":
        return cls(start_s=float(data["start_s"]), end_s=float(data["end_s"]),
                   isolate=str(data["isolate"]),
                   direction=str(data.get("direction", "both")))


class NetworkPartitionModel:
    """Scheduled network splits over named node-groups.

    ``groups`` maps group name -> node names; nodes outside every group
    form the implicit majority side of any cut. The ``blocks`` hook is a
    pure function of sim time (no RNG at query time), so attaching the
    model never perturbs the event order of fault-free traffic — the
    determinism property every chaos scenario leans on.
    """

    def __init__(self, env: Environment, groups: dict[str, Sequence[str]],
                 episodes: Iterable[PartitionEpisode],
                 monitor: Optional[Monitor] = None,
                 on_split: Optional[Callable[[PartitionEpisode], None]] = None,
                 on_heal: Optional[Callable[[PartitionEpisode], None]] = None,
                 name: str = "partition"):
        self.env = env
        self.groups = {g: list(members) for g, members in groups.items()}
        self.episodes = sorted(episodes,
                               key=lambda e: (e.start_s, e.end_s, e.isolate))
        for episode in self.episodes:
            if episode.isolate not in self.groups:
                raise ValueError(f"episode isolates unknown group "
                                 f"{episode.isolate!r}; "
                                 f"known: {sorted(self.groups)}")
        self._group_of: dict[str, str] = {}
        for group, members in self.groups.items():
            for node in members:
                self._group_of[str(node)] = group
        self.monitor = monitor
        self.on_split = on_split
        self.on_heal = on_heal
        self.name = name
        self.splits = 0
        self.heals = 0
        #: Messages this model refused (incremented via :meth:`blocks`).
        self.blocked = 0
        if self.episodes:
            env.process(self._timeline())

    @classmethod
    def random_episodes(cls, rng: np.random.Generator,
                        groups: Sequence[str], n: int,
                        horizon_s: float, mean_duration_s: float,
                        one_way_p: float = 0.0) -> list[PartitionEpisode]:
        """Draw up to ``n`` episodes from a named stream (for chaos sweeps).

        Episodes of the same group never overlap: after sampling, each
        half-open ``[start, end)`` is clipped to start at or after the
        previous episode of its group ends; an episode swallowed whole by
        the clip is dropped (so fewer than ``n`` may come back). The same
        stream state always yields the identical timeline.
        """
        if n < 0 or horizon_s <= 0 or mean_duration_s <= 0:
            raise ValueError("need n >= 0, positive horizon and duration")
        episodes = []
        for _ in range(n):
            start = float(rng.uniform(0.0, horizon_s))
            duration = max(1e-3, float(rng.exponential(mean_duration_s)))
            isolate = str(groups[int(rng.integers(len(groups)))])
            direction = "both"
            if one_way_p > 0 and float(rng.random()) < one_way_p:
                direction = ("outbound" if float(rng.random()) < 0.5
                             else "inbound")
            episodes.append(PartitionEpisode(start, start + duration,
                                             isolate, direction))
        episodes.sort(key=lambda e: (e.start_s, e.end_s, e.isolate))
        clipped: list[PartitionEpisode] = []
        last_end: dict[str, float] = {}
        for episode in episodes:
            floor = last_end.get(episode.isolate, 0.0)
            start = max(episode.start_s, floor)
            if start >= episode.end_s:
                continue  # swallowed by the previous episode of its group
            if start != episode.start_s:
                episode = PartitionEpisode(start, episode.end_s,
                                           episode.isolate, episode.direction)
            last_end[episode.isolate] = episode.end_s
            clipped.append(episode)
        return clipped

    # -- Network model protocol --------------------------------------------
    def blocks(self, src: str, dst: str) -> bool:
        now = self.env.now
        for episode in self.episodes:
            group = episode.isolate
            src_inside = self._group_of.get(str(src)) == group
            dst_inside = self._group_of.get(str(dst)) == group
            if episode.severs(now, src_inside, dst_inside):
                self.blocked += 1
                return True
        return False

    # -- introspection -----------------------------------------------------
    def isolated(self, now: Optional[float] = None) -> list[str]:
        """Nodes currently on the isolated side of any active episode."""
        now = self.env.now if now is None else now
        cut: list[str] = []
        for episode in self.episodes:
            if episode.active(now):
                cut.extend(n for n in self.groups[episode.isolate]
                           if n not in cut)
        return cut

    def _timeline(self):
        """Bookkeeping process: count and announce split/heal edges."""
        events = sorted(
            [(e.start_s, 0, e) for e in self.episodes]
            + [(e.end_s, 1, e) for e in self.episodes])
        for at, is_heal, episode in events:
            delay = at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if is_heal:
                self.heals += 1
                if self.monitor is not None:
                    self.monitor.count("heals", key=episode.isolate)
                if self.on_heal is not None:
                    self.on_heal(episode)
            else:
                self.splits += 1
                if self.monitor is not None:
                    self.monitor.count("splits", key=episode.isolate)
                if self.on_split is not None:
                    self.on_split(episode)


class _GrayTarget:
    """Adapter: one gray-able node as a ``fail/repair/is_up`` target."""

    __slots__ = ("model", "name")

    def __init__(self, model: "GrayFailureModel", name: str):
        self.model = model
        self.name = name

    @property
    def is_up(self) -> bool:
        # "Up" for burst composition means *not currently gray*.
        return not self.model.is_gray(self.name)

    def fail(self) -> None:
        self.model.degrade(self.name)

    def repair(self) -> None:
        self.model.restore(self.name)


class GrayFailureModel:
    """Nodes that stay heartbeat-alive while their service rots.

    A gray node:

    - serves :meth:`service_factor` times slower (``slowdown``);
    - fails operations with probability ``error_rate``
      (:meth:`should_error`);
    - loses a fraction ``drop_rate`` of its *data-plane* messages — kinds
      listed in ``protected_kinds`` (heartbeats by default) are never
      dropped, because surviving the liveness check while failing the
      work is the definition of a gray failure;
    - adds ``extra_latency_s`` one-way delay to everything it sends or
      receives.

    Gray periods come from a declarative ``episodes`` schedule
    (node -> [(start_s, end_s), ...]) and/or from :meth:`degrade` /
    :meth:`restore` calls — the latter is what :meth:`target` adapters
    feed, so a :class:`~repro.faults.CorrelatedBurst` pointed at
    ``[model.target(n) for n in nodes]`` grays out correlated fractions
    of the fleet instead of crashing them. RNG is drawn **only while a
    node is gray**, so a baseline run of the same seed stays comparable
    (the :class:`~repro.faults.TransientErrorModel` ``enabled`` idiom).
    """

    def __init__(self, env: Environment, rng: np.random.Generator,
                 slowdown: float = 3.0, error_rate: float = 0.0,
                 drop_rate: float = 0.0, extra_latency_s: float = 0.0,
                 episodes: Optional[dict[str, Sequence[tuple]]] = None,
                 protected_kinds: Sequence[str] = ("heartbeat",),
                 monitor: Optional[Monitor] = None, name: str = "gray"):
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate {error_rate} not in [0, 1]")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate {drop_rate} not in [0, 1)")
        if extra_latency_s < 0:
            raise ValueError("extra_latency_s must be non-negative")
        self.env = env
        self.rng = rng
        self.slowdown = slowdown
        self.error_rate = error_rate
        self.drop_rate = drop_rate
        #: Constant one-way delay added to a gray node's traffic. Held
        #: under a private name so the instance attribute does not shadow
        #: the :meth:`extra_latency_s` protocol method.
        self._added_latency_s = extra_latency_s
        self.episodes = {str(node): [(float(a), float(b)) for a, b in spans]
                         for node, spans in (episodes or {}).items()}
        for node, spans in self.episodes.items():
            for a, b in spans:
                if a < 0 or b <= a:
                    raise ValueError(f"gray episode [{a}, {b}) of {node!r} "
                                     "needs 0 <= start < end")
        self.protected_kinds = tuple(protected_kinds)
        self.monitor = monitor
        self.name = name
        self._degraded: dict[str, None] = {}  # manual grays, ordered
        self.degradations = 0
        self.restorations = 0
        self.injected_errors = 0
        self.dropped_messages = 0
        self.slowed_operations = 0

    # -- state -------------------------------------------------------------
    def is_gray(self, node: str) -> bool:
        node = str(node)
        if node in self._degraded:
            return True
        now = self.env.now
        return any(a <= now < b for a, b in self.episodes.get(node, ()))

    def gray_nodes(self) -> list[str]:
        """Currently gray nodes: scheduled ones first, then manual."""
        scheduled = [n for n in self.episodes if self.is_gray(n)]
        manual = [n for n in self._degraded if n not in scheduled]
        return scheduled + manual

    def degrade(self, node: str) -> None:
        node = str(node)
        if node not in self._degraded:
            self._degraded[node] = None
            self.degradations += 1
            if self.monitor is not None:
                self.monitor.count("degradations", key=node)

    def restore(self, node: str) -> None:
        node = str(node)
        if node not in self._degraded:
            return
        del self._degraded[node]
        self.restorations += 1
        if self.monitor is not None:
            self.monitor.count("restorations", key=node)

    def target(self, node: str) -> _GrayTarget:
        """A ``fail/repair/is_up`` adapter for burst/crash composition."""
        return _GrayTarget(self, str(node))

    # -- service degradation ------------------------------------------------
    def service_factor(self, node: str) -> float:
        """Runtime multiplier for one operation served by ``node``."""
        if not self.is_gray(node):
            return 1.0
        self.slowed_operations += 1
        return self.slowdown

    def should_error(self, node: str) -> bool:
        """Draw one operation's fate on ``node`` (RNG only while gray)."""
        if not self.is_gray(node) or self.error_rate == 0.0:
            return False
        hit = bool(self.rng.random() < self.error_rate)
        if hit:
            self.injected_errors += 1
            if self.monitor is not None:
                self.monitor.count("injected_errors", key=str(node))
        return hit

    # -- Network model protocol --------------------------------------------
    def drops(self, src: str, dst: str, kind: str) -> bool:
        if kind in self.protected_kinds or self.drop_rate == 0.0:
            return False
        if not (self.is_gray(src) or self.is_gray(dst)):
            return False
        hit = bool(self.rng.random() < self.drop_rate)
        if hit:
            self.dropped_messages += 1
            if self.monitor is not None:
                self.monitor.count("dropped_messages", key=kind)
        return hit

    def extra_latency_s(self, src: str, dst: str) -> float:
        if self._added_latency_s == 0.0:
            return 0.0
        if self.is_gray(src) or self.is_gray(dst):
            return self._added_latency_s
        return 0.0


#: Control-plane message kinds a loss episode never eats: liveness and
#: membership signals have their own fault models (partitions, gray
#: failures); scheduled loss is a *data-plane* regime.
_LOSS_PROTECTED_KINDS = ("heartbeat", "lease", "lease_ack", "vote_req",
                         "vote", "vote_deny", "fence")


class ScheduledMessageLoss:
    """Network-wide data-plane message loss during scheduled windows.

    Each episode is ``(start_s, end_s, rate)``: while any window is
    active, every unprotected message is dropped with probability
    ``rate`` (the max over active windows, if they overlap). Speaks the
    :class:`~repro.sim.Network` model protocol via :meth:`drops`, so it
    attaches next to partitions and gray failures. RNG is drawn **only
    while a window is active** — the same-seed baseline stays comparable
    (the ``TransientErrorModel`` ``enabled`` idiom).
    """

    def __init__(self, env: Environment, rng: np.random.Generator,
                 episodes: Iterable[tuple],
                 protected_kinds: Sequence[str] = _LOSS_PROTECTED_KINDS,
                 monitor: Optional[Monitor] = None, name: str = "loss"):
        self.env = env
        self.rng = rng
        self.episodes = [(float(a), float(b), float(r))
                         for a, b, r in episodes]
        for a, b, r in self.episodes:
            if a < 0 or b <= a:
                raise ValueError(f"loss episode [{a}, {b}) needs "
                                 "0 <= start < end")
            if not 0.0 <= r < 1.0:
                raise ValueError(f"loss rate {r} not in [0, 1)")
        self.protected_kinds = tuple(protected_kinds)
        self.monitor = monitor
        self.name = name
        self.dropped_messages = 0

    def active_rate(self, now: Optional[float] = None) -> float:
        """The loss rate in force at ``now`` (0 outside every window)."""
        now = self.env.now if now is None else now
        rate = 0.0
        for a, b, r in self.episodes:
            if a <= now < b and r > rate:
                rate = r
        return rate

    # -- Network model protocol --------------------------------------------
    def drops(self, src: str, dst: str, kind: str) -> bool:
        if kind in self.protected_kinds:
            return False
        rate = self.active_rate()
        if rate == 0.0:
            return False
        hit = bool(self.rng.random() < rate)
        if hit:
            self.dropped_messages += 1
            if self.monitor is not None:
                self.monitor.count("dropped_messages", key=kind)
        return hit
