"""Fault injection and resilience for every experiment domain.

The paper's availability/operability requirements (Principle P3, Challenges
C3/C6) demand that designs be evaluated under realistic failure regimes.
This package provides the two halves of that evaluation on top of
:mod:`repro.sim`:

- **fault models** (:mod:`repro.faults.models`) — crash/restart, transient
  per-operation errors, stragglers, correlated bursts, and message loss,
  all driven by seeded RNG streams for deterministic replay;
- **partition & gray-failure models** (:mod:`repro.faults.partition`) —
  scheduled network splits over named node-groups (including one-way
  cuts) and heartbeat-alive-but-degraded nodes, attachable to the
  :class:`~repro.sim.Network` routing fabric;
- **resilience policies** (:mod:`repro.faults.policies`) — retry with
  backoff, timeouts, circuit breaking, and hedging, as composable
  sim-process combinators any domain can wrap around its operations.

The chaos harness (:mod:`repro.faults.chaos`) crosses the two into a
scenario matrix and reports availability/SLO attainment per cell; see
``examples/chaos_experiment.py``. It is imported lazily (``from
repro.faults import chaos``) because it pulls in the experiment domains.
"""

from repro.faults.models import (
    CorrelatedBurst,
    CrashRestart,
    FaultInjectedError,
    MessageLossModel,
    StragglerModel,
    TransientErrorModel,
)
from repro.faults.partition import (
    GrayFailureModel,
    NetworkPartitionModel,
    PartitionEpisode,
    ScheduledMessageLoss,
)
from repro.faults.policies import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    Hedge,
    RetryPolicy,
    TimeoutExceeded,
    as_event,
    with_timeout,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorrelatedBurst",
    "CrashRestart",
    "FaultInjectedError",
    "GrayFailureModel",
    "Hedge",
    "MessageLossModel",
    "NetworkPartitionModel",
    "PartitionEpisode",
    "RetryPolicy",
    "ScheduledMessageLoss",
    "StragglerModel",
    "TimeoutExceeded",
    "TransientErrorModel",
    "as_event",
    "with_timeout",
]
