"""The chaos harness: a scenario matrix of fault model × resilience policy.

Each scenario runs one experiment domain under a fault regime, with its
resilience policy on or off, and reports SLO attainment and availability
next to the fault-free baseline of the *same seed* — so the matrix answers
the operational questions directly: how much does this failure mode hurt,
and how much does the mitigation buy back?

Everything is deterministic under a fixed root seed (Challenge C3): run
the matrix twice and the tables are identical.

Run ``python examples/chaos_experiment.py`` for the full demo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.cluster import Cluster, FailureInjector
from repro.cluster.machine import Machine
from repro.faults.models import CrashRestart, TransientErrorModel
from repro.faults.partition import (
    GrayFailureModel,
    NetworkPartitionModel,
    PartitionEpisode,
    ScheduledMessageLoss,
)
from repro.faults.policies import RetryPolicy
from repro.invariants import InvariantEngine, standard_laws
from repro.recovery import (
    AdaptiveCheckpoint,
    CHECKPOINT_TIERS,
    CheckpointStore,
    CheckpointedJob,
    DalyOptimalCheckpoint,
    Journal,
    PeriodicCheckpoint,
    daly_interval_s,
)
from repro.replication import ReplicatedControlPlane
from repro.resilience import (
    BrownoutController,
    CoDelShedder,
    HeartbeatEmitter,
    PhiAccrualDetector,
    ServiceMode,
    TokenBucketAdmitter,
)
from repro.scheduling.policies import FCFSPolicy
from repro.scheduling.simulator import ClusterSimulator
from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Environment, Monitor, Network, RandomStreams
from repro.workload.task import BagOfTasks, Task


@dataclass
class ChaosOutcome:
    """One cell of the chaos matrix."""

    domain: str
    fault: str
    policy: str
    slo_attainment: float
    availability: float
    details: dict = field(default_factory=dict)


# -- serverless: transient invocation faults vs. platform retries ----------

def run_serverless_scenario(seed: int = 0, error_rate: float = 0.0,
                            retry: bool = False,
                            n_invocations: int = 300,
                            rate_per_s: float = 2.0,
                            runtime_s: float = 0.5,
                            slo_s: float = 2.5,
                            tracer=None, registry=None) -> dict:
    """Open-loop Poisson traffic against a FaaS platform whose invocations
    fail transiently; the platform may retry with exponential backoff."""
    streams = RandomStreams(seed)
    env = Environment()
    fault_model = (TransientErrorModel(streams.get("serverless-faults"),
                                       error_rate)
                   if error_rate > 0 else None)
    retry_policy = (RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                multiplier=2.0, max_delay_s=1.0, jitter=0.1)
                    if retry else None)
    platform = FaaSPlatform(
        env, PlatformConfig(cold_start_s=0.5, keep_alive_s=600.0),
        fault_model=fault_model, retry_policy=retry_policy,
        retry_rng=streams.get("retry-jitter"),
        tracer=tracer, registry=registry)
    platform.deploy(FunctionSpec("f", runtime_s=runtime_s, memory_gb=0.5))
    arrivals = streams.get("serverless-arrivals")

    def driver(env):
        for _ in range(n_invocations):
            yield env.timeout(float(arrivals.exponential(1.0 / rate_per_s)))
            platform.invoke("f")

    env.process(driver(env))
    # Enough slack past the last arrival for retries to drain.
    env.run(until=n_invocations / rate_per_s + 120.0)
    counters = platform.monitor.counters
    return {
        "slo_attainment": platform.slo_attainment(slo_s, "f"),
        "availability": 1.0 - platform.failure_fraction("f"),
        "invocations": len(platform.invocations),
        "completed": len(platform.completed("f")),
        "faults": counters["faults"].total if "faults" in counters else 0,
        "retries": counters["retries"].total if "retries" in counters else 0,
        "billed_gb_s": round(platform.billed_gb_s, 6),
        "mean_attempts": (sum(i.attempts for i in platform.invocations)
                          / max(1, len(platform.invocations))),
    }


# -- serverless: overload vs. admission control + brownout -----------------

def run_overload_scenario(seed: int = 0, admission: bool = False,
                          n_invocations: int = 600,
                          rate_per_s: float = 50.0,
                          runtime_s: float = 0.2,
                          concurrency_limit: int = 8,
                          queue_capacity: int = 64,
                          admit_rate_per_s: float = 36.0,
                          admit_burst: float = 16.0,
                          slo_s: float = 1.0,
                          tracer=None, registry=None) -> dict:
    """A flash crowd against a capacity-capped FaaS platform.

    Offered load (``rate_per_s``) exceeds capacity
    (``concurrency_limit / runtime_s``). Without admission the bounded
    queue fills, every admitted request marinates behind it, and the tail
    collapses; with admission the token bucket sheds the excess at the
    front door, the CoDel shedder drops requests that already waited past
    the delay target, and the brownout controller stops paying for cold
    starts under pressure — so the requests that *are* served finish on
    time. Goodput here is SLO-goodput: completions within ``slo_s`` per
    second of simulated time.
    """
    streams = RandomStreams(seed)
    env = Environment()
    admitter = shedder = brownout = None
    if admission:
        admitter = TokenBucketAdmitter(env, rate_per_s=admit_rate_per_s,
                                       burst=admit_burst)
        shedder = CoDelShedder(env, target_s=0.15, interval_s=1.0)
        # Pressure scale (see FaaSPlatform.pressure): <1 is utilization,
        # >1 is 1 + head-of-queue delay in seconds.
        brownout = BrownoutController(degraded_enter=1.05,
                                      degraded_exit=0.95,
                                      critical_enter=1.5,
                                      critical_exit=1.1)
    platform = FaaSPlatform(
        env,
        PlatformConfig(cold_start_s=0.25, keep_alive_s=600.0,
                       concurrency_limit=concurrency_limit,
                       prewarmed=concurrency_limit,
                       queue_capacity=queue_capacity),
        admitter=admitter, shedder=shedder, brownout=brownout,
        tracer=tracer, registry=registry)
    platform.deploy(FunctionSpec("f", runtime_s=runtime_s, memory_gb=0.5))
    arrivals = streams.get("overload-arrivals")

    def driver(env):
        for _ in range(n_invocations):
            yield env.timeout(float(arrivals.exponential(1.0 / rate_per_s)))
            platform.invoke("f")

    env.process(driver(env))
    duration = n_invocations / rate_per_s + 30.0
    env.run(until=duration)
    if brownout is not None:
        brownout.finish(env.now)
    completed = platform.completed("f")
    latencies = sorted(i.latency for i in completed)
    in_slo = sum(1 for lat in latencies if lat <= slo_s)
    result = {
        "slo_attainment": platform.slo_attainment(slo_s, "f"),
        "availability": 1.0 - platform.failure_fraction("f"),
        "invocations": len(platform.invocations),
        "completed": len(completed),
        "shed": len(platform.shed("f")),
        "rejected": sum(1 for i in platform.invocations if i.rejected),
        "shed_fraction": platform.shed_fraction("f"),
        "goodput_per_s": in_slo / duration,
        "p50_latency_s": (float(np.percentile(latencies, 50))
                          if latencies else float("inf")),
        "p99_latency_s": (float(np.percentile(latencies, 99))
                          if latencies else float("inf")),
    }
    if admission:
        result["admitted"] = admitter.admitted
        result["bucket_shed"] = admitter.shed
        result["codel_shed"] = shedder.shed
        result["brownout_transitions"] = brownout.transitions
        result["degraded_time_s"] = brownout.degraded_time_s()
    return result


# -- detection: heartbeats + phi-accrual vs. a silent crash ----------------

def run_detection_scenario(seed: int = 0, crash: bool = True,
                           crash_at_s: float = 30.0,
                           n_machines: int = 6,
                           heartbeat_interval_s: float = 1.0,
                           threshold: float = 8.0,
                           duration_s: float = 90.0) -> dict:
    """Heartbeat-monitored machines, one of which may crash silently.

    Measures the two numbers every failure detector trades between: how
    long after the crash the detector suspects the dead machine
    (detection latency), and how often healthy machines get wrongly
    suspected (false suspicions — zero here under bounded jitter, by the
    phi math).
    """
    streams = RandomStreams(seed)
    env = Environment()
    detector = PhiAccrualDetector(env, threshold=threshold,
                                  poll_interval_s=0.5)
    up: dict[str, bool] = {f"m{i}": True for i in range(n_machines)}
    emitters = {}
    for name in sorted(up):
        emitters[name] = HeartbeatEmitter(
            env, detector, name, heartbeat_interval_s,
            rng=streams.get(f"hb-{name}"),
            is_up=lambda name=name: up[name])

    def crasher(env):
        yield env.timeout(crash_at_s)
        up["m0"] = False

    if crash:
        env.process(crasher(env))
    env.run(until=duration_s)
    latency = (detector.detection_latency_s("m0", crash_at_s)
               if crash else None)
    return {
        "suspects": detector.suspects(),
        "detection_latency_s": latency,
        "suspicions": detector.suspicions,
        "false_suspicions": detector.false_suspicions,
        "heartbeats_sent": sum(e.sent for e in emitters.values()),
        "heartbeats_suppressed": sum(e.suppressed
                                     for e in emitters.values()),
    }


# -- scheduling: machine crashes vs. requeue-and-restart -------------------

def run_scheduling_scenario(seed: int = 0, mtbf_s: Optional[float] = None,
                            mttr_s: float = 60.0,
                            requeue: bool = True,
                            n_tasks: int = 120,
                            n_machines: int = 8,
                            health_aware: bool = False,
                            heartbeat_interval_s: float = 1.0,
                            tracer=None, registry=None) -> dict:
    """A bag of tasks on a crashing cluster. Without requeue, work killed
    by a crash is lost (goodput drops); with requeue it restarts elsewhere.

    With ``health_aware`` the scheduler stops reading the cluster's
    ground-truth machine state: each machine emits heartbeats into a
    phi-accrual detector, placement skips suspected machines and uses the
    scheduler's own capacity books, and a dispatch that races a crash
    before detection is lost for a dispatch timeout (a *misdispatch*).
    """
    streams = RandomStreams(seed)
    env = Environment()
    cluster = Cluster.homogeneous("chaos", n_machines, cores=4)
    work_rng = streams.get("task-sizes")
    tasks = [Task(work=float(work_rng.uniform(20.0, 120.0)))
             for _ in range(n_tasks)]
    detector = None
    if health_aware:
        detector = PhiAccrualDetector(env, threshold=8.0,
                                      poll_interval_s=0.5)
        for machine in cluster.machines:
            HeartbeatEmitter(env, detector, machine.name,
                             heartbeat_interval_s,
                             rng=streams.get(f"hb-{machine.name}"),
                             is_up=lambda m=machine: m.is_up)
    sim = ClusterSimulator(env, cluster, FCFSPolicy(),
                           failure_mode="requeue" if requeue else "drop",
                           health=detector,
                           tracer=tracer, registry=registry)
    injector = None
    if mtbf_s is not None:
        injector = FailureInjector(
            env, cluster, streams.get("machine-failures"),
            mtbf_s=mtbf_s, mttr_s=mttr_s,
            on_failure=sim.handle_machine_failure)
        # A repair frees capacity: wake the scheduler so queued work flows.
        injector.on_repair = sim.handle_machine_repair
    sim.submit_jobs([BagOfTasks(tasks)])
    env.run(until=sim._scheduler)
    metrics = sim.metrics()
    total_core_s = sim.goodput_core_s + sim.wasted_core_s
    extra = {}
    if detector is not None:
        extra = {
            "misdispatches": sim.misdispatches,
            "suspicions": detector.suspicions,
            "false_suspicions": detector.false_suspicions,
        }
    return extra | {
        "slo_attainment": metrics.completed_fraction,
        "availability": (injector.empirical_availability()
                         if injector is not None else 1.0),
        "completed": metrics.n_tasks,
        "lost": len(sim.failed),
        "restarts": sim.restarts,
        "goodput_core_s": round(sim.goodput_core_s, 3),
        "wasted_core_s": round(sim.wasted_core_s, 3),
        "wasted_fraction": (round(sim.wasted_core_s / total_core_s, 6)
                            if total_core_s else 0.0),
        "makespan_s": round(metrics.makespan_s, 3),
    }


# -- recovery: checkpoint/restore vs. restart-from-scratch -----------------

def run_recovery_scenario(seed: int = 0, policy: str = "daly",
                          work_s: float = 1500.0,
                          mtbf_s: float = 500.0, mttr_s: float = 30.0,
                          checkpoint_size_mb: float = 100.0,
                          tier: str = "local",
                          interval_s: Optional[float] = None,
                          corruption_p: float = 0.0,
                          restart_cost_s: float = 2.0,
                          keep_last: int = 3,
                          tracer=None, registry=None) -> dict:
    """One long job under ``CrashRestart``, with a checkpoint policy on/off.

    ``policy`` selects the recovery stance: ``"none"`` restarts from
    scratch on every crash (the baseline), ``"periodic"`` checkpoints
    every ``interval_s`` seconds, ``"daly"`` uses the Young/Daly optimum
    computed *from the active fault model*, and ``"adaptive"`` starts
    from a 4x-wrong MTBF guess and re-estimates it online. The returned
    dict carries the full recovery ledger: makespan inflation, lost
    work, checkpoint overhead, and recovery time.
    """
    if policy not in ("none", "periodic", "daly", "adaptive"):
        raise ValueError(f"unknown recovery policy {policy!r}")
    streams = RandomStreams(seed)
    env = Environment()
    store = ckpt_policy = None
    crash_rng = streams.get("recovery-crash")
    if policy != "none":
        store = CheckpointStore(
            env, tier=tier, keep_last=keep_last,
            corruption_p=corruption_p,
            rng=streams.get("ckpt-corruption") if corruption_p > 0 else None)
        cost_s = store.write_time_s(checkpoint_size_mb)
        if policy == "periodic":
            if interval_s is None:
                raise ValueError("policy='periodic' needs interval_s")
            ckpt_policy = PeriodicCheckpoint(interval_s)
        elif policy == "daly":
            ckpt_policy = DalyOptimalCheckpoint(cost_s, mtbf_s=mtbf_s)
        else:
            ckpt_policy = AdaptiveCheckpoint(cost_s,
                                             initial_mtbf_s=4.0 * mtbf_s)
    monitor = None
    if registry is not None:
        from repro.sim import Monitor
        monitor = Monitor(env, registry=registry, namespace="recovery")
    if tracer is not None and tracer.env is None:
        tracer.bind(env)
    job = CheckpointedJob(env, work_s=work_s, policy=ckpt_policy,
                          store=store,
                          checkpoint_size_mb=checkpoint_size_mb,
                          restart_cost_s=restart_cost_s, name="recovery",
                          monitor=monitor, tracer=tracer)
    crash = CrashRestart(env, [job], crash_rng,
                         mtbf_s=mtbf_s, mttr_s=mttr_s, name="recovery-crash")
    env.run(until=job.done)
    stats = job.stats()
    tier_model = CHECKPOINT_TIERS[tier]
    write_cost_s = (tier_model.latency_s
                    + checkpoint_size_mb / tier_model.write_mb_per_s)
    return {
        "policy": policy,
        "interval_s": (round(ckpt_policy.interval_s(), 3)
                       if ckpt_policy is not None else None),
        "daly_interval_s": round(daly_interval_s(write_cost_s, mtbf_s), 3),
        "work_s": stats.work_s,
        "makespan_s": round(stats.makespan_s, 3),
        "makespan_inflation": round(stats.makespan_inflation, 6),
        "crashes": stats.crashes,
        "lost_work_s": round(stats.lost_work_s, 3),
        "checkpoint_time_s": round(stats.checkpoint_time_s, 3),
        "recovery_time_s": round(stats.recovery_time_s, 3),
        "downtime_s": round(stats.downtime_s, 3),
        "checkpoints": stats.checkpoints_written,
        "restores": stats.restores,
        "corrupt_fallbacks": stats.corrupt_fallbacks,
        "availability": round(crash.empirical_availability(), 6),
    }


def run_scheduler_recovery_scenario(seed: int = 0,
                                    journaled: bool = True,
                                    n_tasks: int = 80,
                                    n_machines: int = 6,
                                    crash_at_s: float = 40.0,
                                    outage_s: float = 60.0,
                                    machine_mtbf_s: Optional[float] = 150.0,
                                    machine_mttr_s: float = 30.0) -> dict:
    """The scheduler itself fail-stops mid-schedule and recovers by journal.

    During the outage, machines keep executing: completions pile up
    unreported, and machine-crash victims are orphaned with nobody to
    requeue them. Recovery replays the journal, reconciles believed vs.
    actual cluster state, re-adopts surviving dispatches, credits every
    completion, and requeues the orphans — zero completed tasks lost.
    """
    streams = RandomStreams(seed)
    env = Environment()
    cluster = Cluster.homogeneous("recovery", n_machines, cores=4)
    work_rng = streams.get("task-sizes")
    tasks = [Task(work=float(work_rng.uniform(20.0, 120.0)))
             for _ in range(n_tasks)]
    journal = Journal(env, append_cost_s=0.005,
                      replay_cost_per_record_s=0.002,
                      name="sched-journal") if journaled else None
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           scheduler_restart_cost_s=1.0)
    injector = None
    if machine_mtbf_s is not None:
        injector = FailureInjector(
            env, cluster, streams.get("machine-failures"),
            mtbf_s=machine_mtbf_s, mttr_s=machine_mttr_s,
            on_failure=sim.handle_machine_failure)
        injector.on_repair = sim.handle_machine_repair
    sim.submit_jobs([BagOfTasks(tasks)])

    def outage(env):
        yield env.timeout(crash_at_s)
        sim.crash_scheduler()
        yield env.timeout(outage_s)
        yield from sim.recover_scheduler()

    if journaled:
        env.process(outage(env))
    env.run(until=sim._scheduler)
    metrics = sim.metrics()
    return {
        "slo_attainment": metrics.completed_fraction,
        "availability": (injector.empirical_availability()
                         if injector is not None else 1.0),
        "completed": metrics.n_tasks,
        "lost": len(sim.failed),
        "scheduler_crashes": sim.scheduler_crashes,
        "recovered_completions": sim.recovered_completions,
        "readopted": sim.readopted,
        "orphans_requeued": sim.orphans_requeued,
        "restarts": sim.restarts,
        "journal_appends": journal.appended if journal is not None else 0,
        "journal_replays": journal.replays if journal is not None else 0,
        "makespan_s": round(metrics.makespan_s, 3),
    }


# -- composed ecosystem: partition + gray failure + invariants -------------

def _overload_factor(spans, now: float) -> float:
    """Highest active overload multiplier at ``now`` (1.0 when idle)."""
    factor = 1.0
    for start, end, mult in spans or ():
        if start <= now < end:
            factor = max(factor, float(mult))
    return factor


def _merge_burst_spans(gray_episodes: dict, machines,
                       burst_episodes) -> None:
    """Gray-degrade the first ``ceil(fraction * fleet)`` machines per burst.

    Correlated bursts pick their victims deterministically — a fixed
    prefix of the machine list — so a schedule replays identically with
    no RNG stream of its own.
    """
    for start, end, fraction in burst_episodes or ():
        k = min(len(machines), max(1, math.ceil(float(fraction)
                                                * len(machines))))
        for machine in machines[:k]:
            gray_episodes.setdefault(machine.name, []).append(
                (float(start), float(end)))


class FrontDoor:
    """Admission-controlled entry point feeding a scheduler incrementally.

    Every offered task meets the brownout controller first (pressure is
    the scheduler's ready-queue depth over ``queue_ref``): CRITICAL mode
    sheds outright, DEGRADED mode doubles the token cost, NORMAL admits
    at bucket rate. The ``offered == admitted + shed`` books are what the
    front-door conservation law audits.
    """

    def __init__(self, env: Environment, sim: ClusterSimulator,
                 admitter: Optional[TokenBucketAdmitter] = None,
                 brownout: Optional[BrownoutController] = None,
                 monitor: Optional[Monitor] = None,
                 queue_ref: float = 10.0):
        if queue_ref <= 0:
            raise ValueError("queue_ref must be positive")
        self.env = env
        self.sim = sim
        self.admitter = admitter
        self.brownout = brownout
        self.monitor = monitor
        self.queue_ref = queue_ref
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    def pressure(self) -> float:
        """Scheduler backlog as a brownout pressure signal."""
        return len(self.sim.ready) / self.queue_ref

    def offer(self, task: Task) -> bool:
        """Admit or shed one task; True means it reached the scheduler."""
        self.offered += 1
        if self.monitor is not None:
            self.monitor.count("offered")
            self.monitor.record("pressure", self.pressure())
        mode = ServiceMode.NORMAL
        if self.brownout is not None:
            mode = self.brownout.observe(self.pressure(), self.env.now)
        cost = 2.0 if mode is ServiceMode.DEGRADED else 1.0
        if mode is ServiceMode.CRITICAL or (
                self.admitter is not None and not self.admitter.admit(cost)):
            self.shed += 1
            if self.monitor is not None:
                self.monitor.count("shed")
            return False
        self.admitted += 1
        if self.monitor is not None:
            self.monitor.count("admitted")
        task.submit_time = self.env.now
        self.sim.submit_task(task)
        return True


def run_partition_scenario(seed: int = 0,
                           n_tasks: int = 80,
                           task_rate_per_s: float = 0.8,
                           n_invocations: int = 120,
                           invoke_rate_per_s: float = 1.2,
                           n_machines: int = 8,
                           minority: int = 3,
                           partition_start_s: float = 50.0,
                           partition_end_s: float = 150.0,
                           partition_direction: str = "both",
                           gray_worker_span: tuple = (70.0, 190.0),
                           gray_scheduler_span: tuple = (90.0, 130.0),
                           gray_slowdown: float = 2.5,
                           gray_drop_rate: float = 0.15,
                           gray_latency_s: float = 0.2,
                           crash_at_s: float = 95.0,
                           outage_s: float = 8.0,
                           job_work_s: float = 240.0,
                           job_mtbf_s: float = 150.0,
                           check_interval_s: float = 1.0,
                           invariants: bool = True,
                           invariant_halt: bool = True,
                           partition_episodes: Optional[Iterable] = None,
                           gray_spans: Optional[dict] = None,
                           crash_schedule: Optional[Iterable] = None,
                           burst_episodes: Optional[Iterable] = None,
                           loss_episodes: Optional[Iterable] = None,
                           overload_spans: Optional[Iterable] = None,
                           sim_budget_s: Optional[float] = None,
                           report_retry: bool = True,
                           tracer=None, registry=None) -> dict:
    """The composed-ecosystem chaos study: every layer at once.

    A serverless platform and a batch scheduler share one seeded world. A
    network partition isolates a minority of the workers, one majority
    worker and the scheduler node go *gray* (heartbeat-alive but slow,
    lossy, and laggy), the scheduler itself fail-stops briefly and
    recovers by journal, a reactive autoscaler adds workers as the
    backlog grows, admission control and brownout shed at the front door,
    and a checkpointed side job rides out independent crashes — while an
    :class:`~repro.invariants.InvariantEngine` audits every layer's
    conservation law once per simulated second. The scenario's claim is
    not that the run goes well; it is that every unit of work is
    accounted for at every instant, no matter how badly it goes.

    Phi-accrual heartbeats route through the same network as dispatches,
    so partitioned workers are suspected (reason ``"silence"``) while
    gray workers — whose heartbeats are protected, per the definition of
    a gray failure — are never declared dead.

    The schedule knobs (all default-``None``, leaving the classic run
    byte-identical) let a fuzzing campaign drive the same world from a
    serialized :class:`~repro.campaign.FaultSchedule`:
    ``partition_episodes`` replaces the single minority cut,
    ``gray_spans`` maps the roles ``"worker"``/``"scheduler"`` to span
    lists, ``crash_schedule`` is ``[(crash_at_s, outage_s), ...]``,
    ``burst_episodes``/``loss_episodes``/``overload_spans`` add
    correlated gray bursts, scheduled message loss, and arrival-rate
    multipliers, and ``sim_budget_s`` bounds the run in sim-time so no
    random schedule can wedge it. ``report_retry=False`` plants the
    known lost-completion-report liveness bug for oracle validation.
    """
    if not 0 < minority < n_machines:
        raise ValueError("minority must be in (0, n_machines)")
    streams = RandomStreams(seed)
    env = Environment()
    if tracer is not None and tracer.env is None:
        tracer.bind(env)
    cluster = Cluster.homogeneous("composed", n_machines, cores=4)
    minority_names = [m.name for m in cluster.machines[-minority:]]
    gray_worker = cluster.machines[-minority - 1].name

    if partition_episodes is None:
        partition_episodes = [PartitionEpisode(
            partition_start_s, partition_end_s,
            "minority", partition_direction)]
    if gray_spans is None:
        gray_spans = {"worker": [gray_worker_span],
                      "scheduler": [gray_scheduler_span]}
    gray_episodes = {
        gray_worker: [tuple(s) for s in gray_spans.get("worker", ())],
        "scheduler": [tuple(s) for s in gray_spans.get("scheduler", ())]}
    _merge_burst_spans(gray_episodes, cluster.machines, burst_episodes)

    network = Network(env, monitor=Monitor(env, registry=registry,
                                           namespace="network"))
    partition = network.attach(NetworkPartitionModel(
        env, groups={"minority": minority_names},
        episodes=list(partition_episodes),
        monitor=Monitor(env, registry=registry, namespace="partition")))
    gray = network.attach(GrayFailureModel(
        env, streams.get("gray-failures"),
        slowdown=gray_slowdown, drop_rate=gray_drop_rate,
        extra_latency_s=gray_latency_s,
        episodes=gray_episodes,
        monitor=Monitor(env, registry=registry, namespace="gray")))
    if loss_episodes:
        network.attach(ScheduledMessageLoss(
            env, streams.get("message-loss"), loss_episodes,
            monitor=Monitor(env, registry=registry, namespace="loss")))

    detector = PhiAccrualDetector(
        env, threshold=8.0, poll_interval_s=0.5,
        monitor=Monitor(env, registry=registry, namespace="detection"))
    heartbeat_rngs = {m.name: streams.get(f"hb-{m.name}")
                      for m in cluster.machines}

    journal = Journal(env, append_cost_s=0.002,
                      replay_cost_per_record_s=0.001, name="composed-journal")
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), health=detector,
                           journal=journal, scheduler_restart_cost_s=1.0,
                           network=network, node_name="scheduler",
                           service_time_factor=lambda m:
                               gray.service_factor(m.name),
                           report_retry=report_retry,
                           tracer=tracer, registry=registry)

    def add_heartbeat(machine: Machine) -> None:
        HeartbeatEmitter(env, detector, machine.name, 1.0,
                         rng=heartbeat_rngs[machine.name],
                         is_up=lambda m=machine: m.is_up,
                         network=network, src=machine.name, dst="scheduler")

    for machine in cluster.machines:
        add_heartbeat(machine)

    composed_monitor = Monitor(env, registry=registry, namespace="composed")
    door = FrontDoor(
        env, sim,
        admitter=TokenBucketAdmitter(env, rate_per_s=1.0, burst=4.0),
        brownout=BrownoutController(degraded_enter=1.2, degraded_exit=0.8,
                                    critical_enter=2.5, critical_exit=1.6),
        monitor=composed_monitor, queue_ref=6.0)

    platform = FaaSPlatform(
        env,
        PlatformConfig(cold_start_s=0.25, keep_alive_s=600.0,
                       concurrency_limit=6, prewarmed=4, queue_capacity=32),
        fault_model=TransientErrorModel(streams.get("serverless-faults"),
                                        0.1),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.1,
                                 multiplier=2.0, max_delay_s=2.0, jitter=0.1),
        retry_rng=streams.get("retry-jitter"),
        admitter=TokenBucketAdmitter(env, rate_per_s=4.0, burst=8.0),
        brownout=BrownoutController(degraded_enter=1.05, degraded_exit=0.95,
                                    critical_enter=1.5, critical_exit=1.1),
        tracer=tracer, registry=registry)
    platform.deploy(FunctionSpec("f", runtime_s=0.4, memory_gb=0.5))

    store = CheckpointStore(env, tier="local", keep_last=3)
    job = CheckpointedJob(
        env, work_s=job_work_s,
        policy=DalyOptimalCheckpoint(store.write_time_s(100.0),
                                     mtbf_s=job_mtbf_s),
        store=store, checkpoint_size_mb=100.0, restart_cost_s=2.0,
        name="composed-job",
        monitor=Monitor(env, registry=registry, namespace="recovery"),
        tracer=tracer)
    crash = CrashRestart(env, [job], streams.get("job-crashes"),
                         mtbf_s=job_mtbf_s, mttr_s=10.0,
                         name="composed-job-crash")

    engine = None
    if invariants:
        engine = InvariantEngine(
            env,
            standard_laws(network=network, scheduler=sim, platform=platform,
                          front_door=door, jobs=[job]),
            check_interval_s=check_interval_s,
            halt=invariant_halt, seed=seed,
            monitor=Monitor(env, registry=registry, namespace="invariants"))

    task_rng = streams.get("task-sizes")
    task_arrivals = streams.get("task-arrivals")
    invoke_arrivals = streams.get("invoke-arrivals")

    def task_driver(env):
        for _ in range(n_tasks):
            rate = task_rate_per_s * _overload_factor(overload_spans,
                                                      env.now)
            yield env.timeout(float(task_arrivals.exponential(1.0 / rate)))
            door.offer(Task(work=float(task_rng.uniform(20.0, 80.0))))
        sim.close_submissions()

    def invoke_driver(env):
        for _ in range(n_invocations):
            rate = invoke_rate_per_s * _overload_factor(overload_spans,
                                                        env.now)
            yield env.timeout(float(invoke_arrivals.exponential(1.0 / rate)))
            platform.invoke("f")

    crashes = ([(crash_at_s, outage_s)] if crash_schedule is None
               else sorted((float(at), float(down))
                           for at, down in crash_schedule))

    def outage(env):
        for at, down_s in crashes:
            if at > env.now:
                yield env.timeout(at - env.now)
            if sim.all_done or sim.crashed:
                continue
            sim.crash_scheduler()
            yield env.timeout(down_s)
            yield from sim.recover_scheduler()

    scale_limit = 2
    scaled: list[Machine] = []

    def autoscaler(env):
        while not sim.all_done:
            yield env.timeout(5.0)
            if len(sim.ready) >= 12 and len(scaled) < scale_limit:
                machine = Machine(f"composed-x{len(scaled):04d}", cores=4,
                                  memory_gb=32.0)
                cluster.add_machine(machine)
                network.add_node(machine.name)
                heartbeat_rngs[machine.name] = streams.get(
                    f"hb-{machine.name}")
                add_heartbeat(machine)
                scaled.append(machine)
                composed_monitor.count("scaled_up")
                sim.handle_machine_repair(machine)

    env.process(task_driver(env))
    env.process(invoke_driver(env))
    env.process(outage(env))
    env.process(autoscaler(env))

    if sim_budget_s is None:
        env.run(until=sim._scheduler)
        if job.finished_at is None:
            env.run(until=job.done)
        # Drain in-flight serverless retries, network deliveries, and a
        # last few invariant audit rounds past the final interesting event.
        env.run(until=env.now + 30.0)
    else:
        # Campaign mode: a hard sim-time ceiling, so no random schedule
        # can wedge the run waiting for a scheduler that never finishes.
        env.run(until=sim_budget_s)
    if engine is not None:
        engine.check_now()
    if door.brownout is not None:
        door.brownout.finish(env.now)
    if platform.brownout is not None:
        platform.brownout.finish(env.now)

    metrics = sim.metrics() if sim.finished else None
    job_stats = job.stats() if job.finished_at is not None else None
    suspected_minority = [name for name in minority_names
                          if any(key == name
                                 for key, _, _ in detector.suspicion_log)]
    first_onset: dict = {}
    for key, onset, _ in detector.suspicion_log:
        first_onset.setdefault(key, onset)
    minority_detection_latency_s = {
        name: (round(first_onset[name] - partition_start_s, 3)
               if name in first_onset else None)
        for name in minority_names}
    lost_reports = sim.monitor.counters.get("lost_reports")
    return {
        # front door / scheduler
        "offered": door.offered,
        "admitted": door.admitted,
        "door_shed": door.shed,
        "submitted": sim.submitted,
        "completed": metrics.n_tasks if metrics is not None else 0,
        "lost": len(sim.failed),
        "restarts": sim.restarts,
        "misdispatches": sim.misdispatches,
        "lost_reports": lost_reports.total if lost_reports else 0,
        "scheduler_crashes": sim.scheduler_crashes,
        "recovered_completions": sim.recovered_completions,
        "readopted": sim.readopted,
        "orphans_requeued": sim.orphans_requeued,
        "scaled_up": len(scaled),
        "all_done": sim.all_done,
        "sim_time_s": round(env.now, 3),
        "makespan_s": (round(metrics.makespan_s, 3)
                       if metrics is not None else None),
        # detection
        "suspicions": detector.suspicions,
        "suspicions_by_reason": dict(detector.suspicions_by_reason),
        "false_suspicions": detector.false_suspicions,
        "suspected_minority": suspected_minority,
        "minority_detection_latency_s": minority_detection_latency_s,
        "gray_worker": gray_worker,
        "gray_worker_suspected": any(key == gray_worker
                                     for key, _, _ in
                                     detector.suspicion_log),
        # network ledger
        "messages_sent": network.sent,
        "messages_delivered": network.delivered,
        "messages_blocked": network.blocked,
        "messages_dropped": network.dropped,
        "messages_in_flight": network.in_flight,
        # serverless
        "invocations": len(platform.invocations),
        "invocations_completed": len(platform.completed("f")),
        "slo_attainment": platform.slo_attainment(1.5, "f"),
        # recovery side job
        "job_makespan_s": (round(job_stats.makespan_s, 3)
                           if job_stats is not None else None),
        "job_crashes": (job_stats.crashes
                        if job_stats is not None else job.crashes),
        "job_finished": job.finished_at is not None,
        "job_availability": round(crash.empirical_availability(), 6),
        # invariants
        "invariant_checks": engine.checks if engine is not None else 0,
        "invariant_violations": (engine.violations
                                 if engine is not None else 0),
    }


# -- replicated control plane: fenced failover -----------------------------

def run_failover_scenario(seed: int = 0,
                          n_tasks: int = 36,
                          task_rate_per_s: float = 0.6,
                          n_machines: int = 6,
                          partition_start_s: float = 60.0,
                          partition_heal_s: float = 150.0,
                          oneway_heal_s: float = 170.0,
                          gray_span: tuple = (55.0, 170.0),
                          gray_drop_rate: float = 0.15,
                          gray_latency_s: float = 0.2,
                          lease_ttl_s: float = 4.0,
                          renew_interval_s: float = 1.0,
                          takeover_cost_s: float = 0.5,
                          restart_cost_s: float = 5.0,
                          replay_cost_per_record_s: float = 0.01,
                          check_interval_s: float = 1.0,
                          invariant_halt: bool = True,
                          partition_episodes: Optional[Iterable] = None,
                          gray_spans: Optional[Iterable] = None,
                          burst_episodes: Optional[Iterable] = None,
                          loss_episodes: Optional[Iterable] = None,
                          overload_spans: Optional[Iterable] = None,
                          sim_budget_s: Optional[float] = None,
                          fence_on_failover: bool = True,
                          report_retry: bool = True,
                          tracer=None, registry=None) -> dict:
    """The failover study: a partitioned, gray-failing leader is replaced.

    Three control nodes (``cp-0`` leads at boot) run lease election and
    journal shipping over the same network the dispatches use. At
    ``partition_start_s`` the leader is cut off *while gray-failing*
    (its data-plane traffic was already lossy and laggy; its lease
    renewals were protected — slow is not down). The standbys' phi
    detectors read the renewal silence, one wins the next term within
    the lease TTL, fences every machine, and takes the brain over warm:
    its shipped journal prefix is the believed-state map, so promotion
    pays the takeover cost plus reconciliation — no replay.

    The heal is deliberately one-way (``inbound`` episode until
    ``oneway_heal_s``): from ``partition_heal_s`` the deposed leader's
    *outbound* writes reach the majority again while it still cannot
    hear the new term. Its term-stamped dispatches bounce off the fence
    — counted, one-for-one, by the ``fenced_writes_rejected`` law — and
    the rejections teach it to step down. Split-brain is an observable
    non-event: zero tasks lost, zero duplicated, exactly one leader per
    term, audited every simulated second.

    The schedule knobs mirror :func:`run_partition_scenario` (defaults
    leave the classic run byte-identical): ``partition_episodes`` acts on
    the ``"old-leader"`` group, ``gray_spans`` is a list of spans for the
    boot leader ``cp-0``, bursts gray-degrade a machine-fleet prefix,
    and ``sim_budget_s`` bounds the run. ``fence_on_failover=False``
    plants the known split-brain safety bug (promotion never fences nor
    advances the epoch), ``report_retry=False`` the lost-report liveness
    bug — both are what a campaign's oracles exist to catch.
    """
    streams = RandomStreams(seed)
    env = Environment()
    if tracer is not None and tracer.env is None:
        tracer.bind(env)
    cluster = Cluster.homogeneous("failover", n_machines, cores=4)
    nodes = ("cp-0", "cp-1", "cp-2")

    if partition_episodes is None:
        partition_episodes = [
            PartitionEpisode(partition_start_s, partition_heal_s,
                             "old-leader", "both"),
            PartitionEpisode(partition_heal_s, oneway_heal_s,
                             "old-leader", "inbound")]
    gray_episodes = {"cp-0": ([gray_span] if gray_spans is None
                              else [tuple(s) for s in gray_spans])}
    _merge_burst_spans(gray_episodes, cluster.machines, burst_episodes)

    network = Network(env, monitor=Monitor(env, registry=registry,
                                           namespace="network"))
    network.attach(NetworkPartitionModel(
        env, groups={"old-leader": ["cp-0"]},
        episodes=list(partition_episodes),
        monitor=Monitor(env, registry=registry, namespace="partition")))
    network.attach(GrayFailureModel(
        env, streams.get("gray-failures"),
        slowdown=2.0, drop_rate=gray_drop_rate,
        extra_latency_s=gray_latency_s,
        episodes=gray_episodes,
        protected_kinds=("heartbeat", "lease", "lease_ack"),
        monitor=Monitor(env, registry=registry, namespace="gray")))
    if loss_episodes:
        network.attach(ScheduledMessageLoss(
            env, streams.get("message-loss"), loss_episodes,
            monitor=Monitor(env, registry=registry, namespace="loss")))

    journal = Journal(env, append_cost_s=0.002,
                      replay_cost_per_record_s=replay_cost_per_record_s,
                      name="failover-journal")
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           scheduler_restart_cost_s=restart_cost_s,
                           network=network, node_name="cp-0",
                           report_retry=report_retry,
                           tracer=tracer, registry=registry)

    replication_monitor = Monitor(env, registry=registry,
                                  namespace="replication")
    lease_detector = PhiAccrualDetector(
        env, threshold=4.0, poll_interval_s=0.25,
        monitor=replication_monitor, name="lease")
    control = ReplicatedControlPlane(
        env, sim, network, nodes, streams,
        lease_ttl_s=lease_ttl_s, renew_interval_s=renew_interval_s,
        takeover_cost_s=takeover_cost_s,
        detector=lease_detector, monitor=replication_monitor,
        tracer=tracer,
        # The pathological leader: gray-failed, it never audits its own
        # ack window — exactly the brain fencing exists to stop.
        self_demote={"cp-0": False},
        fence_on_failover=fence_on_failover)

    composed_monitor = Monitor(env, registry=registry, namespace="composed")
    door = FrontDoor(
        env, sim,
        admitter=TokenBucketAdmitter(env, rate_per_s=1.0, burst=4.0),
        brownout=BrownoutController(degraded_enter=1.2, degraded_exit=0.8,
                                    critical_enter=2.5, critical_exit=1.6),
        monitor=composed_monitor, queue_ref=6.0)

    engine = InvariantEngine(
        env,
        standard_laws(network=network, scheduler=sim, front_door=door,
                      control_plane=control),
        check_interval_s=check_interval_s,
        halt=invariant_halt, seed=seed,
        monitor=Monitor(env, registry=registry, namespace="invariants"))

    task_rng = streams.get("task-sizes")
    task_arrivals = streams.get("task-arrivals")

    def task_driver(env):
        for _ in range(n_tasks):
            rate = task_rate_per_s * _overload_factor(overload_spans,
                                                      env.now)
            yield env.timeout(float(task_arrivals.exponential(1.0 / rate)))
            door.offer(Task(work=float(task_rng.uniform(20.0, 80.0))))
        sim.close_submissions()

    env.process(task_driver(env))

    if sim_budget_s is None:
        env.run(until=sim._scheduler)
        # The books usually close before the heal; play the epilogue out
        # so the deposed leader is fenced, deposed, and re-adopted as a
        # standby.
        env.run(until=max(env.now, oneway_heal_s + 10.0))
        env.run(until=env.now + 10.0)
    else:
        # Campaign mode: a hard sim-time ceiling — random schedules must
        # never wedge the run.
        env.run(until=sim_budget_s)
    engine.check_now()
    if door.brownout is not None:
        door.brownout.finish(env.now)

    metrics = sim.metrics() if sim.finished else None
    first_onset = None
    for _, onset, _ in lease_detector.suspicion_log:
        if onset >= partition_start_s:
            first_onset = onset
            break
    first_promotion = (min(control.promoted_at.values())
                       if control.promoted_at else None)
    lost_reports = sim.monitor.counters.get("lost_reports")
    return {
        # front door / scheduler
        "offered": door.offered,
        "admitted": door.admitted,
        "door_shed": door.shed,
        "submitted": sim.submitted,
        "completed": metrics.n_tasks if metrics is not None else 0,
        "lost": len(sim.failed),
        "misdispatches": sim.misdispatches,
        "lost_reports": lost_reports.total if lost_reports else 0,
        "scheduler_crashes": sim.scheduler_crashes,
        "recovered_completions": sim.recovered_completions,
        "readopted": sim.readopted,
        "orphans_requeued": sim.orphans_requeued,
        "all_done": sim.all_done,
        "sim_time_s": round(env.now, 3),
        "makespan_s": (round(metrics.makespan_s, 3)
                       if metrics is not None else None),
        # election
        "failovers": control.failovers,
        "promotions": control.election.promotions,
        "terms_with_leader": len(control.election.leaders_by_term),
        "leader_timeline": sorted(
            [term, node]
            for term, node in control.election.leaders_by_term.items()),
        "final_leader": sim.node_name,
        "final_term": control.gate.term,
        "elections": control.election.elections,
        "votes_granted": control.election.votes_granted,
        "votes_denied": control.election.votes_denied,
        "stand_downs": control.election.stand_downs,
        "demotions": control.election.demotions,
        "leader_detect_latency_s": (
            round(first_onset - partition_start_s, 3)
            if first_onset is not None else None),
        "failover_mttr_s": (round(first_promotion - partition_start_s, 3)
                            if first_promotion is not None else None),
        "lease_suspicions": lease_detector.suspicions,
        "lease_false_suspicions": lease_detector.false_suspicions,
        # journal shipping
        "journal_appends": journal.appended,
        "journal_records_at_failover": control.journal_records_at_failover,
        "unshipped_at_promotion": control.unshipped_at_promotion,
        "records_shipped": control.replicator.shipped_records,
        "ship_resends": control.replicator.resends,
        "ship_acks": control.replicator.acks_received,
        "ship_duplicates": control.replicator.duplicates,
        # fencing
        "stale_dispatches": control.stale_dispatches,
        "split_brain_writes": control.split_brain_writes,
        "fenced_writes_rejected": control.gate.rejected,
        "fenced_reports": control.gate.fenced_reports,
        "fence_raises": control.gate.fence_raises,
        "old_leader_deposed_at_s": (
            round(control.deposed_at["cp-0"], 3)
            if "cp-0" in control.deposed_at else None),
        # network ledger
        "messages_sent": network.sent,
        "messages_delivered": network.delivered,
        "messages_blocked": network.blocked,
        "messages_dropped": network.dropped,
        "messages_in_flight": network.in_flight,
        # invariants
        "invariant_checks": engine.checks,
        "invariant_violations": engine.violations,
    }


# -- the matrix ------------------------------------------------------------

@dataclass
class ChaosReport:
    """All cells of one chaos run, with a renderable summary table."""

    seed: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    def rows(self) -> list[list]:
        return [[o.domain, o.fault, o.policy,
                 f"{o.slo_attainment:.3f}", f"{o.availability:.3f}"]
                for o in self.outcomes]

    def format(self) -> str:
        headers = ["domain", "fault", "policy", "SLO attainment",
                   "availability"]
        rows = [headers] + self.rows()
        widths = [max(len(str(r[i])) for r in rows)
                  for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def cell(self, domain: str, fault: str, policy: str) -> ChaosOutcome:
        for o in self.outcomes:
            if (o.domain, o.fault, o.policy) == (domain, fault, policy):
                return o
        raise KeyError((domain, fault, policy))


def run_chaos_matrix(seed: int = 0,
                     serverless_error_rates: tuple = (0.0, 0.15, 0.3),
                     scheduling_mtbfs: tuple = (None, 500.0)) -> ChaosReport:
    """The full matrix: every fault level × policy off/on, both domains."""
    report = ChaosReport(seed=seed)
    for rate in serverless_error_rates:
        policies = [False] if rate == 0.0 else [False, True]
        for retry in policies:
            result = run_serverless_scenario(seed=seed, error_rate=rate,
                                             retry=retry)
            report.outcomes.append(ChaosOutcome(
                domain="serverless",
                fault="none" if rate == 0.0 else f"transient p={rate}",
                policy="retry+backoff" if retry else "none",
                slo_attainment=result["slo_attainment"],
                availability=result["availability"],
                details=result))
    for mtbf in scheduling_mtbfs:
        policies = [True] if mtbf is None else [False, True]
        for requeue in policies:
            result = run_scheduling_scenario(seed=seed, mtbf_s=mtbf,
                                             requeue=requeue)
            report.outcomes.append(ChaosOutcome(
                domain="scheduling",
                fault="none" if mtbf is None else f"crash mtbf={mtbf:g}s",
                policy="requeue" if requeue else "none",
                slo_attainment=result["slo_attainment"],
                availability=result["availability"],
                details=result))
    return report
