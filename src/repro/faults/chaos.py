"""The chaos harness: a scenario matrix of fault model × resilience policy.

Each scenario runs one experiment domain under a fault regime, with its
resilience policy on or off, and reports SLO attainment and availability
next to the fault-free baseline of the *same seed* — so the matrix answers
the operational questions directly: how much does this failure mode hurt,
and how much does the mitigation buy back?

Everything is deterministic under a fixed root seed (Challenge C3): run
the matrix twice and the tables are identical.

Run ``python examples/chaos_experiment.py`` for the full demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster import Cluster, FailureInjector
from repro.faults.models import TransientErrorModel
from repro.faults.policies import RetryPolicy
from repro.scheduling.policies import FCFSPolicy
from repro.scheduling.simulator import ClusterSimulator
from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Environment, RandomStreams
from repro.workload.task import BagOfTasks, Task


@dataclass
class ChaosOutcome:
    """One cell of the chaos matrix."""

    domain: str
    fault: str
    policy: str
    slo_attainment: float
    availability: float
    details: dict = field(default_factory=dict)


# -- serverless: transient invocation faults vs. platform retries ----------

def run_serverless_scenario(seed: int = 0, error_rate: float = 0.0,
                            retry: bool = False,
                            n_invocations: int = 300,
                            rate_per_s: float = 2.0,
                            runtime_s: float = 0.5,
                            slo_s: float = 2.5) -> dict:
    """Open-loop Poisson traffic against a FaaS platform whose invocations
    fail transiently; the platform may retry with exponential backoff."""
    streams = RandomStreams(seed)
    env = Environment()
    fault_model = (TransientErrorModel(streams.get("serverless-faults"),
                                       error_rate)
                   if error_rate > 0 else None)
    retry_policy = (RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                multiplier=2.0, max_delay_s=1.0, jitter=0.1)
                    if retry else None)
    platform = FaaSPlatform(
        env, PlatformConfig(cold_start_s=0.5, keep_alive_s=600.0),
        fault_model=fault_model, retry_policy=retry_policy,
        retry_rng=streams.get("retry-jitter"))
    platform.deploy(FunctionSpec("f", runtime_s=runtime_s, memory_gb=0.5))
    arrivals = streams.get("serverless-arrivals")

    def driver(env):
        for _ in range(n_invocations):
            yield env.timeout(float(arrivals.exponential(1.0 / rate_per_s)))
            platform.invoke("f")

    env.process(driver(env))
    # Enough slack past the last arrival for retries to drain.
    env.run(until=n_invocations / rate_per_s + 120.0)
    counters = platform.monitor.counters
    return {
        "slo_attainment": platform.slo_attainment(slo_s, "f"),
        "availability": 1.0 - platform.failure_fraction("f"),
        "invocations": len(platform.invocations),
        "completed": len(platform.completed("f")),
        "faults": counters["faults"].total if "faults" in counters else 0,
        "retries": counters["retries"].total if "retries" in counters else 0,
        "billed_gb_s": round(platform.billed_gb_s, 6),
        "mean_attempts": (sum(i.attempts for i in platform.invocations)
                          / max(1, len(platform.invocations))),
    }


# -- scheduling: machine crashes vs. requeue-and-restart -------------------

def run_scheduling_scenario(seed: int = 0, mtbf_s: Optional[float] = None,
                            mttr_s: float = 60.0,
                            requeue: bool = True,
                            n_tasks: int = 120,
                            n_machines: int = 8) -> dict:
    """A bag of tasks on a crashing cluster. Without requeue, work killed
    by a crash is lost (goodput drops); with requeue it restarts elsewhere."""
    streams = RandomStreams(seed)
    env = Environment()
    cluster = Cluster.homogeneous("chaos", n_machines, cores=4)
    work_rng = streams.get("task-sizes")
    tasks = [Task(work=float(work_rng.uniform(20.0, 120.0)))
             for _ in range(n_tasks)]
    sim = ClusterSimulator(env, cluster, FCFSPolicy(),
                           failure_mode="requeue" if requeue else "drop")
    injector = None
    if mtbf_s is not None:
        injector = FailureInjector(
            env, cluster, streams.get("machine-failures"),
            mtbf_s=mtbf_s, mttr_s=mttr_s,
            on_failure=sim.handle_machine_failure)
        # A repair frees capacity: wake the scheduler so queued work flows.
        injector.on_repair = sim.handle_machine_repair
    sim.submit_jobs([BagOfTasks(tasks)])
    env.run(until=sim._scheduler)
    metrics = sim.metrics()
    total_core_s = sim.goodput_core_s + sim.wasted_core_s
    return {
        "slo_attainment": metrics.completed_fraction,
        "availability": (injector.empirical_availability()
                         if injector is not None else 1.0),
        "completed": metrics.n_tasks,
        "lost": len(sim.failed),
        "restarts": sim.restarts,
        "goodput_core_s": round(sim.goodput_core_s, 3),
        "wasted_core_s": round(sim.wasted_core_s, 3),
        "wasted_fraction": (round(sim.wasted_core_s / total_core_s, 6)
                            if total_core_s else 0.0),
        "makespan_s": round(metrics.makespan_s, 3),
    }


# -- the matrix ------------------------------------------------------------

@dataclass
class ChaosReport:
    """All cells of one chaos run, with a renderable summary table."""

    seed: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    def rows(self) -> list[list]:
        return [[o.domain, o.fault, o.policy,
                 f"{o.slo_attainment:.3f}", f"{o.availability:.3f}"]
                for o in self.outcomes]

    def format(self) -> str:
        headers = ["domain", "fault", "policy", "SLO attainment",
                   "availability"]
        rows = [headers] + self.rows()
        widths = [max(len(str(r[i])) for r in rows)
                  for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def cell(self, domain: str, fault: str, policy: str) -> ChaosOutcome:
        for o in self.outcomes:
            if (o.domain, o.fault, o.policy) == (domain, fault, policy):
                return o
        raise KeyError((domain, fault, policy))


def run_chaos_matrix(seed: int = 0,
                     serverless_error_rates: tuple = (0.0, 0.15, 0.3),
                     scheduling_mtbfs: tuple = (None, 500.0)) -> ChaosReport:
    """The full matrix: every fault level × policy off/on, both domains."""
    report = ChaosReport(seed=seed)
    for rate in serverless_error_rates:
        policies = [False] if rate == 0.0 else [False, True]
        for retry in policies:
            result = run_serverless_scenario(seed=seed, error_rate=rate,
                                             retry=retry)
            report.outcomes.append(ChaosOutcome(
                domain="serverless",
                fault="none" if rate == 0.0 else f"transient p={rate}",
                policy="retry+backoff" if retry else "none",
                slo_attainment=result["slo_attainment"],
                availability=result["availability"],
                details=result))
    for mtbf in scheduling_mtbfs:
        policies = [True] if mtbf is None else [False, True]
        for requeue in policies:
            result = run_scheduling_scenario(seed=seed, mtbf_s=mtbf,
                                             requeue=requeue)
            report.outcomes.append(ChaosOutcome(
                domain="scheduling",
                fault="none" if mtbf is None else f"crash mtbf={mtbf:g}s",
                policy="requeue" if requeue else "none",
                slo_attainment=result["slo_attainment"],
                availability=result["availability"],
                details=result))
    return report
