"""Fault models: the ways components stop working.

The paper makes availability a first-class non-functional requirement (P3)
and its challenges C3/C6 call for evaluating designs under realistic failure
regimes, not happy paths. These models are domain-agnostic generators of
misbehavior on top of :mod:`repro.sim`:

- :class:`CrashRestart` — fail-stop targets with exponential holding times
  (generalizes the cluster :class:`~repro.cluster.failures.FailureInjector`);
- :class:`TransientErrorModel` — probabilistic per-operation failure
  (the serverless "function invocation errored" model);
- :class:`StragglerModel` — per-operation latency multiplier (slow, not
  dead — the graph-analytics straggler);
- :class:`CorrelatedBurst` — one event takes down a random fraction of
  targets at once (rack/switch/AZ blast radius);
- :class:`MessageLossModel` — payload loss on a lossy channel, with
  re-request accounting (the P2P piece-exchange model).

All randomness comes from caller-provided seeded ``numpy`` generators so
every chaotic run replays deterministically (Challenge C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.sim import Environment, Monitor


class FaultInjectedError(RuntimeError):
    """An error injected by a fault model (distinguishable from real bugs)."""


@dataclass
class TransientErrorModel:
    """Probabilistic per-operation failure.

    Call :meth:`should_fail` once per operation; it draws from the seeded
    stream and keeps injection statistics. Setting ``enabled`` to False
    makes the model a no-op *without* consuming random numbers, so a
    baseline run and a chaotic run of the same seed stay comparable.
    """

    rng: np.random.Generator
    error_rate: float
    enabled: bool = True
    checks: int = 0
    injected: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate {self.error_rate} not in [0, 1]")

    def should_fail(self) -> bool:
        """Draw one operation's fate."""
        self.checks += 1
        if not self.enabled or self.error_rate == 0.0:
            return False
        hit = bool(self.rng.random() < self.error_rate)
        if hit:
            self.injected += 1
        return hit

    def maybe_raise(self, what: str = "operation") -> None:
        """Raise :class:`FaultInjectedError` with probability ``error_rate``."""
        if self.should_fail():
            raise FaultInjectedError(f"injected transient error in {what}")


@dataclass
class StragglerModel:
    """Per-operation slowdown: with probability p, an operation runs
    ``multiplier``× slower (slow-but-alive, the hardest failure mode to
    detect — hedging, not retry, is the mitigation)."""

    rng: np.random.Generator
    probability: float
    multiplier: float = 4.0
    draws: int = 0
    stragglers: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} not in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def runtime_factor(self) -> float:
        """Multiplier for one operation's service time (1.0 or ``multiplier``)."""
        self.draws += 1
        if self.probability and self.rng.random() < self.probability:
            self.stragglers += 1
            return self.multiplier
        return 1.0


@dataclass
class MessageLossModel:
    """Loss on a lossy transfer channel, at ~1 MB piece granularity.

    :meth:`transfer` returns the goodput of an attempted transfer and books
    the lost remainder as re-requested work (the sender's bandwidth is spent
    either way; the receiver must fetch the lost pieces again).
    """

    rng: np.random.Generator
    loss_rate: float
    delivered_mb: float = 0.0
    lost_mb: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate {self.loss_rate} not in [0, 1)")

    def transfer(self, mb: float) -> float:
        """Goodput of an attempted ``mb`` transfer (the rest is lost)."""
        if mb <= 0:
            return 0.0
        if self.loss_rate == 0.0:
            self.delivered_mb += mb
            return mb
        pieces = max(1, int(round(mb)))
        lost = float(self.rng.binomial(pieces, self.loss_rate)) / pieces * mb
        self.lost_mb += lost
        self.delivered_mb += mb - lost
        return mb - lost


def _default_is_up(target: Any) -> bool:
    up = getattr(target, "is_up", None)
    if up is not None:
        return up() if callable(up) else bool(up)
    raise TypeError(
        f"{target!r} has no is_up; pass is_up= to the fault model")


def _default_fail(target: Any) -> None:
    target.fail()


def _default_repair(target: Any) -> None:
    target.repair()


class CrashRestart:
    """Fail-stop crash/restart over arbitrary targets.

    Each target lives an UP ~ Exp(mtbf) / DOWN ~ Exp(mttr) alternating
    renewal process. The expected long-run availability is the classic
    ``mtbf / (mtbf + mttr)``; :meth:`empirical_availability` measures the
    realized one so tests can assert the model is well calibrated.

    Targets need ``fail()``/``repair()`` methods and an ``is_up`` predicate
    (overridable via the ``fail``/``repair``/``is_up`` hooks), which lets the
    same model drive cluster machines, serverless instance pools, or peers.
    """

    def __init__(self, env: Environment, targets: Sequence[Any],
                 rng: np.random.Generator,
                 mtbf_s: float, mttr_s: float,
                 fail: Callable[[Any], None] = _default_fail,
                 repair: Callable[[Any], None] = _default_repair,
                 is_up: Callable[[Any], bool] = _default_is_up,
                 on_fail: Optional[Callable[[Any], None]] = None,
                 on_repair: Optional[Callable[[Any], None]] = None,
                 monitor: Optional[Monitor] = None,
                 name: str = "crash"):
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        self.env = env
        self.targets = list(targets)
        self.rng = rng
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s
        self._fail = fail
        self._repair = repair
        self._is_up = is_up
        self.on_fail = on_fail
        self.on_repair = on_repair
        self.monitor = monitor
        self.name = name
        self.failures = 0
        self.repairs = 0
        #: Summed DOWN time over completed outages, across all targets.
        self._downtime_s = 0.0
        self._down_since: dict[int, float] = {}
        self._started_at = env.now
        self._procs = [env.process(self._life(t)) for t in self.targets]

    def _life(self, target: Any):
        while True:
            # Sample this target's next uptime. If the timer lands while the
            # target is already down (another injector, a burst fault, an
            # operator drain), the sample is void: resample a fresh uptime
            # rather than crash-on-repair, which would skew the effective
            # MTBF and double-count the outage.
            yield self.env.timeout(float(self.rng.exponential(self.mtbf_s)))
            if not self._is_up(target):
                continue
            self.fail_now(target)
            yield self.env.timeout(float(self.rng.exponential(self.mttr_s)))
            self.repair_now(target)

    # -- manual triggers (used by the burst model and tests) ---------------
    def fail_now(self, target: Any) -> None:
        self._fail(target)
        self.failures += 1
        self._down_since[id(target)] = self.env.now
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_failures",
                               key=getattr(target, "name", None))
        if self.on_fail is not None:
            self.on_fail(target)

    def repair_now(self, target: Any) -> None:
        self._repair(target)
        self.repairs += 1
        down_since = self._down_since.pop(id(target), None)
        if down_since is not None:
            self._downtime_s += self.env.now - down_since
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_repairs",
                               key=getattr(target, "name", None))
        if self.on_repair is not None:
            self.on_repair(target)

    # -- measurement -------------------------------------------------------
    @property
    def expected_availability(self) -> float:
        return self.mtbf_s / (self.mtbf_s + self.mttr_s)

    def empirical_availability(self, until: Optional[float] = None) -> float:
        """Realized time-averaged availability across all targets."""
        until = self.env.now if until is None else until
        horizon = until - self._started_at
        if horizon <= 0 or not self.targets:
            return 1.0
        down = self._downtime_s + sum(
            until - since for since in self._down_since.values())
        return 1.0 - down / (horizon * len(self.targets))


class CorrelatedBurst:
    """Correlated failure bursts: at Exp(mean_interval) epochs, a random
    ``fraction`` of currently-up targets crash together (shared switch,
    rack power, AZ outage). Victims repair independently after Exp(mttr).
    """

    def __init__(self, env: Environment, targets: Sequence[Any],
                 rng: np.random.Generator,
                 mean_interval_s: float, fraction: float = 0.25,
                 mttr_s: float = 120.0,
                 fail: Callable[[Any], None] = _default_fail,
                 repair: Callable[[Any], None] = _default_repair,
                 is_up: Callable[[Any], bool] = _default_is_up,
                 on_fail: Optional[Callable[[Any], None]] = None,
                 monitor: Optional[Monitor] = None):
        if mean_interval_s <= 0 or mttr_s <= 0:
            raise ValueError("mean_interval_s and mttr_s must be positive")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction {fraction} not in (0, 1]")
        self.env = env
        self.targets = list(targets)
        self.rng = rng
        self.mean_interval_s = mean_interval_s
        self.fraction = fraction
        self.mttr_s = mttr_s
        self._fail = fail
        self._repair = repair
        self._is_up = is_up
        self.on_fail = on_fail
        self.monitor = monitor
        self.bursts = 0
        self.victims = 0
        self._proc = env.process(self._burst_loop())

    def _burst_loop(self):
        while True:
            yield self.env.timeout(
                float(self.rng.exponential(self.mean_interval_s)))
            up = [t for t in self.targets if self._is_up(t)]
            if not up:
                continue
            k = max(1, int(round(self.fraction * len(up))))
            picks = self.rng.choice(len(up), size=min(k, len(up)),
                                    replace=False)
            self.bursts += 1
            if self.monitor is not None:
                self.monitor.count("bursts")
                self.monitor.record("burst_size", len(picks))
            for idx in np.atleast_1d(picks):
                victim = up[int(idx)]
                self.victims += 1
                self._fail(victim)
                if self.on_fail is not None:
                    self.on_fail(victim)
                self.env.process(self._repair_later(victim))

    def _repair_later(self, victim: Any):
        yield self.env.timeout(float(self.rng.exponential(self.mttr_s)))
        if not self._is_up(victim):
            self._repair(victim)
