"""Resilience policies: composable combinators that keep work flowing.

Each policy is a *sim-process combinator*: a generator you ``yield from``
inside any :class:`~repro.sim.Process`, wrapping an attempt factory. They
compose — hedge a retried call, retry through a circuit breaker — because
each one only needs "a callable producing a fresh attempt" and returns the
attempt's value:

>>> def handler(env):
...     result = yield from RetryPolicy(max_attempts=3).call(
...         env, lambda: flaky_operation(env),
...         rng=streams.get("retry-jitter"))

(A policy with ``jitter > 0`` — the default — requires the rng; pass
``jitter=0.0`` explicitly to opt out of jittered backoff.)

Provided policies:

- :class:`RetryPolicy` — bounded retries with exponential backoff + jitter;
- :func:`with_timeout` — bound an attempt's latency, raising
  :class:`TimeoutExceeded`;
- :class:`CircuitBreaker` — closed/open/half-open failure isolation with a
  cooldown, raising :class:`CircuitOpenError` while open;
- :class:`Hedge` — speculative duplicate attempt after a quantile delay;
  the first finisher wins (the classic tail-latency mitigation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.faults.models import FaultInjectedError
from repro.sim import AnyOf, Environment, Event, Process


class TimeoutExceeded(RuntimeError):
    """An attempt exceeded its :func:`with_timeout` bound."""


class CircuitOpenError(RuntimeError):
    """Call rejected because the circuit breaker is open."""


def as_event(env: Environment, attempt: Any) -> Event:
    """Normalize an attempt (generator or Event) into an Event to wait on."""
    if isinstance(attempt, Event):
        return attempt
    if hasattr(attempt, "throw"):  # a generator: run it as a process
        return env.process(attempt)
    raise TypeError(
        f"attempt must be an Event or a generator, got {type(attempt).__name__}")


def _defuse(event: Event) -> None:
    event._defused = True


def _abandon(event: Event) -> None:
    """Let an abandoned attempt finish (or fail) without crashing the sim."""
    if event.callbacks is not None:
        event.callbacks.append(_defuse)
    elif event.triggered and not event._ok:
        event._defused = True


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and optional jitter.

    ``retry_on`` lists the exception types considered transient; anything
    else propagates immediately (don't retry a programming error).

    ``max_elapsed_s`` is a *retry budget*: if waiting out the next backoff
    would push the total time since the first attempt past it, the policy
    gives up and re-raises instead of sleeping — the caller's deadline
    matters more than the attempt count.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    #: Relative jitter: the delay is scaled by U(1 - jitter, 1 + jitter).
    jitter: float = 0.1
    #: Total time budget across attempts and backoffs (None = unbounded).
    max_elapsed_s: Optional[float] = None
    retry_on: tuple = (FaultInjectedError, TimeoutExceeded)
    retries: int = 0
    exhausted: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ValueError("max_elapsed_s must be positive")

    def backoff_s(self, attempt: int,
                  rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry number ``attempt`` (1-based).

        A policy with ``jitter > 0`` *requires* an rng: jitter exists to
        de-synchronize retry storms, and silently skipping it (the old
        behavior) ran chaos experiments with phase-locked retries while
        reporting a jittered configuration. Callers that genuinely want
        deterministic backoff must say so with ``jitter=0.0``.
        """
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if self.jitter > 0:
            if rng is None:
                raise ValueError(
                    f"RetryPolicy has jitter={self.jitter} but backoff_s() "
                    "got rng=None; pass a named RandomStreams generator "
                    "(e.g. streams.get('retry-jitter')) or construct the "
                    "policy with jitter=0.0 to opt out explicitly")
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def call(self, env: Environment, factory: Callable[[], Any],
             rng: Optional[np.random.Generator] = None):
        """Combinator: ``result = yield from policy.call(env, factory)``."""
        attempt = 0
        started = env.now
        while True:
            attempt += 1
            try:
                result = yield as_event(env, factory())
                return result
            except self.retry_on:
                if attempt >= self.max_attempts:
                    self.exhausted += 1
                    raise
                delay = self.backoff_s(attempt, rng)
                if (self.max_elapsed_s is not None
                        and env.now - started + delay > self.max_elapsed_s):
                    # The backoff would outlive the retry budget: give up
                    # now rather than return even later.
                    self.exhausted += 1
                    raise
                self.retries += 1
                yield env.timeout(delay)


def with_timeout(env: Environment, attempt: Any, timeout_s: float,
                 cancel: bool = True):
    """Combinator: wait for ``attempt`` at most ``timeout_s``.

    ``result = yield from with_timeout(env, ev, 5.0)`` returns the
    attempt's value, or raises :class:`TimeoutExceeded`. On timeout a
    Process attempt is interrupted (``cancel=True``) and its eventual
    outcome is defused so an abandoned failure cannot crash the run.
    """
    if timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    target = as_event(env, attempt)
    # Defuse up-front: if the attempt fails a tick after losing the race,
    # nobody is waiting on it any more.
    _abandon(target)
    timer = env.timeout(timeout_s)
    yield AnyOf(env, [target, timer])
    if target.triggered:
        if target.ok:
            return target.value
        raise target.value
    if cancel and isinstance(target, Process) and target.is_alive:
        target.interrupt("timeout")
    raise TimeoutExceeded(f"attempt exceeded {timeout_s}s")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure isolation: stop hammering a dependency that keeps failing.

    CLOSED passes calls through, counting consecutive failures; at
    ``failure_threshold`` the breaker trips OPEN and rejects calls with
    :class:`CircuitOpenError` for ``cooldown_s``; then HALF_OPEN admits up
    to ``half_open_max`` probes — one success re-closes, one failure
    re-opens.
    """

    def __init__(self, env: Environment, failure_threshold: int = 5,
                 cooldown_s: float = 30.0, half_open_max: int = 1,
                 name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.env = env
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_max = half_open_max
        self.name = name
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = -float("inf")
        self._half_open_inflight = 0
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> BreakerState:
        if (self._state is BreakerState.OPEN
                and self.env.now - self._opened_at >= self.cooldown_s):
            self._state = BreakerState.HALF_OPEN
            self._half_open_inflight = 0
        return self._state

    def allow(self) -> bool:
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._half_open_inflight < self.half_open_max:
            self._half_open_inflight += 1
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (self.state is BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            self._state = BreakerState.OPEN
            self._opened_at = self.env.now
            self.opens += 1

    def call(self, factory: Callable[[], Any]):
        """Combinator: ``result = yield from breaker.call(factory)``."""
        if not self.allow():
            self.rejections += 1
            raise CircuitOpenError(f"{self.name} is open")
        try:
            result = yield as_event(self.env, factory())
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result


class Hedge:
    """Speculative execution: if an attempt has not finished after
    ``delay_s`` (pick ~the attempt's p95 latency), launch a duplicate and
    take whichever finishes first. Up to ``max_hedges`` duplicates.
    """

    def __init__(self, delay_s: float, max_hedges: int = 1):
        if delay_s <= 0:
            raise ValueError("delay_s must be positive")
        if max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")
        self.delay_s = delay_s
        self.max_hedges = max_hedges
        self.launched = 0
        self.hedges = 0
        self.hedge_wins = 0

    def run(self, env: Environment, factory: Callable[[], Any]):
        """Combinator: ``result = yield from hedge.run(env, factory)``."""
        attempts = [as_event(env, factory())]
        _abandon(attempts[0])
        self.launched += 1
        while True:
            can_hedge = len(attempts) <= self.max_hedges
            racers = list(attempts)
            if can_hedge:
                racers.append(env.timeout(self.delay_s))
            yield AnyOf(env, racers)
            winner = next((ev for ev in attempts if ev.triggered), None)
            if winner is None:
                # The hedge timer fired: launch a duplicate attempt.
                hedge = as_event(env, factory())
                _abandon(hedge)
                attempts.append(hedge)
                self.launched += 1
                self.hedges += 1
                continue
            if attempts.index(winner) > 0:
                self.hedge_wins += 1
            # Cancel the losers; their outcomes are already defused.
            for ev in attempts:
                if ev is not winner and isinstance(ev, Process) and ev.is_alive:
                    ev.interrupt("hedge-won")
            if winner.ok:
                return winner.value
            raise winner.value
