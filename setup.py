"""Legacy setup shim: the offline environment's setuptools lacks bdist_wheel,
so editable installs go through this file instead of PEP 517."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "AtLarge: an executable reproduction of the ATLARGE design framework "
        "for massivizing computer systems (ICDCS 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
