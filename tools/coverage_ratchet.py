#!/usr/bin/env python
"""Coverage ratchet: the floor only ever goes up.

CI runs ``pytest --cov=repro --cov-report=json`` and then::

    python tools/coverage_ratchet.py check coverage.json

which fails if total line coverage dropped below the committed floor in
``.coverage-floor``. When coverage has risen comfortably above the
floor, raise it (and commit the new floor) with::

    python tools/coverage_ratchet.py update coverage.json

The update subcommand leaves :data:`SLACK` points of headroom so
ordinary refactoring churn doesn't flap CI, and it refuses to lower the
floor — that direction requires a human editing the file, visibly, in
review.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR_FILE = Path(__file__).resolve().parents[1] / ".coverage-floor"

#: Headroom (percentage points) left under measured coverage on update.
SLACK = 1.0


def read_floor() -> float:
    return float(FLOOR_FILE.read_text().strip())


def read_total(report: Path) -> float:
    data = json.loads(report.read_text())
    return float(data["totals"]["percent_covered"])


def check(report: Path) -> int:
    floor, total = read_floor(), read_total(report)
    if total < floor:
        print(f"FAIL: coverage {total:.2f}% is below the floor {floor:.2f}% "
              f"({FLOOR_FILE.name}); add tests or (in review) justify "
              "lowering the floor")
        return 1
    print(f"ok: coverage {total:.2f}% >= floor {floor:.2f}%")
    headroom = total - floor
    if headroom > 2 * SLACK:
        print(f"hint: {headroom:.2f} points of headroom — consider "
              f"`python tools/coverage_ratchet.py update` to ratchet up")
    return 0


def update(report: Path) -> int:
    floor, total = read_floor(), read_total(report)
    new_floor = round(total - SLACK, 2)
    if new_floor <= floor:
        print(f"floor stays at {floor:.2f}% (measured {total:.2f}%)")
        return 0
    FLOOR_FILE.write_text(f"{new_floor}\n")
    print(f"floor raised {floor:.2f}% -> {new_floor:.2f}% "
          f"(measured {total:.2f}%)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("report", nargs="?", default="coverage.json",
                        type=Path, help="coverage JSON report path")
    args = parser.parse_args(argv)
    if not args.report.exists():
        print(f"no coverage report at {args.report}; run pytest with "
              "--cov=repro --cov-report=json first")
        return 2
    return {"check": check, "update": update}[args.command](args.report)


if __name__ == "__main__":
    sys.exit(main())
