#!/usr/bin/env python
"""Kernel perf ratchet: the throughput floor only ever goes up.

CI runs the kernel macro-bench in smoke mode and then checks the result
against the committed floor::

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --out bench_quick.json
    python tools/perf_ratchet.py check bench_quick.json

which fails if any workload's *normalized* throughput (events per
calibration unit — machine-speed independent, see
``benchmarks/bench_kernel.py``) dropped below its floor in
``.perf-floor``. After a deliberate kernel speedup, raise the floors
(and commit the new file) with::

    python tools/perf_ratchet.py update bench_quick.json

Update leaves :data:`SLACK` of headroom under the measured value so CI
machine jitter doesn't flap the gate, and it refuses to lower a floor —
that direction requires a human editing ``.perf-floor``, visibly, in
review. The floor file is keyed to the bench revision and scale; when
``benchmarks/bench_kernel.py`` changes its workloads (bumping
``BENCH_REVISION``), re-measure and re-``update`` rather than comparing
apples to oranges.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR_FILE = Path(__file__).resolve().parents[1] / ".perf-floor"

#: Fractional headroom left under measured normalized throughput on
#: update. Shared CI runners see large wall-clock jitter even after
#: calibration normalization; the ratchet exists to catch structural
#: regressions (a hot path falling off its fast tier), not 10% noise.
SLACK = 0.35


def read_floor() -> dict:
    return json.loads(FLOOR_FILE.read_text())


def read_report(report: Path) -> dict:
    return json.loads(report.read_text())


def _compatible(floor: dict, doc: dict) -> str | None:
    if floor.get("bench_revision") != doc.get("format"):
        return (f"bench revision {doc.get('format')} != floor's "
                f"{floor.get('bench_revision')}; re-measure and run "
                "`python tools/perf_ratchet.py update`")
    if floor.get("scale") != doc.get("scale"):
        return (f"bench scale {doc.get('scale')} != floor's "
                f"{floor.get('scale')}; run the bench with "
                f"--scale {floor.get('scale')}")
    return None


def check(report: Path) -> int:
    floor, doc = read_floor(), read_report(report)
    mismatch = _compatible(floor, doc)
    if mismatch is not None:
        print(f"FAIL: {mismatch}")
        return 1
    failures, min_headroom = [], float("inf")
    for name, bound in sorted(floor["floors"].items()):
        row = doc["scenarios"].get(name)
        if row is None:
            failures.append(f"{name}: missing from the bench report")
            continue
        measured = row["normalized"]
        if measured < bound:
            failures.append(
                f"{name}: normalized throughput {measured:.4f} is below "
                f"the floor {bound:.4f}")
        else:
            print(f"ok: {name} normalized {measured:.4f} >= "
                  f"floor {bound:.4f}")
            min_headroom = min(min_headroom, measured / bound - 1.0)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        print(f"kernel throughput regressed below {FLOOR_FILE.name}; "
              "fix the hot path or (in review) justify lowering the floor")
        return 1
    if min_headroom != float("inf") and min_headroom > 2 * SLACK:
        print(f"hint: {min_headroom:.0%} headroom on every workload — "
              "consider `python tools/perf_ratchet.py update` to ratchet up")
    return 0


def update(report: Path) -> int:
    doc = read_report(report)
    floor = read_floor() if FLOOR_FILE.exists() else {
        "bench_revision": doc.get("format"),
        "scale": doc.get("scale"),
        "floors": {},
    }
    rebase = _compatible(floor, doc) is not None
    if rebase:
        # Workloads changed shape: old floors are meaningless, start over.
        print(f"re-keying {FLOOR_FILE.name} to bench revision "
              f"{doc.get('format')} scale {doc.get('scale')}")
        floor = {"bench_revision": doc.get("format"),
                 "scale": doc.get("scale"), "floors": {}}
    changed = rebase
    for name, row in sorted(doc["scenarios"].items()):
        candidate = round(row["normalized"] * (1.0 - SLACK), 4)
        current = floor["floors"].get(name)
        if current is None or candidate > current:
            floor["floors"][name] = candidate
            print(f"{name}: floor "
                  f"{'set' if current is None else 'raised'} to "
                  f"{candidate:.4f} (measured {row['normalized']:.4f})")
            changed = True
        else:
            print(f"{name}: floor stays at {current:.4f} "
                  f"(measured {row['normalized']:.4f})")
    if changed:
        FLOOR_FILE.write_text(
            json.dumps(floor, indent=1, sort_keys=True) + "\n")
        print(f"wrote {FLOOR_FILE.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("report", nargs="?", default="bench_quick.json",
                        type=Path, help="bench_kernel JSON report path")
    args = parser.parse_args(argv)
    if not args.report.exists():
        print(f"no bench report at {args.report}; run PYTHONPATH=src "
              f"python benchmarks/bench_kernel.py --quick "
              f"--out {args.report} first")
        return 2
    if args.command == "check" and not FLOOR_FILE.exists():
        print(f"no {FLOOR_FILE.name}; bootstrap it with "
              "`python tools/perf_ratchet.py update`")
        return 2
    return {"check": check, "update": update}[args.command](args.report)


if __name__ == "__main__":
    sys.exit(main())
