#!/usr/bin/env python3
"""A serverless data pipeline on the FaaS platform (paper §6.4).

Deploys an extract/transform/load function set, composes them with the
workflow engine (fan-out over eight shards), and reports the serverless
economics: cold starts, the pre-warming mitigation, and the customer vs.
provider cost split.

Run:  python examples/serverless_pipeline.py
"""

from repro.serverless import (
    FaaSPlatform,
    FunctionSpec,
    FunctionWorkflow,
    PlatformConfig,
    WorkflowEngine,
)
from repro.sim import Environment


def run_pipeline(prewarmed: int):
    env = Environment()
    platform = FaaSPlatform(env, PlatformConfig(
        cold_start_s=1.5, keep_alive_s=600.0, prewarmed=prewarmed))
    platform.deploy(FunctionSpec("extract", runtime_s=0.4, memory_gb=0.5))
    platform.deploy(FunctionSpec("transform", runtime_s=2.0,
                                 memory_gb=1.0))
    platform.deploy(FunctionSpec("load", runtime_s=0.6, memory_gb=0.5))
    engine = WorkflowEngine(env, platform)
    pipeline = FunctionWorkflow.fan_out_fan_in(
        "etl", "extract", ["transform"] * 8, "load")

    def scenario(env):
        # Two back-to-back runs: the second benefits from warm instances.
        first = yield engine.submit(pipeline)
        second_wf = FunctionWorkflow.fan_out_fan_in(
            "etl-2", "extract", ["transform"] * 8, "load")
        second = yield engine.submit(second_wf)
        return first, second

    first, second = env.run(until=env.process(scenario(env)))
    return platform, first, second


def main():
    for prewarmed in (0, 4):
        platform, first, second = run_pipeline(prewarmed)
        print(f"\n--- prewarmed instances per function: {prewarmed} ---")
        print(f"run 1 makespan: {first.makespan:.1f} s "
              f"(pure function time {first.critical_path_runtime:.1f} s)")
        print(f"run 2 makespan: {second.makespan:.1f} s  <- warm")
        print(f"cold-start fraction: "
              f"{platform.cold_start_fraction():.0%}")
        print(f"customer bill: ${platform.cost():.6f} "
              f"(only execution GB-s — principle 2)")
        print(f"provider idle burn: {platform.idle_gb_s:.1f} GB-s "
              f"(keep-alive + pre-warming, not billed)")


if __name__ == "__main__":
    main()
