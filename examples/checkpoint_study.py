#!/usr/bin/env python3
"""Checkpoint study: finding the Young/Daly sweet spot empirically.

Sweeps the checkpoint interval around the analytic optimum
``sqrt(2 * C * MTBF)`` at two MTBF settings, with common random numbers
(same seed => same crash schedule for every interval), and shows the
classic U-curve: checkpoint too often and you drown in checkpoint
overhead, too rarely and every crash throws away a fortune in lost work.

Then demonstrates the other recovery wirings: the scheduler fail-stopping
mid-schedule and recovering its believed state from the write-ahead
journal with zero completed tasks lost.

Run:  PYTHONPATH=src python examples/checkpoint_study.py
"""

from repro.faults.chaos import (
    run_recovery_scenario,
    run_scheduler_recovery_scenario,
)
from repro.recovery import CHECKPOINT_TIERS, daly_interval_s

SEEDS = (7, 19, 42)
MULTIPLIERS = (0.2, 0.5, 1.0, 2.0, 5.0)
WORK_S = 1500.0
SIZE_MB = 500.0
TIER = "remote"


def sweep(mtbf_s):
    tier = CHECKPOINT_TIERS[TIER]
    cost_s = tier.latency_s + SIZE_MB / tier.write_mb_per_s
    optimum = daly_interval_s(cost_s, mtbf_s)
    rows = []
    for mult in MULTIPLIERS:
        runs = [run_recovery_scenario(seed=seed, policy="periodic",
                                      interval_s=mult * optimum,
                                      work_s=WORK_S, mtbf_s=mtbf_s,
                                      checkpoint_size_mb=SIZE_MB, tier=TIER)
                for seed in SEEDS]
        mean = lambda key: sum(r[key] for r in runs) / len(runs)
        rows.append([f"{mult}x ({mult * optimum:.0f} s)",
                     f"{mean('makespan_s'):.0f} s",
                     f"{mean('makespan_inflation'):.0%}",
                     f"{mean('lost_work_s'):.0f} s",
                     f"{mean('checkpoint_time_s'):.0f} s"])
    return optimum, rows


def print_table(headers, rows):
    widths = [max(len(str(r[i])) for r in [headers] + rows)
              for i in range(len(headers))]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def main():
    for mtbf_s in (300.0, 600.0):
        optimum, rows = sweep(mtbf_s)
        print(f"MTBF {mtbf_s:.0f} s — Young/Daly optimum "
              f"{optimum:.0f} s (work {WORK_S:.0f} s, "
              f"mean of {len(SEEDS)} seeds):")
        print_table(["interval", "makespan", "inflation", "lost work",
                     "ckpt time"], rows)
        print()

    baseline = run_recovery_scenario(seed=7, policy="none",
                                     work_s=WORK_S, mtbf_s=300.0)
    daly = run_recovery_scenario(seed=7, policy="daly", work_s=WORK_S,
                                 mtbf_s=300.0, checkpoint_size_mb=SIZE_MB,
                                 tier=TIER)
    print(f"Without checkpoints the same job (seed 7, MTBF 300 s) restarts "
          f"from scratch {baseline['crashes']} times and takes "
          f"{baseline['makespan_s'] / 3600:.1f} sim-hours; Daly-optimal "
          f"checkpointing finishes in {daly['makespan_s'] / 60:.0f} "
          f"sim-minutes.")

    sched = run_scheduler_recovery_scenario(seed=7)
    print(f"\nScheduler crash-recovery: the scheduler fail-stopped at "
          f"t=40s for 60s while machines kept running. Journal replay "
          f"({sched['journal_appends']} records) recovered "
          f"{sched['recovered_completions']} unreported completions, "
          f"re-adopted {sched['readopted']} surviving dispatches, and "
          f"requeued {sched['orphans_requeued']} orphans: "
          f"{sched['completed']} tasks completed, {sched['lost']} lost.")


if __name__ == "__main__":
    main()
