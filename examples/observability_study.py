#!/usr/bin/env python3
"""Observability study: one command, all three instruments.

Runs the canonical golden scenarios (every simulation domain) with a
span tracer and a shared metrics registry attached, under the sim
profiler, and prints:

1. the span-trace summary and content digest per scenario,
2. the pooled cross-domain metrics registry (Prometheus-style text),
3. the profiler's top-N wall-clock report (with ``--profile``).

This is the "measure everything you report" workflow of the AtLarge
vision made concrete: the same run produces the behavioral trace the
golden regression tests diff, the metrics a dashboard would scrape, and
the wall-clock attribution that tells you where simulation time goes.

Run:  PYTHONPATH=src python examples/observability_study.py --profile
"""

import argparse
import sys

from repro.observability import MetricsRegistry, SimProfiler
from repro.observability.scenarios import GOLDEN_SEED, SCENARIOS, run_scenario


def _argv():
    """Real CLI args, or none when run under a test harness.

    The examples smoke test executes this file via ``runpy`` inside
    pytest, where ``sys.argv`` belongs to pytest — parse no args there.
    """
    if "pytest" in sys.modules:
        return []
    return sys.argv[1:]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--profile", action="store_true",
                        help="attach the sim profiler and print its report")
    parser.add_argument("--top", type=int, default=8,
                        help="profiler rows to print (default 8)")
    parser.add_argument("--seed", type=int, default=GOLDEN_SEED,
                        help=f"scenario seed (default {GOLDEN_SEED})")
    parser.add_argument("scenarios", nargs="*", choices=[[], *SCENARIOS],
                        help="subset of scenarios (default: all)")
    args = parser.parse_args(_argv())
    names = args.scenarios or list(SCENARIOS)

    pooled = MetricsRegistry()
    profiler = SimProfiler() if args.profile else None

    print("== span traces " + "=" * 49)
    for name in names:
        if profiler is not None:
            with profiler:
                tracer, registry, summary = run_scenario(name, seed=args.seed)
        else:
            tracer, registry, summary = run_scenario(name, seed=args.seed)
        print(tracer.summary())
        for (metric, label_key), obj in registry.items():
            pooled.adopt(metric, obj, dict(label_key) or None)
        interesting = {k: v for k, v in summary.items()
                       if isinstance(v, (int, float))}
        print(f"  summary: {interesting}\n")

    print("== pooled metrics registry " + "=" * 37)
    print(pooled.export_text())

    if profiler is not None:
        print("== profiler " + "=" * 52)
        print(profiler.report(top=args.top))


if __name__ == "__main__":
    main()
