#!/usr/bin/env python3
"""Design-space exploration of a real MCS problem, the ATLARGE way.

The design problem: configure a datacenter scheduling stack — policy,
cluster shape, and machine size — to minimize bounded slowdown for a
scientific workload. Candidate quality is measured by *simulation*
(Challenge C3: simulation-based design-space exploration), the problem is
explored with the framework's processes (Figure 6), and the whole effort
runs inside a Basic Design Cycle that records its provenance (Figure 8 +
Challenge C8).

Run:  python examples/design_space_exploration.py
"""

from repro.cluster import Cluster
from repro.core import (
    BasicDesignCycle,
    DesignProblem,
    DesignSpace,
    Dimension,
    FixTheHowExploration,
    FreeExploration,
    Stage,
    StoppingCriterion,
)
from repro.scheduling import simulate_schedule
from repro.scheduling.policies import make_policy
from repro.scheduling.experiments import rescale_to_load
from repro.sim import RandomStreams
from repro.workload import generate_domain_workload

SPACE = DesignSpace([
    Dimension("policy", ("fcfs", "sjf", "ljf", "backfill", "fair-share")),
    Dimension("machines", ("4", "8", "16")),
    Dimension("cores", ("4", "8")),
])

streams = RandomStreams(seed=2026)


def evaluate(candidate) -> float:
    """Quality in [0, 1]: inverse of simulated mean bounded slowdown."""
    cluster = Cluster.homogeneous(
        "dc", int(candidate["machines"]), cores=int(candidate["cores"]))
    rng = streams.spawn(str(sorted(candidate.choices))).get("wl")
    jobs = generate_domain_workload(rng, "scientific", n_jobs=12,
                                    horizon_s=90 * 86400)
    rescale_to_load(jobs, cluster, target_load=2.0)
    policy = make_policy(candidate["policy"], rng)
    metrics = simulate_schedule(jobs, cluster, policy)
    return 1.0 / metrics.mean_bounded_slowdown


def main():
    problem = DesignProblem(
        "scientific-stack", SPACE, quality=evaluate,
        satisfice_threshold=0.5,   # slowdown <= 2 is "good enough"
        has_complete_domain_knowledge=False)  # estimates are imperfect
    print(f"design space: {SPACE.size} candidates; problem is "
          f"{problem.structure().value}")

    # Explore with two of the Figure 6 processes.
    for explorer in (FreeExploration(streams.get("free")),
                     FixTheHowExploration(streams.get("how"), restarts=2)):
        result = explorer.explore(problem, budget=12)
        best = (dict(result.best_candidate.choices)
                if result.best_candidate else None)
        print(f"{explorer.name:>12}: {len(result.solutions)} satisficing "
              f"designs, best quality {result.best_quality:.2f} "
              f"(slowdown {1 / max(result.best_quality, 1e-9):.2f}) "
              f"-> {best}")

    # The same effort as a provenance-recorded Basic Design Cycle.
    rng = streams.get("bdc")

    def design_stage(context):
        candidate = SPACE.random_candidate(rng)
        quality = problem.evaluate(candidate)
        context.setdefault("tried", []).append(
            (dict(candidate.choices), round(quality, 3)))
        if quality >= problem.satisfice_threshold:
            return (candidate, quality)
        return None

    cycle = BasicDesignCycle(
        "scientific-stack", handlers={Stage.DESIGN: design_stage},
        target=StoppingCriterion.SATISFICED, budget=40)
    outcome = cycle.run()
    print(f"\nBDC stopped by: {outcome.stopped_by.value} after "
          f"{outcome.iterations} iterations "
          f"({outcome.budget_spent} stage executions)")
    if outcome.answers:
        candidate, quality = outcome.answers[0]
        print(f"satisficing design: {dict(candidate.choices)} "
              f"(quality {quality:.2f})")
    path = outcome.document.save("/tmp/scientific-stack-design.json")
    print(f"provenance document (Challenge C8 formalism): {path}")


if __name__ == "__main__":
    main()
