#!/usr/bin/env python3
"""The §6.7 autoscaler shootout, end to end.

Runs all seven autoscalers on the same workflow workload, prints the ten
elasticity metrics, both ranking methods, SLA compliance, costs under two
billing models, and the combined grade — the paper's full analysis stack
for one experiment.

Run:  python examples/autoscaler_shootout.py
"""

import copy

from repro.autoscaling import (
    AUTOSCALERS,
    ELASTICITY_METRIC_NAMES,
    ExperimentConfig,
    fractional_scores,
    grade_autoscalers,
    make_autoscaler,
    pairwise_wins,
    run_autoscaling_experiment,
)
from repro.sim import RandomStreams
from repro.workload import generate_workflow_workload


def main():
    rng = RandomStreams(seed=11).get("workload")
    workflows = generate_workflow_workload(rng, n_workflows=12,
                                           horizon_s=30 * 86400)
    first = min(w.submit_time for w in workflows)
    for w in workflows:  # compress arrivals into a contended window
        new_submit = first + (w.submit_time - first) * 0.02
        w.submit_time = new_submit
        for t in w.tasks:
            t.submit_time = new_submit

    config = ExperimentConfig(step_s=30.0, provisioning_delay_steps=2,
                              deadline_factor=3.0)
    results = {}
    for name in AUTOSCALERS:
        results[name] = run_autoscaling_experiment(
            copy.deepcopy(workflows), make_autoscaler(name), config)

    print(f"{'autoscaler':>10} | " + " | ".join(
        f"{m[:9]:>9}" for m in ELASTICITY_METRIC_NAMES[:6]))
    for name, r in sorted(results.items()):
        values = " | ".join(
            f"{r.metrics[m]:>9.3f}" for m in ELASTICITY_METRIC_NAMES[:6])
        print(f"{name:>10} | {values}")

    print("\nSLA and cost:")
    for name, r in sorted(results.items()):
        print(f"  {name:>10}: SLA violations {r.sla_violation_rate:.0%}, "
              f"cost ${r.cost_continuous:.2f} continuous / "
              f"${r.cost_hourly:.2f} hourly")

    wins = pairwise_wins(results)
    scores = fractional_scores(results)
    grades = grade_autoscalers(results)
    print("\nRankings (pairwise wins | fractional | grade):")
    for name in sorted(results, key=lambda n: -grades[n]):
        print(f"  {name:>10}: {wins[name]:>3} | {scores[name]:.3f} | "
              f"{grades[name]:.3f}")

    aware = min(results[n].metrics["accuracy_under"]
                for n in ("plan", "token"))
    general = min(results[n].metrics["accuracy_under"]
                  for n in ("react", "adapt", "hist", "reg", "conpaas"))
    print(f"\nHeadline finding: workflow-aware under-provisioning "
          f"{aware:.3f} vs best general {general:.3f}")


if __name__ == "__main__":
    main()
