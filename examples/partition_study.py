#!/usr/bin/env python3
"""Partition study: composed-ecosystem chaos with a live invariant audit.

One seeded world runs a serverless platform, a batch scheduler behind an
admission-controlled front door, a reactive autoscaler, and a
checkpointed side job — then a network partition isolates a worker
minority, one majority worker and the scheduler node go *gray*
(heartbeat-alive but slow and lossy), and the scheduler itself
fail-stops and recovers mid-split. An invariant engine audits every
layer's conservation law once per simulated second the whole time.

Two headlines to look for in the output:

1. detection tells partition from gray failure: the silent minority is
   suspected (reason "silence") within seconds, the gray worker never;
2. the books balance: zero invariant violations, and every admitted
   task completes exactly once despite the crash and the split.

Run:  PYTHONPATH=src python examples/partition_study.py [--profile]
"""

import argparse
import sys

from repro.faults.chaos import run_partition_scenario

SEEDS = (7, 19, 42)


def _argv():
    """Real CLI args, or none when run under a test harness."""
    if "pytest" in sys.modules:
        return []
    return sys.argv[1:]


def describe(result: dict) -> str:
    lines = [
        "front door   : offered {offered}, admitted {admitted}, "
        "shed {door_shed}".format(**result),
        "scheduler    : completed {completed}/{submitted}, lost {lost}, "
        "crashes {scheduler_crashes}, misdispatches {misdispatches}, "
        "lost reports {lost_reports}".format(**result),
        "recovery     : recovered {recovered_completions}, readopted "
        "{readopted}, orphans requeued {orphans_requeued}, autoscaled "
        "+{scaled_up}".format(**result),
        "network      : sent {messages_sent}, delivered "
        "{messages_delivered}, blocked {messages_blocked}, dropped "
        "{messages_dropped}".format(**result),
        "detection    : {suspicions} suspicions "
        "({silence} silence / {variance} variance), "
        "{false_suspicions} false".format(
            silence=result["suspicions_by_reason"]["silence"],
            variance=result["suspicions_by_reason"]["variance"],
            **result),
        "gray worker  : {gray_worker} suspected={gray_worker_suspected} "
        "(heartbeats protected — slow is not dead)".format(**result),
        "serverless   : {invocations_completed}/{invocations} completed, "
        "SLO attainment {slo_attainment:.3f}".format(**result),
        "side job     : makespan {job_makespan_s}s across {job_crashes} "
        "crashes, availability {job_availability}".format(**result),
        "invariants   : {invariant_checks} checks, "
        "{invariant_violations} violations".format(**result),
    ]
    latencies = result["minority_detection_latency_s"]
    for name in sorted(latencies):
        lines.append(f"  minority {name}: suspected "
                     f"{latencies[name]}s after the split")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--profile", action="store_true",
                        help="attribute wall-clock time per process / "
                             "event kind")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(_argv())

    profiler = None
    if args.profile:
        from repro.observability import SimProfiler
        profiler = SimProfiler()

    print(f"=== composed partition study, seed {args.seed} ===")
    if profiler is not None:
        with profiler:
            result = run_partition_scenario(seed=args.seed)
    else:
        result = run_partition_scenario(seed=args.seed)
    print(describe(result))

    print("\n=== invariants across seeds (smaller config) ===")
    header = (f"{'seed':>6} {'admitted':>9} {'completed':>10} {'shed':>5} "
              f"{'violations':>11} {'suspected':>10} {'gray dead?':>10}")
    print(header)
    for seed in SEEDS:
        r = run_partition_scenario(seed=seed, n_tasks=24,
                                   task_rate_per_s=1.0, n_invocations=30,
                                   invoke_rate_per_s=1.5)
        print(f"{seed:>6} {r['admitted']:>9} {r['completed']:>10} "
              f"{r['door_shed']:>5} {r['invariant_violations']:>11} "
              f"{len(r['suspected_minority']):>10} "
              f"{str(r['gray_worker_suspected']):>10}")

    if profiler is not None:
        print()
        print(profiler.report(top=10))


if __name__ == "__main__":
    main()
