#!/usr/bin/env python3
"""A BTWorld-style P2P measurement study (paper §6.1).

Simulates a BitTorrent swarm hit by a flashcrowd, observes it through the
global monitor at two sampling configurations, and reports the phenomena
of Table 5: the flashcrowd itself, the download-time degradation it
causes, the ecosystem's bandwidth asymmetry, and the instrument's
sampling bias — plus the 2fast fix for asymmetric links.

Run:  python examples/p2p_flashcrowd_study.py
"""

from repro.p2p import (
    BTWorldMonitor,
    ContentDescriptor,
    Swarm,
    SwarmConfig,
    Tracker,
    bandwidth_asymmetry,
    bias_study,
    detect_flashcrowds,
    run_2fast_experiment,
)
from repro.p2p.analytics import mean_download_slowdown_during
from repro.sim import Environment, RandomStreams
from repro.workload.arrivals import FlashcrowdArrivals


def main():
    streams = RandomStreams(seed=77)
    burst_at = 3600.0
    config = SwarmConfig(
        content=ContentDescriptor("big-release", "x264-720p", 60.0),
        peer_mix=(("adsl", 0.8), ("cable", 0.15), ("symmetric", 0.05)),
        initial_seeds=2, seed_class="adsl",
        horizon_s=10 * 3600, seed_linger_s=600.0)
    arrivals = FlashcrowdArrivals(
        base_rate=1 / 300.0, rng=streams.get("arrivals"),
        burst_times=[burst_at], burst_factor=50, burst_decay_s=1500)

    env = Environment()
    tracker = Tracker("main-tracker")
    swarm = Swarm(env, config, tracker, streams.get("swarm"), arrivals)
    monitor = BTWorldMonitor(env, [tracker], interval_s=300)
    env.run(until=config.horizon_s)
    result = swarm.result()

    print(f"peers: {len(result.peers)}, completed downloads: "
          f"{len(result.completed)}")
    print(f"peak swarm size: {result.peak_swarm_size()}")

    asym = bandwidth_asymmetry(result.peers)
    print(f"ecosystem down/up capacity ratio: "
          f"{asym['capacity_ratio']:.1f} "
          f"({asym['asymmetric_fraction']:.0%} asymmetric peers)")

    arrival_times = [p.arrival_time for p in result.peers
                     if p.arrival_time >= 0]
    episodes = detect_flashcrowds(arrival_times, window_s=600, threshold=5)
    for ep in episodes:
        print(f"flashcrowd: t={ep.start:.0f}..{ep.end:.0f} s, "
              f"{ep.magnitude:.0f}x the baseline arrival rate")
    slowdown = mean_download_slowdown_during(result, burst_at,
                                             burst_at + 2400)
    print(f"download-time degradation during the flashcrowd: "
          f"{slowdown:.2f}x")

    # Instrument bias: what would a slower, partial monitor have seen?
    times, sizes = result.monitor["swarm_size"].as_arrays()
    for rep in bias_study(times, sizes, intervals_s=[300, 7200],
                          coverages=[1.0, 0.3]):
        print(f"monitor interval={rep.interval_s:>6.0f}s "
              f"coverage={rep.coverage:.0%}: observed peak "
              f"{rep.observed_peak:.0f} (bias {rep.peak_bias:+.0%})")

    # The 2fast answer to asymmetric links.
    twofast = run_2fast_experiment(content_size_mb=60.0,
                                   peer_class_name="adsl", max_helpers=8)
    print(f"2fast with 4 helpers: {twofast.speedup(4):.1f}x faster than "
          f"solo (saturates at ~{twofast.saturation_helpers} helpers)")


if __name__ == "__main__":
    main()
