#!/usr/bin/env python3
"""Overload study: what admission control buys during a flash crowd.

Drives the same Poisson flash crowd (offered load 25% above capacity)
against a concurrency-capped FaaS platform twice with the same seed:

- **raw** — no front door: the bounded queue fills, every admitted
  request waits behind it, and the latency tail collapses;
- **admitted** — token-bucket admission, CoDel queue-delay shedding,
  and a brownout controller that stops paying for cold starts under
  pressure: a quarter of the requests are turned away *immediately*, and
  the ones that are served finish on time.

The headline metric is SLO-goodput — completions within the SLO per
second of simulated time — which shedding *raises* even though it serves
fewer requests. Also runs the failure-detection scenario: how fast a
phi-accrual detector suspects a silently crashed machine, and that it
never wrongly suspects a healthy one.

Run:  PYTHONPATH=src python examples/overload_study.py
"""

from repro.faults.chaos import run_detection_scenario, run_overload_scenario


def main():
    raw = run_overload_scenario(seed=42, admission=False)
    admitted = run_overload_scenario(seed=42, admission=True)

    headers = ["metric", "raw", "admitted"]
    rows = [
        ["served / offered",
         f"{raw['completed']}/{raw['invocations']}",
         f"{admitted['completed']}/{admitted['invocations']}"],
        ["shed at the door", f"{raw['shed']}", f"{admitted['shed']}"],
        ["rejected (queue full)", f"{raw['rejected']}",
         f"{admitted['rejected']}"],
        ["SLO-goodput", f"{raw['goodput_per_s']:.2f}/s",
         f"{admitted['goodput_per_s']:.2f}/s"],
        ["p50 latency", f"{raw['p50_latency_s']:.3f} s",
         f"{admitted['p50_latency_s']:.3f} s"],
        ["p99 latency", f"{raw['p99_latency_s']:.3f} s",
         f"{admitted['p99_latency_s']:.3f} s"],
        ["SLO attainment", f"{raw['slo_attainment']:.3f}",
         f"{admitted['slo_attainment']:.3f}"],
    ]
    widths = [max(len(str(r[i])) for r in [headers] + rows)
              for i in range(3)]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    gain = admitted["goodput_per_s"] / raw["goodput_per_s"] - 1.0
    print(f"\nShedding {admitted['shed_fraction']:.0%} of the crowd at the "
          f"door raised useful throughput by {gain:+.0%} and cut p99 from "
          f"{raw['p99_latency_s']:.2f}s to {admitted['p99_latency_s']:.2f}s.")

    det = run_detection_scenario(seed=42, crash=True, crash_at_s=30.0)
    print(f"\nFailure detection: machine m0 crashed silently at t=30s; "
          f"the phi-accrual detector suspected it after "
          f"{det['detection_latency_s']:.1f}s with "
          f"{det['false_suspicions']} false suspicions across "
          f"{det['heartbeats_sent']} heartbeats from 6 machines.")


if __name__ == "__main__":
    main()
