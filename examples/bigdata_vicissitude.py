#!/usr/bin/env python3
"""The Digital Factory under load: vicissitude and Fawkes (paper §6.3).

Runs concurrent MapReduce pipelines on a shared cluster and shows the
*vicissitude* phenomenon ([38]): the bottleneck wanders across resource
classes "seemingly at random". Then shows the Fawkes remedy at the
multi-tenant level ([94]): demand-proportional balancing across logical
clusters.

Run:  python examples/bigdata_vicissitude.py
"""

from repro.bigdata import (
    FawkesAllocator,
    StaticAllocator,
    run_fawkes_experiment,
    run_vicissitude_experiment,
)


def main():
    print("=== Vicissitude ([38]) ===")
    for regime in ("solo", "contended"):
        trace = run_vicissitude_experiment(seed=3, concurrency=regime)
        share = ", ".join(f"{name}: {value:.0%}"
                          for name, value in trace.time_share.items())
        print(f"{regime:>10}: {trace.distinct_bottlenecks} bottleneck "
              f"classes, {trace.shifts} shifts, entropy "
              f"{trace.entropy_bits:.2f} bits ({share}) -> "
              f"{'VICISSITUDE' if trace.is_vicissitude else 'stable'}")

    print("\n=== Fawkes balanced MapReduce clusters ([94]) ===")
    for allocator in (StaticAllocator(), FawkesAllocator()):
        result = run_fawkes_experiment(allocator, seed=4)
        print(f"{allocator.name:>10}: heavy tenant slowdown "
              f"{result.per_tenant_slowdown['heavy']:.2f}x, light "
              f"{result.per_tenant_slowdown['light']:.2f}x "
              f"(mean {result.mean_slowdown:.2f}x)")
    print("\nDynamic balancing lets the bursty tenant borrow idle "
          "capacity without starving the light one.")


if __name__ == "__main__":
    main()
