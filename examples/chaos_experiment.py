#!/usr/bin/env python3
"""Chaos experiment: faults × resilience policies across two domains.

Runs the chaos matrix — serverless invocations under transient error
rates (with and without retry+backoff) and cluster scheduling under
machine crash/restart (with and without requeue) — and prints the
availability/SLO table. The headline: faults without policies measurably
degrade the SLO; retry and requeue buy it back at a bounded cost in
billed duplicate work and wasted core-seconds.

Run:  PYTHONPATH=src python examples/chaos_experiment.py [--profile]
"""

import argparse
import sys

from repro.faults.chaos import run_chaos_matrix


def _argv():
    """Real CLI args, or none when run under a test harness.

    The examples smoke test executes this file via ``runpy`` inside
    pytest, where ``sys.argv`` belongs to pytest — parse no args there.
    """
    if "pytest" in sys.modules:
        return []
    return sys.argv[1:]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--profile", action="store_true",
                        help="profile the matrix run and print wall-clock "
                             "attribution per process / event kind")
    args = parser.parse_args(_argv())

    profiler = None
    if args.profile:
        from repro.observability import SimProfiler
        profiler = SimProfiler()

    def run():
        return run_chaos_matrix(seed=42,
                                serverless_error_rates=(0.0, 0.15, 0.3),
                                scheduling_mtbfs=(None, 500.0))

    if profiler is not None:
        with profiler:
            report = run()
    else:
        report = run()
    print(report.format())

    base = report.cell("serverless", "none", "none")
    worst = report.cell("serverless", "transient p=0.3", "none")
    cured = report.cell("serverless", "transient p=0.3", "retry+backoff")
    print(f"\nserverless SLO: {base.slo_attainment:.3f} fault-free, "
          f"{worst.slo_attainment:.3f} under 30% faults, "
          f"{cured.slo_attainment:.3f} with retry "
          f"(mean {cured.details['mean_attempts']:.2f} attempts billed)")

    if profiler is not None:
        print()
        print(profiler.report(top=8))


if __name__ == "__main__":
    main()
