#!/usr/bin/env python3
"""Quickstart: the substrate in five minutes.

Builds a tiny discrete-event simulation, runs a contended cluster
schedule under two policies, and shows the portfolio scheduler tracking
the better one — the library's core loop end to end.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.scheduling import (
    ClusterSimulator,
    FCFSPolicy,
    PortfolioConfig,
    PortfolioScheduler,
    SJFPolicy,
    simulate_schedule,
)
from repro.sim import Environment, RandomStreams
from repro.workload import BagOfTasks, Task


def make_workload():
    """One long job and a burst of short ones, submitted together.

    FCFS (tie-broken by arrival order) runs the long job first and makes
    every short job wait; SJF runs the shorts first — the classic case
    where policy choice matters.
    """
    long_task = Task(work=600.0)
    long_task.runtime_estimate = 600.0
    jobs = [BagOfTasks([long_task], submit_time=0.0)]
    for _ in range(8):
        t = Task(work=20.0)
        t.runtime_estimate = 20.0
        jobs.append(BagOfTasks([t], submit_time=0.0))
    return jobs


def main():
    # 1. The DES kernel: processes, timeouts, events.
    env = Environment()
    ticks = []

    def clock(env):
        while True:
            ticks.append(env.now)
            yield env.timeout(10.0)

    env.process(clock(env))
    env.run(until=50)
    print(f"DES kernel: clock ticked at {ticks}")

    # 2. Static policies on a one-core cluster.
    for policy in (FCFSPolicy(), SJFPolicy()):
        metrics = simulate_schedule(make_workload(),
                                    Cluster.homogeneous("c", 1, cores=1),
                                    policy)
        print(f"{policy.name:>10}: mean bounded slowdown = "
              f"{metrics.mean_bounded_slowdown:.2f}")

    # 3. The portfolio scheduler selects online, without being told which
    #    policy suits this workload.
    env = Environment()
    sim = ClusterSimulator(env, Cluster.homogeneous("c", 1, cores=1),
                           FCFSPolicy())
    portfolio = PortfolioScheduler(
        env, sim, [FCFSPolicy(), SJFPolicy()],
        PortfolioConfig(decision_interval_s=5.0))
    sim.submit_jobs(make_workload())
    env.run()
    metrics = sim.metrics()
    print(f" portfolio: mean bounded slowdown = "
          f"{metrics.mean_bounded_slowdown:.2f} "
          f"(selected: {portfolio.stats.policy_use_epochs})")


if __name__ == "__main__":
    main()
