"""Tests for the write-ahead journal."""

import pytest

from repro.recovery import Journal
from repro.sim import Environment


class TestAppendDurability:
    def test_append_is_nonblocking_but_durability_is_windowed(self):
        env = Environment()
        journal = Journal(env, append_cost_s=0.5)
        record = journal.append("step_done", {"step": "s0"})
        assert env.now == 0.0  # group commit: the writer does not wait
        assert record.durable_at == 0.5
        # A crash inside the fsync window loses the record.
        assert journal.durable_records(now=0.4) == []
        assert journal.durable_records(now=0.5) == [record]

    def test_zero_cost_is_immediately_durable(self):
        env = Environment()
        journal = Journal(env)
        record = journal.append("x")
        assert journal.durable_records() == [record]

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            Journal(Environment(), append_cost_s=-1)
        with pytest.raises(ValueError):
            Journal(Environment(), replay_cost_per_record_s=-0.1)


class TestReplay:
    def test_replay_returns_durable_prefix_in_order(self):
        env = Environment()
        journal = Journal(env)
        records = [journal.append("e", i) for i in range(5)]
        assert journal.replay() == records
        assert journal.replays == 1

    def test_replay_cost_is_per_record(self):
        env = Environment()
        journal = Journal(env, replay_cost_per_record_s=0.01)
        for i in range(30):
            journal.append("e", i)
        assert journal.replay_time_s() == pytest.approx(0.3)

    def test_seq_is_monotone(self):
        env = Environment()
        journal = Journal(env)
        seqs = [journal.append("e").seq for _ in range(10)]
        assert seqs == sorted(seqs) == list(range(10))


class TestTruncation:
    def test_truncate_on_checkpoint_bounds_replay(self):
        env = Environment()
        journal = Journal(env, replay_cost_per_record_s=0.01)
        records = [journal.append("e", i) for i in range(100)]
        # A checkpoint at seq 59 covers the first 60 records.
        dropped = journal.truncate(records[59].seq)
        assert dropped == 60
        assert len(journal) == 40
        assert journal.replay_time_s() == pytest.approx(0.4)
        assert journal.truncated_records == 60
        # Replay after truncation starts past the checkpoint.
        assert journal.replay()[0].payload == 60

    def test_truncate_everything(self):
        env = Environment()
        journal = Journal(env)
        last = [journal.append("e") for _ in range(5)][-1]
        assert journal.truncate(last.seq) == 5
        assert len(journal) == 0
        assert journal.replay() == []
