"""Tests for the checkpoint interval policies."""

import math

import pytest

from repro.recovery import (
    AdaptiveCheckpoint,
    DalyOptimalCheckpoint,
    PeriodicCheckpoint,
    daly_interval_s,
)


class TestDalyInterval:
    def test_formula(self):
        assert daly_interval_s(10.0, 500.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 500.0))

    def test_monotone_in_both_arguments(self):
        base = daly_interval_s(1.0, 100.0)
        assert daly_interval_s(4.0, 100.0) == pytest.approx(2 * base)
        assert daly_interval_s(1.0, 400.0) == pytest.approx(2 * base)

    @pytest.mark.parametrize("cost,mtbf", [(0, 100), (-1, 100),
                                           (1, 0), (1, -5)])
    def test_invalid_inputs(self, cost, mtbf):
        with pytest.raises(ValueError):
            daly_interval_s(cost, mtbf)


class TestPeriodicCheckpoint:
    def test_fixed_interval(self):
        policy = PeriodicCheckpoint(30.0)
        assert policy.interval_s() == 30.0
        policy.record_failure(100.0)  # no-op hook
        assert policy.interval_s() == 30.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            PeriodicCheckpoint(0.0)


class TestDalyOptimalCheckpoint:
    def test_from_explicit_mtbf(self):
        policy = DalyOptimalCheckpoint(2.0, mtbf_s=800.0)
        assert policy.interval_s() == pytest.approx(
            daly_interval_s(2.0, 800.0))

    def test_reads_mtbf_from_fault_model(self):
        class FakeModel:
            mtbf_s = 450.0

        policy = DalyOptimalCheckpoint(2.0, fault_model=FakeModel())
        assert policy.mtbf_s == 450.0
        assert policy.interval_s() == pytest.approx(
            daly_interval_s(2.0, 450.0))

    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError):
            DalyOptimalCheckpoint(2.0)
        with pytest.raises(ValueError):
            DalyOptimalCheckpoint(2.0, fault_model=object(), mtbf_s=10.0)

    def test_invalid_cost_fails_at_construction(self):
        with pytest.raises(ValueError):
            DalyOptimalCheckpoint(0.0, mtbf_s=100.0)


class TestAdaptiveCheckpoint:
    def test_uses_guess_until_min_observations(self):
        policy = AdaptiveCheckpoint(2.0, initial_mtbf_s=1000.0,
                                    min_observations=2)
        assert policy.mtbf_estimate_s() == 1000.0
        policy.record_failure(100.0)
        assert policy.mtbf_estimate_s() == 1000.0  # one sample: still guess
        policy.record_failure(300.0)
        # MLE: last failure time / number of failures.
        assert policy.mtbf_estimate_s() == pytest.approx(150.0)

    def test_interval_tracks_estimate(self):
        policy = AdaptiveCheckpoint(2.0, initial_mtbf_s=1000.0,
                                    min_observations=1)
        before = policy.interval_s()
        policy.record_failure(50.0)  # MTBF estimate collapses to 50
        after = policy.interval_s()
        assert after < before
        assert after == pytest.approx(daly_interval_s(2.0, 50.0))

    def test_converges_toward_true_mtbf(self):
        # Failures arriving every 200s drive the estimate to 200.
        policy = AdaptiveCheckpoint(2.0, initial_mtbf_s=10_000.0,
                                    min_observations=2)
        for i in range(1, 21):
            policy.record_failure(i * 200.0)
        assert policy.mtbf_estimate_s() == pytest.approx(200.0)
        assert policy.observed_failures == 20

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveCheckpoint(2.0, initial_mtbf_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveCheckpoint(2.0, initial_mtbf_s=100.0, min_observations=0)
