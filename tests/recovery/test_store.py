"""Tests for the checkpoint store: costs, retention, corruption fallback."""

import pytest

from repro.recovery import CHECKPOINT_TIERS, CheckpointStore, CheckpointTier
from repro.sim import Environment, RandomStreams


def run_combinator(env, gen):
    """Drive a sim-process combinator to completion, returning its value."""
    result = {}

    def wrapper():
        result["value"] = yield from gen
    env.run(until=env.process(wrapper()))
    return result["value"]


class TestCostModel:
    def test_write_and_read_time(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        tier = CHECKPOINT_TIERS["local"]
        assert store.write_time_s(600.0) == pytest.approx(
            tier.latency_s + 600.0 / tier.write_mb_per_s)
        assert store.read_time_s(600.0) == pytest.approx(
            tier.latency_s + 600.0 / tier.read_mb_per_s)

    def test_remote_tier_is_slower(self):
        env = Environment()
        local = CheckpointStore(env, tier="local")
        remote = CheckpointStore(env, tier="remote")
        assert remote.write_time_s(100.0) > local.write_time_s(100.0)
        assert remote.read_time_s(100.0) > local.read_time_s(100.0)

    def test_custom_tier(self):
        env = Environment()
        tier = CheckpointTier("nvme", latency_s=0.001,
                              write_mb_per_s=5000.0, read_mb_per_s=7000.0)
        store = CheckpointStore(env, tier=tier)
        assert store.write_time_s(5000.0) == pytest.approx(1.001)

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError):
            CheckpointStore(Environment(), tier="tape")

    def test_invalid_tier_params(self):
        with pytest.raises(ValueError):
            CheckpointTier("bad", latency_s=-1, write_mb_per_s=1,
                           read_mb_per_s=1)
        with pytest.raises(ValueError):
            CheckpointTier("bad", latency_s=0, write_mb_per_s=0,
                           read_mb_per_s=1)


class TestSaveRestore:
    def test_save_advances_sim_time_and_commits(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        ckpt = run_combinator(env, store.save({"progress": 10.0}, 120.0))
        assert env.now == pytest.approx(store.write_time_s(120.0))
        assert ckpt.payload == {"progress": 10.0}
        assert len(store) == 1
        assert store.latest() is ckpt
        assert store.writes == 1

    def test_restore_returns_newest(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        for progress in (10.0, 20.0, 30.0):
            run_combinator(env, store.save({"progress": progress}, 50.0))
        t0 = env.now
        ckpt = run_combinator(env, store.restore())
        assert ckpt.payload["progress"] == 30.0
        assert env.now - t0 == pytest.approx(store.read_time_s(50.0))

    def test_restore_empty_store_returns_none(self):
        env = Environment()
        store = CheckpointStore(env)
        assert run_combinator(env, store.restore()) is None
        assert store.failed_restores == 1

    def test_invalid_size(self):
        env = Environment()
        store = CheckpointStore(env)
        with pytest.raises(ValueError):
            run_combinator(env, store.save({}, 0.0))


class TestRetention:
    def test_keep_last_k_evicts_oldest(self):
        env = Environment()
        store = CheckpointStore(env, keep_last=2)
        for progress in (1.0, 2.0, 3.0, 4.0):
            run_combinator(env, store.save({"progress": progress}, 10.0))
        assert len(store) == 2
        assert store.evictions == 2
        kept = [c.payload["progress"] for c in store.checkpoints]
        assert kept == [3.0, 4.0]

    def test_keep_last_validated(self):
        with pytest.raises(ValueError):
            CheckpointStore(Environment(), keep_last=0)


class TestCorruption:
    def test_corruption_requires_rng(self):
        with pytest.raises(ValueError):
            CheckpointStore(Environment(), corruption_p=0.1)

    def test_corrupt_restore_falls_back_to_older(self):
        env = Environment()
        rng = RandomStreams(0).get("corrupt")
        store = CheckpointStore(env, corruption_p=0.0, rng=rng)
        run_combinator(env, store.save({"progress": 1.0}, 10.0))
        run_combinator(env, store.save({"progress": 2.0}, 10.0))
        # Force the newest snapshot corrupt: deterministic fallback.
        store.checkpoints[-1].corrupt = True
        t0 = env.now
        ckpt = run_combinator(env, store.restore())
        assert ckpt.payload["progress"] == 1.0
        assert store.corrupt_fallbacks == 1
        # Paid the read cost twice: once for the corrupt attempt.
        assert env.now - t0 == pytest.approx(2 * store.read_time_s(10.0))
        # The corrupt snapshot is discarded, not retried forever.
        assert len(store) == 1

    def test_keep_last_one_corrupt_raises_typed_error(self):
        """keep_last=1 made a durability bet: losing it is an error, not
        a None that reads like "never checkpointed"."""
        from repro.recovery import CheckpointCorruptionError
        env = Environment()
        store = CheckpointStore(env, keep_last=1, name="solo")
        run_combinator(env, store.save({"progress": 1.0}, 10.0))
        run_combinator(env, store.save({"progress": 2.0}, 10.0))
        bad_seq = store.checkpoints[-1].seq
        store.checkpoints[-1].corrupt = True
        with pytest.raises(CheckpointCorruptionError) as exc:
            run_combinator(env, store.restore())
        # The typed error names the corrupted key.
        assert exc.value.seq == bad_seq
        assert exc.value.store_name == "solo"
        assert "seq=1" in str(exc.value)
        assert store.failed_restores == 1
        assert len(store) == 0

    def test_keep_last_one_valid_snapshot_still_restores(self):
        env = Environment()
        store = CheckpointStore(env, keep_last=1)
        run_combinator(env, store.save({"progress": 1.0}, 10.0))
        ckpt = run_combinator(env, store.restore())
        assert ckpt.payload["progress"] == 1.0
        assert store.failed_restores == 0

    def test_all_corrupt_restore_fails(self):
        env = Environment()
        store = CheckpointStore(env)
        run_combinator(env, store.save({"progress": 1.0}, 10.0))
        store.checkpoints[-1].corrupt = True
        assert run_combinator(env, store.restore()) is None
        assert store.failed_restores == 1
        assert len(store) == 0

    def test_corruption_rate_statistical(self):
        env = Environment()
        rng = RandomStreams(7).get("corrupt")
        store = CheckpointStore(env, keep_last=1000, corruption_p=0.2,
                                rng=rng)
        for i in range(1000):
            run_combinator(env, store.save({"progress": float(i)}, 1.0))
        corrupt = sum(1 for c in store.checkpoints if c.corrupt)
        assert 150 < corrupt < 250
