"""Tests for CheckpointedJob: rollback, recovery, and the time ledger."""

import pytest

from repro.faults.models import CrashRestart
from repro.recovery import (
    CheckpointStore,
    CheckpointedJob,
    Journal,
    PeriodicCheckpoint,
)
from repro.sim import Environment, RandomStreams

#: Local-tier write cost of a 120 MB snapshot: 0.02 + 120/1200.
CKPT_COST = 0.12


def make_job(env, work_s=100.0, interval_s=30.0, **kwargs):
    store = CheckpointStore(env, tier="local")
    job = CheckpointedJob(env, work_s=work_s,
                          policy=PeriodicCheckpoint(interval_s),
                          store=store, checkpoint_size_mb=120.0, **kwargs)
    return job, store


def crash_once(env, job, at_s, down_s):
    def driver():
        yield env.timeout(at_s)
        job.fail()
        yield env.timeout(down_s)
        job.repair()
    env.process(driver())


def assert_identity(stats):
    ledger = (stats.work_s + stats.checkpoint_time_s + stats.lost_work_s
              + stats.recovery_time_s + stats.downtime_s)
    assert stats.makespan_s == pytest.approx(ledger)


class TestFaultFree:
    def test_no_policy_runs_in_exactly_work_time(self):
        env = Environment()
        job = CheckpointedJob(env, work_s=100.0)
        env.run(until=job.done)
        stats = job.stats()
        assert stats.makespan_s == pytest.approx(100.0)
        assert stats.checkpoints_written == 0
        assert stats.crashes == 0

    def test_checkpoint_overhead_only(self):
        env = Environment()
        job, store = make_job(env)  # 100s work, 30s interval
        env.run(until=job.done)
        stats = job.stats()
        # Checkpoints at 30/60/90s of progress; none at the 100s finish.
        assert stats.checkpoints_written == 3
        assert stats.checkpoint_time_s == pytest.approx(3 * CKPT_COST)
        assert stats.makespan_s == pytest.approx(100.0 + 3 * CKPT_COST)
        assert_identity(stats)

    def test_stats_before_finish_raises(self):
        env = Environment()
        job = CheckpointedJob(env, work_s=10.0)
        with pytest.raises(RuntimeError):
            job.stats()


class TestValidation:
    def test_policy_without_store_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            CheckpointedJob(env, work_s=10.0,
                            policy=PeriodicCheckpoint(5.0))

    def test_store_without_policy_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            CheckpointedJob(env, work_s=10.0, store=CheckpointStore(env))

    def test_invalid_work(self):
        with pytest.raises(ValueError):
            CheckpointedJob(Environment(), work_s=0.0)


class TestCrashRollback:
    def test_crash_loses_only_work_since_last_checkpoint(self):
        env = Environment()
        job, store = make_job(env)
        # Timeline: seg to 30, ckpt; seg to 60 (t=60.12), ckpt (t=60.24);
        # crash at t=70 loses 70 - 60.24 of the third segment.
        crash_once(env, job, at_s=70.0, down_s=5.0)
        env.run(until=job.done)
        stats = job.stats()
        assert stats.crashes == 1
        assert stats.lost_work_s == pytest.approx(70.0 - (60.0 + 2 * CKPT_COST))
        assert stats.downtime_s == pytest.approx(5.0)
        assert stats.restores == 1
        # Recovery paid the restore read, nothing more (no restart cost).
        assert stats.recovery_time_s == pytest.approx(store.read_time_s(120.0))
        assert_identity(stats)

    def test_restart_cost_charged_on_recovery(self):
        env = Environment()
        job, store = make_job(env, restart_cost_s=3.0)
        crash_once(env, job, at_s=70.0, down_s=5.0)
        env.run(until=job.done)
        stats = job.stats()
        assert stats.recovery_time_s == pytest.approx(
            3.0 + store.read_time_s(120.0))
        assert_identity(stats)

    def test_no_policy_restarts_from_zero(self):
        env = Environment()
        job = CheckpointedJob(env, work_s=100.0)
        crash_once(env, job, at_s=80.0, down_s=2.0)
        env.run(until=job.done)
        stats = job.stats()
        # All 80 seconds of progress are gone.
        assert stats.lost_work_s == pytest.approx(80.0)
        assert stats.makespan_s == pytest.approx(80.0 + 2.0 + 100.0)
        assert stats.restores == 0
        assert_identity(stats)

    def test_crash_during_checkpoint_write_loses_segment_and_write(self):
        env = Environment()
        job, _ = make_job(env)
        # First checkpoint write spans [30, 30.12): crash inside it.
        crash_once(env, job, at_s=30.06, down_s=1.0)
        env.run(until=job.done)
        stats = job.stats()
        # The partial write never committed: restore finds nothing.
        assert stats.restores == 0
        assert stats.lost_work_s == pytest.approx(30.06)
        assert_identity(stats)

    def test_corrupt_newest_checkpoint_rolls_back_further(self):
        env = Environment()
        job, store = make_job(env)
        crash_once(env, job, at_s=70.0, down_s=5.0)

        def corrupter():
            # After the second checkpoint commits (t > 60.24), poison it.
            yield env.timeout(65.0)
            store.checkpoints[-1].corrupt = True
        env.process(corrupter())
        env.run(until=job.done)
        stats = job.stats()
        # Fell back to the progress=30 snapshot: the 30..60 segment is
        # lost again on top of the in-flight loss.
        assert stats.corrupt_fallbacks == 1
        assert stats.lost_work_s == pytest.approx(
            (70.0 - (60.0 + 2 * CKPT_COST)) + 30.0)
        assert_identity(stats)


class TestQuantizedSupersteps:
    def test_checkpoints_land_on_superstep_boundaries(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        # Interval 25s, quantum 10s -> rounds to 3 supersteps per segment.
        job = CheckpointedJob(env, work_s=100.0,
                              policy=PeriodicCheckpoint(25.0), store=store,
                              quantum_s=10.0, checkpoint_size_mb=120.0)
        env.run(until=job.done)
        stats = job.stats()
        # Segments of 30s: checkpoints after supersteps 3, 6, 9.
        assert stats.checkpoints_written == 3
        for ckpt in store.checkpoints:
            assert ckpt.payload["progress"] % 10.0 == pytest.approx(0.0)

    def test_interval_below_quantum_checkpoints_every_superstep(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        job = CheckpointedJob(env, work_s=50.0,
                              policy=PeriodicCheckpoint(3.0), store=store,
                              quantum_s=10.0, checkpoint_size_mb=120.0)
        env.run(until=job.done)
        assert job.stats().checkpoints_written == 4  # after steps 1..4


class TestJournalIntegration:
    def test_truncate_on_checkpoint_bounds_replay(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        journal = Journal(env, replay_cost_per_record_s=0.01)
        job = CheckpointedJob(env, work_s=100.0,
                              policy=PeriodicCheckpoint(30.0), store=store,
                              journal=journal, checkpoint_size_mb=120.0)

        def appender():
            # Two records per second of the first segment.
            for _ in range(20):
                journal.append("tick")
                yield env.timeout(1.0)
        env.process(appender())
        env.run(until=job.done)
        # Every record predates the first checkpoint: all truncated.
        assert journal.truncated_records == 20
        assert len(journal) == 0

    def test_replay_cost_paid_at_recovery(self):
        env = Environment()
        store = CheckpointStore(env, tier="local")
        journal = Journal(env, replay_cost_per_record_s=0.5)
        job = CheckpointedJob(env, work_s=100.0,
                              policy=PeriodicCheckpoint(30.0), store=store,
                              journal=journal, checkpoint_size_mb=120.0)

        def appender():
            # Records appended *after* the first checkpoint (t > 30.12).
            yield env.timeout(35.0)
            for _ in range(4):
                journal.append("tick")
        env.process(appender())
        crash_once(env, job, at_s=40.0, down_s=1.0)
        env.run(until=job.done)
        stats = job.stats()
        # Recovery = restore read + 4-record replay at 0.5s each.
        assert stats.recovery_time_s == pytest.approx(
            store.read_time_s(120.0) + 4 * 0.5)
        assert_identity(stats)


class TestUnderCrashRestart:
    @pytest.mark.parametrize("seed", [7, 19, 42])
    def test_accounting_identity_under_random_crashes(self, seed):
        streams = RandomStreams(seed)
        env = Environment()
        store = CheckpointStore(env, tier="local", corruption_p=0.05,
                                rng=streams.get("corrupt"))
        job = CheckpointedJob(env, work_s=1500.0,
                              policy=PeriodicCheckpoint(10.0), store=store,
                              checkpoint_size_mb=100.0, restart_cost_s=2.0)
        CrashRestart(env, [job], streams.get("crash"),
                     mtbf_s=200.0, mttr_s=30.0)
        env.run(until=job.done)
        stats = job.stats()
        assert stats.crashes > 0
        assert_identity(stats)
        # Progress is never lost past the keep-last window.
        assert stats.makespan_s < 3000.0

    def test_job_completion_is_durable_against_late_failures(self):
        # A crash scheduled after completion must not blow up.
        env = Environment()
        streams = RandomStreams(0)
        job = CheckpointedJob(env, work_s=5.0)
        CrashRestart(env, [job], streams.get("crash"),
                     mtbf_s=1000.0, mttr_s=1.0)
        env.run(until=job.done)
        assert job.stats().makespan_s == pytest.approx(5.0)
