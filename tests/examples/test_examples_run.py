"""Smoke tests: every shipped example runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3, [p.name for p in EXAMPLES]


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example.name} produced no output"
