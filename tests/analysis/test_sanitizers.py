"""Runtime sanitizers: determinism, resource leaks, and kernel debug mode."""

import pytest

from repro.analysis.sanitizers import (
    DeterminismSanitizer,
    DeterminismViolation,
    ResourceLeakError,
    ResourceLeakSanitizer,
    TraceDigest,
)
from repro.cluster.machine import Machine
from repro.sim import DebugViolation, Environment, RandomStreams, Resource


def deterministic_scenario(seed=7):
    streams = RandomStreams(seed)
    env = Environment()
    log = []

    def proc(env, rng):
        for _ in range(20):
            yield env.timeout(float(rng.exponential(1.0)))
            log.append(env.now)

    env.process(proc(env, streams.get("arrivals")))
    env.run()
    return log


class _SharedState:
    """Deliberately nondeterministic across runs (simulated leak)."""

    counter = 0


def leaky_scenario():
    _SharedState.counter += 1
    env = Environment()

    def proc(env):
        for i in range(_SharedState.counter):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()


def test_determinism_sanitizer_passes_on_seeded_scenario():
    sanitizer = DeterminismSanitizer(runs=3)
    digest = sanitizer.check(lambda: deterministic_scenario(seed=11))
    assert len(digest) == 64
    assert sanitizer.digests[0].events > 0


def test_determinism_sanitizer_digest_varies_with_seed():
    sanitizer = DeterminismSanitizer()
    d1 = sanitizer.check(lambda: deterministic_scenario(seed=1))
    d2 = sanitizer.check(lambda: deterministic_scenario(seed=2))
    assert d1 != d2


def test_determinism_sanitizer_catches_cross_run_state():
    sanitizer = DeterminismSanitizer()
    with pytest.raises(DeterminismViolation, match="diverged"):
        sanitizer.check(leaky_scenario, label="leaky")


def test_determinism_sanitizer_requires_two_runs():
    with pytest.raises(ValueError):
        DeterminismSanitizer(runs=1)


def test_tracer_uninstalled_after_block():
    digest = TraceDigest()
    with Environment.traced(digest):
        env = Environment()
        assert env.tracer is digest
    assert Environment._default_tracers == ()
    assert Environment().tracer is None


def test_trace_digest_keeps_bounded_head():
    digest = TraceDigest(keep=3)
    for i in range(10):
        digest(float(i), i, "Timeout")
    assert digest.events == 10
    assert len(digest.head) == 3


# -- resource-leak sanitizer -----------------------------------------------

def test_leak_sanitizer_clean_when_released():
    env = Environment()
    sanitizer = ResourceLeakSanitizer()
    res = sanitizer.track(Resource(env, capacity=1), "slots")

    def proc(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(proc(env, res))
    env.run()
    assert sanitizer.leaks() == []
    sanitizer.check()  # does not raise


def test_leak_sanitizer_flags_unreleased_request():
    env = Environment()
    sanitizer = ResourceLeakSanitizer()
    res = sanitizer.track(Resource(env, capacity=1), "slots")

    def proc(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        # never released

    env.process(proc(env, res))
    env.run()
    with pytest.raises(ResourceLeakError, match="slots.*unreleased"):
        sanitizer.check()


def test_leak_sanitizer_flags_machine_allocation():
    sanitizer = ResourceLeakSanitizer()
    machine = sanitizer.track(Machine("m0", cores=4), "m0")
    machine.allocate(2, 1.0)
    leaks = sanitizer.leaks()
    assert any("core(s) still allocated" in leak for leak in leaks)
    machine.release(2, 1.0)
    assert sanitizer.leaks() == []


def test_leak_sanitizer_context_manager_audits_on_clean_exit():
    env = Environment()
    with pytest.raises(ResourceLeakError):
        with ResourceLeakSanitizer() as sanitizer:
            res = sanitizer.track(Resource(env), "r")
            res.request()  # simlint: disable=SL004 — leak on purpose


def test_leak_sanitizer_does_not_mask_exceptions():
    env = Environment()
    with pytest.raises(RuntimeError, match="original"):
        with ResourceLeakSanitizer() as sanitizer:
            sanitizer.track(Resource(env), "r").request()  # simlint: disable=SL004
            raise RuntimeError("original")


# -- kernel debug mode -----------------------------------------------------

def test_debug_mode_counts_dispatches():
    env = Environment(debug=True)

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    assert env.dispatch_count > 0


def test_debug_mode_rejects_negative_schedule_delay():
    env = Environment(debug=True)
    ev = env.event()
    with pytest.raises(DebugViolation, match="negative delay"):
        env._schedule(ev, delay=-1.0)


def test_non_debug_mode_unchanged():
    env = Environment()
    ev = env.event()
    env._schedule(ev, delay=0.0)
    env.step()
    assert ev.processed
