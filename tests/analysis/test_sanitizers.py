"""Runtime sanitizers: determinism, resource leaks, and kernel debug mode."""

import pytest

from repro.analysis.sanitizers import (
    DeterminismSanitizer,
    DeterminismViolation,
    ResourceLeakError,
    ResourceLeakSanitizer,
    SharedStateSanitizer,
    SharedStateViolation,
    TraceDigest,
)
from repro.cluster.machine import Machine
from repro.sim import DebugViolation, Environment, RandomStreams, Resource


def deterministic_scenario(seed=7):
    streams = RandomStreams(seed)
    env = Environment()
    log = []

    def proc(env, rng):
        for _ in range(20):
            yield env.timeout(float(rng.exponential(1.0)))
            log.append(env.now)

    env.process(proc(env, streams.get("arrivals")))
    env.run()
    return log


class _SharedState:
    """Deliberately nondeterministic across runs (simulated leak)."""

    counter = 0


def leaky_scenario():
    _SharedState.counter += 1
    env = Environment()

    def proc(env):
        for i in range(_SharedState.counter):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()


def test_determinism_sanitizer_passes_on_seeded_scenario():
    sanitizer = DeterminismSanitizer(runs=3)
    digest = sanitizer.check(lambda: deterministic_scenario(seed=11))
    assert len(digest) == 64
    assert sanitizer.digests[0].events > 0


def test_determinism_sanitizer_digest_varies_with_seed():
    sanitizer = DeterminismSanitizer()
    d1 = sanitizer.check(lambda: deterministic_scenario(seed=1))
    d2 = sanitizer.check(lambda: deterministic_scenario(seed=2))
    assert d1 != d2


def test_determinism_sanitizer_catches_cross_run_state():
    sanitizer = DeterminismSanitizer()
    with pytest.raises(DeterminismViolation, match="diverged"):
        sanitizer.check(leaky_scenario, label="leaky")


def test_determinism_sanitizer_requires_two_runs():
    with pytest.raises(ValueError):
        DeterminismSanitizer(runs=1)


def test_tracer_uninstalled_after_block():
    digest = TraceDigest()
    with Environment.traced(digest):
        env = Environment()
        assert env.tracer is digest
    assert Environment._default_tracers == ()
    assert Environment().tracer is None


def test_trace_digest_keeps_bounded_head():
    digest = TraceDigest(keep=3)
    for i in range(10):
        digest(float(i), i, "Timeout")
    assert digest.events == 10
    assert len(digest.head) == 3


# -- resource-leak sanitizer -----------------------------------------------

def test_leak_sanitizer_clean_when_released():
    env = Environment()
    sanitizer = ResourceLeakSanitizer()
    res = sanitizer.track(Resource(env, capacity=1), "slots")

    def proc(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(proc(env, res))
    env.run()
    assert sanitizer.leaks() == []
    sanitizer.check()  # does not raise


def test_leak_sanitizer_flags_unreleased_request():
    env = Environment()
    sanitizer = ResourceLeakSanitizer()
    res = sanitizer.track(Resource(env, capacity=1), "slots")

    def proc(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        # never released

    env.process(proc(env, res))
    env.run()
    with pytest.raises(ResourceLeakError, match="slots.*unreleased"):
        sanitizer.check()


def test_leak_sanitizer_flags_machine_allocation():
    sanitizer = ResourceLeakSanitizer()
    machine = sanitizer.track(Machine("m0", cores=4), "m0")
    machine.allocate(2, 1.0)
    leaks = sanitizer.leaks()
    assert any("core(s) still allocated" in leak for leak in leaks)
    machine.release(2, 1.0)
    assert sanitizer.leaks() == []


def test_leak_sanitizer_context_manager_audits_on_clean_exit():
    env = Environment()
    with pytest.raises(ResourceLeakError):
        with ResourceLeakSanitizer() as sanitizer:
            res = sanitizer.track(Resource(env), "r")
            res.request()  # simlint: disable=SL004 — leak on purpose


def test_leak_sanitizer_does_not_mask_exceptions():
    env = Environment()
    with pytest.raises(RuntimeError, match="original"):
        with ResourceLeakSanitizer() as sanitizer:
            sanitizer.track(Resource(env), "r").request()  # simlint: disable=SL004
            raise RuntimeError("original")


# -- shared-state (shard-safety) sanitizer ---------------------------------

def test_shared_state_same_timestamp_race_detected():
    """Two processes append to one log at t=1 with no ordering event."""
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        log = sanitizer.watch([], name="log")

        def writer(env, tag):
            yield env.timeout(1.0)
            log.append(tag)

        env.process(writer(env, "a"))
        env.process(writer(env, "b"))
        with pytest.raises(SharedStateViolation, match="log.*unordered"):
            env.run()
    assert len(sanitizer.violations) == 1


def test_shared_state_ordered_writes_are_clean():
    """The second writer waits on an event the first one triggers."""
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        log = sanitizer.watch([], name="log")
        gate = env.event()

        def first(env):
            yield env.timeout(1.0)
            log.append("first")
            gate.succeed()

        def second(env):
            yield gate
            log.append("second")

        env.process(first(env))
        env.process(second(env))
        env.run()
    assert sanitizer.violations == []
    assert list(log) == ["first", "second"]


def test_shared_state_transitive_ordering_via_relay():
    """A -> B -> C through two events orders A's and C's writes even
    though B never touches the shared object."""
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        shared = sanitizer.watch({}, name="shared")
        g1, g2 = env.event(), env.event()

        def a(env):
            yield env.timeout(2.0)
            shared["a"] = 1
            g1.succeed()

        def relay(env):
            yield g1
            g2.succeed()

        def c(env):
            yield g2
            shared["c"] = 1

        env.process(a(env))
        env.process(relay(env))
        env.process(c(env))
        env.run()
    assert sanitizer.violations == []


def test_shared_state_distinct_timestamps_are_ordered_by_time():
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        seen = sanitizer.watch(set(), name="seen")

        def writer(env, tag, t):
            yield env.timeout(t)
            seen.add(tag)

        env.process(writer(env, "x", 1.0))
        env.process(writer(env, "y", 2.0))
        env.run()
    assert sanitizer.violations == []


def test_shared_state_setup_writes_outside_processes_exempt():
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        log = sanitizer.watch([], name="log")
        log.append("setup")  # no active process: scenario wiring
        env.run()
    assert sanitizer.violations == []


def test_shared_state_non_strict_records_without_raising():
    env = Environment()
    sanitizer = SharedStateSanitizer(env, strict=False)
    log = sanitizer.watch([], name="log")

    def writer(env, tag):
        yield env.timeout(1.0)
        log.append(tag)

    env.process(writer(env, "a"))
    env.process(writer(env, "b"))
    env.run()
    sanitizer.close()
    assert len(sanitizer.violations) == 1
    assert "no ordering event" in sanitizer.violations[0]


def test_shared_state_watch_rejects_unwatchable_types():
    env = Environment()
    with SharedStateSanitizer(env) as sanitizer:
        with pytest.raises(TypeError, match="cannot watch"):
            sanitizer.watch(42)


def test_shared_state_hook_uninstalled_on_exit():
    env = Environment()
    with SharedStateSanitizer(env):
        assert env._on_schedule is not None
    assert env._on_schedule is None


# -- kernel debug mode -----------------------------------------------------

def test_debug_mode_counts_dispatches():
    env = Environment(debug=True)

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    assert env.dispatch_count > 0


def test_debug_mode_rejects_negative_schedule_delay():
    env = Environment(debug=True)
    ev = env.event()
    with pytest.raises(DebugViolation, match="negative delay"):
        env._schedule(ev, delay=-1.0)


def test_non_debug_mode_unchanged():
    env = Environment()
    ev = env.event()
    env._schedule(ev, delay=0.0)
    env.step()
    assert ev.processed
