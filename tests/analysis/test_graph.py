"""Unit tests for the project symbol table and call graph."""

from repro.analysis.graph import (
    EXTERNAL,
    PROJECT,
    UNKNOWN,
    build_project,
    module_name_for_path,
)


def sites_of(project, qualname):
    return {(s.kind, s.target) for s in project.callees(qualname)}


# -- module naming ----------------------------------------------------------

def test_module_name_for_src_path():
    assert module_name_for_path("src/repro/sim/events.py") == \
        "repro.sim.events"


def test_module_name_for_package_init():
    assert module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"


def test_lone_file_becomes_single_segment_module():
    assert module_name_for_path("tests/analysis/fixtures/sl007_bad.py") == \
        "sl007_bad"


# -- resolution -------------------------------------------------------------

def test_resolves_local_and_imported_functions():
    project = build_project({
        "src/repro/a/helpers.py": "def make():\n    return 1\n",
        "src/repro/a/use.py": ("from repro.a.helpers import make\n"
                               "def caller():\n"
                               "    return make()\n"),
    })
    assert sites_of(project, "repro.a.use.caller") == {
        (PROJECT, "repro.a.helpers.make")}


def test_resolves_module_alias_calls():
    project = build_project({
        "src/repro/a/helpers.py": "def make():\n    return 1\n",
        "src/repro/a/use.py": ("import repro.a.helpers as h\n"
                               "def caller():\n"
                               "    return h.make()\n"),
    })
    assert sites_of(project, "repro.a.use.caller") == {
        (PROJECT, "repro.a.helpers.make")}


def test_constructor_resolves_to_init():
    project = build_project({
        "src/repro/a/w.py": ("class World:\n"
                             "    def __init__(self, env):\n"
                             "        self.env = env\n"
                             "def make(env):\n"
                             "    return World(env)\n"),
    })
    assert sites_of(project, "repro.a.w.make") == {
        (PROJECT, "repro.a.w.World.__init__")}


def test_self_method_resolves_through_project_base():
    project = build_project({
        "src/repro/a/base.py": ("class Base:\n"
                                "    def helper(self):\n"
                                "        return 1\n"),
        "src/repro/a/child.py": ("from repro.a.base import Base\n"
                                 "class Child(Base):\n"
                                 "    def go(self):\n"
                                 "        return self.helper()\n"),
    })
    assert sites_of(project, "repro.a.child.Child.go") == {
        (PROJECT, "repro.a.base.Base.helper")}


def test_reexport_through_package_init_is_followed():
    project = build_project({
        "src/repro/a/__init__.py": "from repro.a.helpers import make\n",
        "src/repro/a/helpers.py": "def make():\n    return 1\n",
        "src/repro/b/use.py": ("from repro.a import make\n"
                               "def caller():\n"
                               "    return make()\n"),
    })
    assert sites_of(project, "repro.b.use.caller") == {
        (PROJECT, "repro.a.helpers.make")}


def test_relative_import_resolves_within_package():
    project = build_project({
        "src/repro/a/helpers.py": "def make():\n    return 1\n",
        "src/repro/a/use.py": ("from .helpers import make\n"
                               "def caller():\n"
                               "    return make()\n"),
    })
    assert sites_of(project, "repro.a.use.caller") == {
        (PROJECT, "repro.a.helpers.make")}


def test_external_call_keeps_dotted_name():
    project = build_project({
        "src/repro/a/r.py": ("import numpy as np\n"
                             "def make(seed):\n"
                             "    return np.random.default_rng(seed)\n"),
    })
    assert sites_of(project, "repro.a.r.make") == {
        (EXTERNAL, "numpy.random.default_rng")}


def test_dynamic_dispatch_is_unknown():
    project = build_project({
        "src/repro/a/d.py": ("def handler():\n"
                             "    return 1\n"
                             "TABLE = {'h': handler}\n"
                             "def caller(fn):\n"
                             "    fn()\n"
                             "    TABLE['h']()\n"),
    })
    assert {s.kind for s in project.callees("repro.a.d.caller")} == {UNKNOWN}


# -- graph queries ----------------------------------------------------------

def test_reachability_terminates_on_cycles():
    project = build_project({
        "src/repro/a/cyc.py": ("def f():\n"
                               "    return g()\n"
                               "def g():\n"
                               "    return f()\n"),
    })
    reachable = project.reachable_from(["repro.a.cyc.f"])
    assert reachable == {"repro.a.cyc.f", "repro.a.cyc.g"}


def test_reachability_does_not_cross_unknown_edges():
    project = build_project({
        "src/repro/a/d.py": ("def writer():\n"
                             "    return 1\n"
                             "TABLE = {'w': writer}\n"
                             "def run(env):\n"
                             "    yield env.timeout(1.0)\n"
                             "    TABLE['w']()\n"),
    })
    reachable = project.reachable_from(project.sim_process_roots())
    assert "repro.a.d.run" in reachable
    assert "repro.a.d.writer" not in reachable


def test_sim_process_detection():
    project = build_project({
        "src/repro/a/p.py": ("def proc(env):\n"
                             "    yield env.timeout(1.0)\n"
                             "def plain(items):\n"
                             "    for i in items:\n"
                             "        yield i\n"
                             "def normal():\n"
                             "    return 2\n"),
    })
    assert project.sim_process_roots() == {"repro.a.p.proc"}


def test_slots_detection_covers_dataclass_slots():
    project = build_project({
        "src/repro/a/c.py": ("from dataclasses import dataclass\n"
                             "@dataclass(slots=True)\n"
                             "class A:\n"
                             "    x: int\n"
                             "class B:\n"
                             "    __slots__ = ('y',)\n"
                             "class C:\n"
                             "    pass\n"),
    })
    classes = project.modules["repro.a.c"].classes
    assert classes["A"].has_slots
    assert classes["B"].has_slots
    assert not classes["C"].has_slots


def test_transitive_bases_cross_modules():
    project = build_project({
        "src/repro/a/base.py": "class Event:\n    pass\n",
        "src/repro/a/mid.py": ("from repro.a.base import Event\n"
                               "class Timeout(Event):\n"
                               "    pass\n"),
        "src/repro/a/leaf.py": ("from repro.a.mid import Timeout\n"
                                "class Retry(Timeout):\n"
                                "    pass\n"),
    })
    leaf = project.classes["repro.a.leaf.Retry"]
    assert "repro.a.base.Event" in project.transitive_bases(leaf)
