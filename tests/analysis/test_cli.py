"""CLI behavior of ``python -m repro.analysis.lint`` and the self-check."""

import json
import os

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.lint import lint_paths, main
from repro.analysis.rules import Finding

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

BAD_SRC = ("import time\n"
           "def f():\n"
           "    return time.time()\n")


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SRC)
    return str(path)


def test_exit_zero_on_clean_file(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text("def f(env):\n    return env.now + 1\n")
    assert main([str(path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_on_findings(bad_file, capsys):
    assert main([bad_file]) == 1
    out = capsys.readouterr().out
    assert "SL002" in out


def test_exit_two_on_missing_path(capsys):
    assert main(["/no/such/path.py"]) == 2


def test_exit_two_on_syntax_error(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    assert main([str(path)]) == 2


def test_json_format(bad_file, capsys):
    assert main([bad_file, "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "SL002"
    assert finding["line"] == 3
    assert payload["rules"]["SL002"]


def test_write_then_honor_baseline(bad_file, tmp_path, capsys):
    baseline = str(tmp_path / ".simlint-baseline")
    assert main([bad_file, "--baseline", baseline, "--write-baseline"]) == 0
    # With the baseline the same findings no longer fail...
    assert main([bad_file, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...unless explicitly ignored.
    assert main([bad_file, "--baseline", baseline, "--no-baseline"]) == 1


def test_baseline_goes_stale_when_code_changes(bad_file, tmp_path):
    baseline = str(tmp_path / ".simlint-baseline")
    main([bad_file, "--baseline", baseline, "--write-baseline"])
    with open(bad_file, "w") as fh:
        fh.write("import time\ndef f():\n    return time.time() + 1\n")
    # The flagged line changed, so the entry no longer matches.
    assert main([bad_file, "--baseline", baseline]) == 1


def test_baseline_rejects_malformed_lines(tmp_path):
    path = tmp_path / "b"
    path.write_text("SL001 only-two-fields\n")
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(str(path))


def test_baseline_split():
    f1 = Finding("SL001", "a.py", 1, 0, "m", "x = 1")
    f2 = Finding("SL002", "a.py", 2, 0, "m", "y = 2")
    baseline = Baseline({("SL001", "a.py", "x = 1")})
    new, known = baseline.split([f1, f2])
    assert new == [f2] and known == [f1]


def test_rules_filter_selects_codes(tmp_path, capsys):
    path = tmp_path / "mixed.py"
    path.write_text("import time\n"
                    "import numpy as np\n"
                    "def f():\n"
                    "    return time.time()\n"
                    "def g():\n"
                    "    return np.random.default_rng()\n")
    assert main([str(path), "--rules", "SL002", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "SL002" in out and "SL001" not in out
    # Filtering down to a code the file doesn't trip exits clean.
    assert main([str(path), "--rules", "SL008", "--no-baseline"]) == 0


def test_rules_filter_rejects_unknown_code(bad_file, capsys):
    assert main([bad_file, "--rules", "SL999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_prune_baseline_drops_stale_entries(bad_file, tmp_path, capsys):
    baseline = str(tmp_path / ".simlint-baseline")
    main([bad_file, "--baseline", baseline, "--write-baseline"])
    capsys.readouterr()
    # Entry still live: nothing pruned.
    assert main([bad_file, "--baseline", baseline, "--prune-baseline"]) == 0
    assert "pruned 0 stale" in capsys.readouterr().out
    # Fix the finding, then prune: the entry must go away.
    with open(bad_file, "w") as fh:
        fh.write("def f(env):\n    return env.now\n")
    assert main([bad_file, "--baseline", baseline, "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "pruned: SL002" in out
    assert "pruned 1 stale" in out
    assert Baseline.load(baseline).entries == set()
    assert main([bad_file, "--baseline", baseline, "--no-baseline"]) == 0


def test_directory_walk_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("import time\ntime.time()\n")
    (tmp_path / "ok.py").write_text("X = 1\n")
    assert lint_paths([str(tmp_path)]) == []


def test_selfcheck_repo_src_is_clean_modulo_baseline():
    """`simlint src/` must stay clean: fix findings or baseline them."""
    findings = lint_paths([os.path.join(REPO_ROOT, "src")], root=REPO_ROOT)
    baseline = Baseline.load_if_exists(
        os.path.join(REPO_ROOT, ".simlint-baseline"))
    new, _ = baseline.split(findings)
    assert new == [], "unbaselined simlint findings:\n" + "\n".join(
        f.format() for f in new)
