"""SL006 fixture (good): epsilon comparison and ordering comparisons."""

from repro.sim import time_eq


def fired_now(env, event_time):
    return time_eq(env.now, event_time)


def overdue(env, deadline):
    # Ordering comparisons on sim time are fine; only ==/!= are fragile.
    return env.now > deadline


def within(env, start, budget):
    return start <= env.now <= start + budget
