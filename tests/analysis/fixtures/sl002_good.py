"""SL002 fixture (good): all timing flows from the sim clock."""


def stamp_event(env, events):
    events.append((env.now, "arrival"))


def deadline(env, budget_s: float) -> float:
    return env.now + budget_s


def wait_then_stamp(env, delay, log):
    yield env.timeout(delay)
    log.append(env.now)
