"""SL004 fixture (good): every acquire is released on all paths."""


def hold_slot_with(env, resource):
    with resource.request() as req:
        yield req
        yield env.timeout(5.0)


def hold_slot_finally(env, resource):
    req = resource.request()
    try:
        yield req
        yield env.timeout(5.0)
    finally:
        resource.release(req)


def place_task(machine, task):
    machine.allocate(task.cores, task.memory_gb)
    try:
        run(task)
    finally:
        machine.release(task.cores, task.memory_gb)


def run(task):
    pass
