"""SL001 fixture (bad): global RNG state and unseeded/module-level RNG."""

import random

import numpy as np

# Module-level draw through global state: runs at import time.
JITTER = random.random()
# Module-level construction, even seeded, couples streams at import time.
MODULE_RNG = np.random.default_rng(42)


def sample_delay():
    # Function-level draw through numpy's global state.
    return np.random.random()


def shuffle_tasks(tasks):
    # Stdlib global-state RNG inside a function is still shared state.
    random.shuffle(tasks)
    return tasks


def fresh_generator():
    # Unseeded: a different stream every process start.
    return np.random.default_rng()
