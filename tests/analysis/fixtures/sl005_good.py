"""SL005 fixture (good): set membership is fine; iteration is sorted."""


def dispatch_all(env, ready):
    for task in sorted(set(ready), key=lambda t: t.task_id):
        env.process(task.run(env))


def peer_sample(peers):
    return [p for p in sorted(frozenset(peers))]


def is_known(name, known=frozenset({"m1", "m2"})):
    # Membership tests on sets are order-free and safe.
    return name in known


def over_a_list(tasks):
    for task in tasks:
        yield task
