"""SL008: linted as ``src/repro/workload/generator.py`` by the tests.

The workload layer may import ``repro.sim`` only; reaching into the
cluster model inverts the DAG declared in ``repro.analysis.layers``.
"""

from repro.cluster.machine import Machine  # BAD: workload -> cluster
from repro.sim import Environment


def provision(env: Environment) -> Machine:
    return Machine("m0", cores=4)
