"""SL007: per-world state lives on the world object, not the module."""


class World:
    def __init__(self, env):
        self.env = env
        self.stats = {}

    def run(self):
        while True:
            yield self.env.timeout(1.0)
            self.stats["ticks"] = self.stats.get("ticks", 0) + 1
