"""SL007: module-level mutable state written from sim-process code."""

STATS = {}


def run(env):
    while True:
        yield env.timeout(1.0)
        # BAD: every environment in the interpreter shares this dict.
        STATS["ticks"] = STATS.get("ticks", 0) + 1
