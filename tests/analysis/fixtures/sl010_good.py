"""SL010: growth in a never-exiting process, bounded by eviction."""


class Sampler:
    def __init__(self, env, max_samples=1000):
        self.env = env
        self.max_samples = max_samples
        self.samples = []

    def run(self):
        while True:
            yield self.env.timeout(1.0)
            if len(self.samples) >= self.max_samples:
                self.samples.pop(0)
            self.samples.append(self.env.now)
