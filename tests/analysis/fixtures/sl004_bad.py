"""SL004 fixture (bad): acquires with no release on failure paths."""


def hold_slot(env, resource):
    req = resource.request()
    yield req
    yield env.timeout(5.0)
    # Released only on the happy path: an exception above leaks the slot.
    resource.release(req)


def place_task(machine, task):
    machine.allocate(task.cores, task.memory_gb)
    run(task)
    machine.release(task.cores, task.memory_gb)


def run(task):
    pass
