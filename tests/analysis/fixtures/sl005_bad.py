"""SL005 fixture (bad): unordered-set iteration feeding decisions."""


def dispatch_all(env, ready):
    for task in set(ready):
        env.process(task.run(env))


def peer_sample(peers):
    return [p.name for p in frozenset(peers)]


def first_machines(names):
    chosen = []
    for name in {"m1", "m2", "m3"}:
        chosen.append(name)
    return chosen


def dedupe_then_schedule(tasks):
    return [t for t in {t.task_id for t in tasks}]
