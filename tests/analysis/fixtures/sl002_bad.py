"""SL002 fixture (bad): wall-clock reads inside sim code."""

import time
from datetime import datetime
from time import perf_counter


def stamp_event(env, events):
    # Wall-clock timestamp on a sim event: machine- and load-dependent.
    events.append((time.time(), env.now))


def measure(env):
    start = perf_counter()
    env.run(until=100.0)
    return perf_counter() - start


def log_line(message: str) -> str:
    return f"{datetime.now().isoformat()} {message}"


def monotonic_deadline(budget_s: float) -> float:
    return time.monotonic() + budget_s
