"""SL001 flow: the RNG is reached unseeded through a two-level chain."""

import numpy as np


def _make_generator(seed=None):
    return np.random.default_rng(seed)


def make_arrivals(seed=None):
    # Forwarding the seed is fine; the sin is committed by the caller.
    return _make_generator(seed)


def scenario():
    rng = make_arrivals()  # BAD: omits the seed two helpers above the RNG
    return rng.exponential(1.0)
