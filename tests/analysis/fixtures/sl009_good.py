"""SL009: linted as ``src/repro/sim/events.py`` by the tests."""


class Event:
    __slots__ = ("env", "callbacks")

    def __init__(self, env):
        self.env = env
        self.callbacks = []


class Timeout(Event):
    __slots__ = ("delay",)

    def __init__(self, env, delay):
        super().__init__(env)
        self.delay = delay
