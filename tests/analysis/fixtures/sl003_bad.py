"""SL003 fixture (bad): non-event yields inside sim processes."""


def worker(env, jobs):
    for job in jobs:
        yield env.timeout(job.runtime)
        # Bare yield: the kernel requires an Event instance.
        yield


def poller(env, interval):
    while True:
        yield env.timeout(interval)
        # Literal yield: crashes the process at runtime.
        yield 42


def batcher(env, batch):
    yield env.timeout(1.0)
    yield [env.timeout(1.0), env.timeout(2.0)]
