"""SL001 fixture (good): named streams and locally seeded generators."""

import numpy as np

from repro.sim.rng import RandomStreams


def sample_delay(streams: RandomStreams) -> float:
    return float(streams.get("delays").exponential(1.0))


def local_seeded(seed: int) -> np.random.Generator:
    # Seeded construction inside a function is reproducible and private.
    return np.random.default_rng(seed)


def keyword_seeded(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed=seed)


def annotated(rng: np.random.Generator) -> float:
    # Type annotations mentioning np.random are not calls.
    return float(rng.random())
