"""SL001 flow: every caller supplies a seed through the helper chain."""

import numpy as np


def _make_generator(seed=None):
    return np.random.default_rng(seed)


def make_arrivals(seed=None):
    return _make_generator(seed)


def scenario(seed):
    rng = make_arrivals(seed)  # seed flows all the way to the RNG
    return rng.exponential(1.0)
