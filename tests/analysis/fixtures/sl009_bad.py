"""SL009: linted as ``src/repro/sim/events.py`` by the tests.

``Timeout`` is an Event subclass in a hot file but declares no
``__slots__`` — every instance drags a per-event dict.
"""


class Event:
    __slots__ = ("env", "callbacks")

    def __init__(self, env):
        self.env = env
        self.callbacks = []


class Timeout(Event):  # BAD: unslotted Event subclass on the hot path
    def __init__(self, env, delay):
        super().__init__(env)
        self.delay = delay


class KernelError(Exception):
    """Exceptions are exempt: they are not per-event allocations."""
