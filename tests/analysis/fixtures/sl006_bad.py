"""SL006 fixture (bad): exact float equality against sim time."""


def fired_now(env, event_time):
    return env.now == event_time


def not_yet(env, deadline):
    return env.now != deadline


def local_alias(env, stamps):
    now = env.now
    return [s for s in stamps if s == now]
