"""SL003 fixture (good): sim processes yield only events."""


def worker(env, jobs):
    for job in jobs:
        yield env.timeout(job.runtime)


def ceder(env):
    # The determinism-safe way to cede the turn at the current instant.
    yield env.timeout(0)


def joiner(env, make_child):
    child = env.process(make_child(env))
    result = yield child
    return result


def plain_generator(items):
    # Not a sim process (no event factories): literal yields are fine.
    for item in items:
        yield item
