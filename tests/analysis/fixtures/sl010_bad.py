"""SL010: unbounded growth inside a never-exiting sim process."""


class Sampler:
    def __init__(self, env):
        self.env = env
        self.samples = []

    def run(self):
        while True:
            yield self.env.timeout(1.0)
            # BAD: nothing ever drains this list; a week-long sim leaks.
            self.samples.append(self.env.now)
