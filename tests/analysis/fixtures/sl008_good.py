"""SL008: linted as ``src/repro/workload/generator.py`` by the tests.

Imports stay inside the declared envelope (workload -> sim only).
"""

from repro.sim import Environment
from repro.workload.trace import TraceArchive


def archive_for(env: Environment) -> TraceArchive:
    return TraceArchive(name="w", domain="workload", instrument="gen",
                        provenance=f"t0={env.now}")
