"""The DAG table in ``docs/architecture.md`` cannot silently rot.

Mirror of the law-catalog doc test: the table rows are parsed and
compared — package set *and* allowed-dependency sets — against the
checked-in manifest ``repro.analysis.layers.LAYERS``.
"""

import re
from pathlib import Path

from repro.analysis.layers import (
    EVENT_LOOP_FUNCTIONS,
    FILE_LAYERS,
    HOT_FILE_SUFFIXES,
    LAYERS,
    SLOTS_REQUIRED,
)

DOC = Path(__file__).resolve().parents[2] / "docs" / "architecture.md"

ROW_RE = re.compile(r"^\| `([a-z0-9]+)` \| (.+?) \| .+\|$")


def documented_layers() -> dict[str, frozenset[str]]:
    """``{package: allowed-deps}`` parsed from the doc's DAG table."""
    out: dict[str, frozenset[str]] = {}
    for line in DOC.read_text().splitlines():
        m = ROW_RE.match(line)
        if m:
            deps = frozenset(re.findall(r"`([a-z0-9]+)`", m.group(2)))
            out[m.group(1)] = deps
    return out


def test_dag_table_parses_nonempty():
    docs = documented_layers()
    assert len(docs) >= 10, f"DAG table parse found only {sorted(docs)}"


def test_every_manifest_package_is_documented():
    missing = set(LAYERS) - set(documented_layers())
    assert not missing, (
        f"packages missing from docs/architecture.md DAG table: "
        f"{sorted(missing)}")


def test_documented_rows_match_the_manifest_exactly():
    docs = documented_layers()
    extra = set(docs) - set(LAYERS)
    assert not extra, f"doc rows for packages not in the manifest: {extra}"
    for pkg, deps in docs.items():
        assert deps == LAYERS[pkg], (
            f"docs/architecture.md row for {pkg!r} says {sorted(deps)}, "
            f"manifest says {sorted(LAYERS[pkg])}")


def test_harness_overrides_are_documented():
    text = DOC.read_text()
    for suffix in FILE_LAYERS:
        assert suffix in text, f"{suffix} missing from architecture.md"


def test_hot_path_registries_are_consistent():
    # Every event-loop function and slots-required class lives in a file
    # the hot-file registry covers — the manifest cannot contradict
    # itself.
    modules = {s[:-3].replace("/", ".") for s in HOT_FILE_SUFFIXES}
    for qual in EVENT_LOOP_FUNCTIONS | SLOTS_REQUIRED:
        module = ".".join(qual.split(".")[:-1])
        if module.split(".")[-1][0].isupper():  # Class.method qualname
            module = ".".join(qual.split(".")[:-2])
        assert any(module.endswith(m) for m in modules), (
            f"{qual} is not inside a HOT_FILE_SUFFIXES module")
