"""Fixture-backed tests for the whole-program rules (SL007–SL010 and
the interprocedural SL001 flow pass)."""

import os

import pytest

from repro.analysis.lint import lint_file, lint_sources
from repro.analysis.project_rules import PROJECT_RULES

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Fixtures for path-sensitive rules are linted under a synthetic
#: ``src/repro/...`` path so the layer/hot-file manifests apply.
SYNTHETIC_PATHS = {
    "SL008": "src/repro/workload/generator.py",
    "SL009": "src/repro/sim/events.py",
}


def fixture_findings(code, flavor):
    stem = "sl001_chain" if code == "SL001" else code.lower()
    path = os.path.join(FIXTURES, f"{stem}_{flavor}.py")
    synthetic = SYNTHETIC_PATHS.get(code)
    if synthetic is None:
        return lint_file(path)
    with open(path, encoding="utf-8") as fh:
        return lint_sources({synthetic: fh.read()})


ALL_CODES = [rule.code for rule in PROJECT_RULES]


def test_project_rule_registry_is_complete():
    assert ALL_CODES == ["SL001", "SL007", "SL008", "SL009", "SL010"]
    assert all(rule.summary for rule in PROJECT_RULES)


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_triggers_rule(code):
    assert code in {f.code for f in fixture_findings(code, "bad")}


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_fully_clean(code):
    assert fixture_findings(code, "good") == []


# -- SL001 flow: interprocedural RNG provenance -----------------------------

def test_sl001_chain_names_the_whole_route():
    findings = [f for f in fixture_findings("SL001", "bad")
                if f.code == "SL001"]
    assert len(findings) == 1
    (finding,) = findings
    assert "make_arrivals -> _make_generator -> numpy.random.default_rng" \
        in finding.message
    assert "make_arrivals()" in finding.snippet


def test_sl001_flow_flags_explicit_none():
    findings = lint_sources({"m.py": (
        "import numpy as np\n"
        "def make(seed=None):\n"
        "    return np.random.default_rng(seed)\n"
        "def scenario():\n"
        "    return make(seed=None)\n")})
    assert [f.code for f in findings] == ["SL001"]
    assert "passes None" in findings[0].message


def test_sl001_flow_flags_implicit_wallclock_ctor():
    findings = lint_sources({"m.py": (
        "import random\n"
        "def make():\n"
        "    return random.Random()\n")})
    assert [f.code for f in findings] == ["SL001"]
    assert "wall-clock-seeded" in findings[0].message


def test_sl001_flow_and_syntactic_do_not_double_report():
    # Literally-unseeded default_rng() belongs to the syntactic pass only.
    findings = lint_sources({"m.py": (
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng()\n")})
    assert [f.code for f in findings] == ["SL001"]


def test_sl001_flow_ignores_starargs_forwarding():
    # *args forwarding is dynamic: conservative, no finding.
    findings = lint_sources({"m.py": (
        "import numpy as np\n"
        "def make(seed=None):\n"
        "    return np.random.default_rng(seed)\n"
        "def scenario(*args):\n"
        "    return make(*args)\n")})
    assert findings == []


# -- SL007: module-level mutable state --------------------------------------

def test_sl007_write_through_helper_is_flagged():
    findings = lint_sources({"m.py": (
        "TALLY = {}\n"
        "def record(now):\n"
        "    TALLY[now] = 1\n"
        "def run(env):\n"
        "    yield env.timeout(1.0)\n"
        "    record(env.now)\n")})
    assert [f.code for f in findings] == ["SL007"]
    assert "m.TALLY" in findings[0].message


def test_sl007_unreachable_writer_is_not_flagged():
    findings = lint_sources({"m.py": (
        "TALLY = {}\n"
        "def record(now):\n"
        "    TALLY[now] = 1\n"
        "def run(env):\n"
        "    yield env.timeout(1.0)\n")})
    assert findings == []


def test_sl007_dynamic_dispatch_produces_no_finding():
    findings = lint_sources({"m.py": (
        "TALLY = {}\n"
        "def record():\n"
        "    TALLY['n'] = 1\n"
        "HANDLERS = {'r': record}\n"
        "def run(env):\n"
        "    while True:\n"
        "        yield env.timeout(1.0)\n"
        "        HANDLERS['r']()\n")})
    assert findings == []


def test_sl007_cross_module_write_resolved_through_import():
    findings = lint_sources({
        "src/repro/faults/state.py": "FAILED = []\n",
        "src/repro/faults/inject.py": (
            "from repro.faults import state\n"
            "def run(env):\n"
            "    yield env.timeout(1.0)\n"
            "    state.FAILED.append(env.now)\n"),
    })
    assert "SL007" in {f.code for f in findings}


# -- SL008: architecture layering -------------------------------------------

def test_sl008_unknown_package_must_be_placed_in_dag():
    findings = lint_sources({"src/repro/newpkg/mod.py": "X = 1\n"})
    assert [f.code for f in findings] == ["SL008"]
    assert "not in the layer manifest" in findings[0].message


def test_sl008_harness_files_may_import_anything():
    findings = lint_sources({"src/repro/faults/chaos.py": (
        "from repro.scheduling.simulator import ClusterSimulator\n")})
    assert findings == []


def test_sl008_self_import_allowed():
    findings = lint_sources({"src/repro/workload/mod.py": (
        "from repro.workload.trace import TraceArchive\n")})
    assert findings == []


# -- SL009: hot-path performance --------------------------------------------

def test_sl009_event_loop_flags_dotted_load_under_loop():
    findings = lint_sources({"src/repro/sim/environment.py": (
        "class Environment:\n"
        "    __slots__ = ('_queue', '_now')\n"
        "    def __init__(self):\n"
        "        self._queue = []\n"
        "        self._now = 0.0\n"
        "    def run(self, until=None):\n"
        "        while self._queue:\n"
        "            self._now = self._now + 1.0\n")})
    codes = [(f.code, f.message.split(" ")[0]) for f in findings]
    assert ("SL009", "self._queue") in codes
    # self._now is assigned in the function: live state, exempt.
    assert ("SL009", "self._now") not in codes


def test_sl009_prebound_loop_is_clean():
    findings = lint_sources({"src/repro/sim/environment.py": (
        "class Environment:\n"
        "    __slots__ = ('_queue', '_now')\n"
        "    def __init__(self):\n"
        "        self._queue = []\n"
        "        self._now = 0.0\n"
        "    def run(self, until=None):\n"
        "        queue = self._queue\n"
        "        while queue:\n"
        "            self._now = self._now + 1.0\n")})
    assert findings == []


def test_sl009_cold_file_needs_no_slots():
    findings = lint_sources({"src/repro/workload/mod.py": (
        "class Sample:\n"
        "    def __init__(self, t):\n"
        "        self.t = t\n")})
    assert findings == []


# -- SL010: unbounded growth ------------------------------------------------

def test_sl010_bounded_deque_is_clean():
    findings = lint_sources({"m.py": (
        "from collections import deque\n"
        "class S:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n"
        "        self.samples = deque(maxlen=100)\n"
        "    def run(self):\n"
        "        while True:\n"
        "            yield self.env.timeout(1.0)\n"
        "            self.samples.append(self.env.now)\n")})
    assert findings == []


def test_sl010_flush_method_counts_as_eviction():
    findings = lint_sources({"m.py": (
        "class S:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n"
        "        self.samples = []\n"
        "    def flush(self):\n"
        "        out = self.samples\n"
        "        self.samples = []\n"
        "        return out\n"
        "    def run(self):\n"
        "        while True:\n"
        "            yield self.env.timeout(1.0)\n"
        "            self.samples.append(self.env.now)\n")})
    assert findings == []


def test_sl010_loop_with_break_is_not_flagged():
    findings = lint_sources({"m.py": (
        "def run(env, log):\n"
        "    while True:\n"
        "        yield env.timeout(1.0)\n"
        "        log.append(env.now)\n"
        "        if env.now > 10:\n"
        "            break\n")})
    assert findings == []


def test_sl010_inline_suppression_honored():
    findings = lint_sources({"m.py": (
        "class S:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n"
        "        self.samples = []\n"
        "    def run(self):\n"
        "        while True:\n"
        "            yield self.env.timeout(1.0)\n"
        "            self.samples.append(1)  # simlint: disable=SL010\n")})
    assert findings == []
