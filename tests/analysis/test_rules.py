"""Fixture-backed tests for every simlint rule (SL001–SL006)."""

import os

import pytest

from repro.analysis import lint_file
from repro.analysis.rules import RULES, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

ALL_CODES = [rule.code for rule in RULES]


def codes_in(filename):
    findings = lint_file(os.path.join(FIXTURES, filename))
    return {f.code for f in findings}


def test_rule_registry_is_complete():
    assert ALL_CODES == ["SL001", "SL002", "SL003", "SL004", "SL005", "SL006"]
    assert all(rule.summary for rule in RULES)


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_triggers_rule(code):
    assert code in codes_in(f"{code.lower()}_bad.py")


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_clean_for_rule(code):
    assert code not in codes_in(f"{code.lower()}_good.py")


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_fully_clean(code):
    # Good fixtures must not trip *any* rule, not just their own.
    assert codes_in(f"{code.lower()}_good.py") == set()


# -- per-rule specifics ----------------------------------------------------

def test_sl001_counts_every_bad_site():
    findings = lint_file(os.path.join(FIXTURES, "sl001_bad.py"))
    assert len([f for f in findings if f.code == "SL001"]) == 5


def test_sl001_seeded_function_scope_construction_allowed():
    src = ("import numpy as np\n"
           "def make(seed):\n"
           "    return np.random.default_rng(seed)\n")
    assert lint_source(src) == []


def test_sl001_module_level_seeded_construction_flagged():
    src = "import numpy as np\nRNG = np.random.default_rng(7)\n"
    assert [f.code for f in lint_source(src)] == ["SL001"]


def test_sl002_import_aliases_resolved():
    src = ("import time as walltime\n"
           "def f():\n"
           "    return walltime.perf_counter()\n")
    assert [f.code for f in lint_source(src)] == ["SL002"]


def test_sl003_requires_sim_process_context():
    # A plain generator yielding literals is not a sim process.
    src = ("def gen(items):\n"
           "    for i in items:\n"
           "        yield i\n"
           "    yield 42\n")
    assert lint_source(src) == []


def test_sl004_with_block_accepted():
    src = ("def f(env, res):\n"
           "    with res.request() as req:\n"
           "        yield req\n")
    assert lint_source(src) == []


def test_sl005_sorted_wrapper_accepted():
    src = ("def f(xs):\n"
           "    return [x for x in sorted(set(xs))]\n")
    assert lint_source(src) == []


def test_sl006_ordering_comparisons_allowed():
    src = ("def f(env, d):\n"
           "    return env.now >= d\n")
    assert lint_source(src) == []


# -- inline suppression ----------------------------------------------------

def test_inline_disable_suppresses_named_code():
    src = ("import time\n"
           "def f():\n"
           "    return time.time()  # simlint: disable=SL002\n")
    assert lint_source(src) == []


def test_inline_disable_other_code_does_not_suppress():
    src = ("import time\n"
           "def f():\n"
           "    return time.time()  # simlint: disable=SL001\n")
    assert [f.code for f in lint_source(src)] == ["SL002"]


def test_inline_disable_all():
    src = ("import time\n"
           "def f():\n"
           "    return time.time()  # simlint: disable=all\n")
    assert lint_source(src) == []


def test_findings_carry_location_and_snippet():
    src = "import time\nWALL = time.time()\n"
    (finding,) = lint_source(src, path="pkg/mod.py")
    assert finding.path == "pkg/mod.py"
    assert finding.line == 2
    assert finding.snippet == "WALL = time.time()"
    assert "pkg/mod.py:2" in finding.format()
