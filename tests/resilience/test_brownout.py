"""Brownout mode machine: hysteresis, hooks, time accounting."""

import pytest

from repro.resilience import BrownoutController, ServiceMode


def test_modes_are_ordered():
    assert ServiceMode.NORMAL < ServiceMode.DEGRADED < ServiceMode.CRITICAL


def test_escalation_and_recovery_ladder():
    c = BrownoutController(degraded_enter=0.8, degraded_exit=0.6,
                           critical_enter=0.95, critical_exit=0.8)
    assert c.observe(0.5, 1.0) is ServiceMode.NORMAL
    assert c.observe(0.85, 2.0) is ServiceMode.DEGRADED
    assert c.observe(0.97, 3.0) is ServiceMode.CRITICAL
    # Recovery goes down the ladder, not straight to NORMAL.
    assert c.observe(0.7, 4.0) is ServiceMode.DEGRADED
    assert c.observe(0.5, 5.0) is ServiceMode.NORMAL
    assert c.transitions == 4


def test_normal_jumps_straight_to_critical():
    c = BrownoutController()
    assert c.observe(0.99, 1.0) is ServiceMode.CRITICAL


def test_critical_can_recover_straight_to_normal():
    c = BrownoutController(degraded_enter=0.8, degraded_exit=0.6,
                           critical_enter=0.95, critical_exit=0.8)
    c.observe(0.99, 1.0)
    assert c.observe(0.1, 2.0) is ServiceMode.NORMAL


def test_hysteresis_no_flapping_at_threshold():
    c = BrownoutController(degraded_enter=0.8, degraded_exit=0.6)
    c.observe(0.85, 1.0)
    # Hovering between exit and enter: stays DEGRADED either side of 0.8.
    assert c.observe(0.79, 2.0) is ServiceMode.DEGRADED
    assert c.observe(0.81, 3.0) is ServiceMode.DEGRADED
    assert c.observe(0.61, 4.0) is ServiceMode.DEGRADED
    assert c.transitions == 1


def test_time_in_mode_accounting():
    c = BrownoutController()
    c.observe(0.0, 10.0)   # NORMAL for [0, 10)
    c.observe(0.9, 10.0)   # -> DEGRADED at 10
    c.observe(0.9, 25.0)   # DEGRADED for [10, 25)
    c.observe(0.99, 25.0)  # -> CRITICAL at 25
    c.finish(30.0)
    assert c.time_in(ServiceMode.NORMAL) == pytest.approx(10.0)
    assert c.time_in(ServiceMode.DEGRADED) == pytest.approx(15.0)
    assert c.time_in(ServiceMode.CRITICAL) == pytest.approx(5.0)
    assert c.degraded_time_s() == pytest.approx(20.0)


def test_hooks_fire_on_entry():
    c = BrownoutController()
    entered = []
    c.register_hook(ServiceMode.DEGRADED,
                    lambda old, new, now: entered.append((old, new, now)))
    c.register_hook(ServiceMode.NORMAL,
                    lambda old, new, now: entered.append((old, new, now)))
    c.observe(0.9, 1.0)
    c.observe(0.9, 2.0)  # still DEGRADED: hook must not re-fire
    c.observe(0.1, 3.0)
    assert entered == [
        (ServiceMode.NORMAL, ServiceMode.DEGRADED, 1.0),
        (ServiceMode.DEGRADED, ServiceMode.NORMAL, 3.0),
    ]


def test_time_must_be_monotone():
    c = BrownoutController()
    c.observe(0.5, 5.0)
    with pytest.raises(ValueError):
        c.observe(0.5, 4.0)
    with pytest.raises(ValueError):
        c.finish(1.0)


def test_threshold_validation():
    with pytest.raises(ValueError):
        BrownoutController(degraded_enter=0.6, degraded_exit=0.6)
    with pytest.raises(ValueError):
        BrownoutController(critical_enter=0.9, critical_exit=0.9)
    with pytest.raises(ValueError):
        BrownoutController(degraded_enter=0.97, degraded_exit=0.5,
                           critical_enter=0.95, critical_exit=0.8)
