"""Token-bucket admission and CoDel-style shedding."""

import pytest

from repro.resilience import CoDelShedder, TokenBucketAdmitter
from repro.sim import Environment


def test_bucket_burst_then_shed():
    env = Environment()
    adm = TokenBucketAdmitter(env, rate_per_s=1.0, burst=3.0)
    assert [adm.admit() for _ in range(4)] == [True, True, True, False]
    assert adm.admitted == 3
    assert adm.shed == 1
    assert adm.shed_rate == pytest.approx(0.25)


def test_bucket_refills_with_time():
    env = Environment()
    adm = TokenBucketAdmitter(env, rate_per_s=2.0, burst=2.0)
    assert adm.admit() and adm.admit()
    assert not adm.admit()

    def later(env):
        yield env.timeout(1.0)  # 2 tokens refilled
        assert adm.admit()
        assert adm.admit()
        assert not adm.admit()

    env.process(later(env))
    env.run()


def test_bucket_caps_at_burst():
    env = Environment()
    adm = TokenBucketAdmitter(env, rate_per_s=100.0, burst=2.0)

    def later(env):
        yield env.timeout(10.0)
        assert adm.tokens == pytest.approx(2.0)

    env.process(later(env))
    env.run()


def test_bucket_sustained_rate():
    """Over a long run the admitted rate converges to rate_per_s."""
    env = Environment()
    adm = TokenBucketAdmitter(env, rate_per_s=5.0, burst=1.0)

    def offered(env):
        while env.now < 100.0:
            adm.admit()
            yield env.timeout(0.05)  # offered at 20/s

    env.process(offered(env))
    env.run(until=100.0)
    assert adm.admitted == pytest.approx(5.0 * 100.0, rel=0.05)


def test_bucket_cost_and_validation():
    env = Environment()
    adm = TokenBucketAdmitter(env, rate_per_s=1.0, burst=4.0)
    assert adm.admit(cost=4.0)
    assert not adm.admit(cost=1.0)
    with pytest.raises(ValueError):
        adm.admit(cost=0.0)
    with pytest.raises(ValueError):
        TokenBucketAdmitter(env, rate_per_s=0.0)
    with pytest.raises(ValueError):
        TokenBucketAdmitter(env, rate_per_s=1.0, burst=0.5)


def test_codel_below_target_never_sheds():
    env = Environment()
    codel = CoDelShedder(env, target_s=0.1, interval_s=1.0)

    def run(env):
        for _ in range(50):
            assert not codel.should_shed(0.01)
            yield env.timeout(0.1)

    env.process(run(env))
    env.run()
    assert codel.shed == 0
    assert not codel.dropping


def test_codel_short_burst_passes():
    """Above target but shorter than one interval: nothing shed."""
    env = Environment()
    codel = CoDelShedder(env, target_s=0.1, interval_s=1.0)

    def run(env):
        for _ in range(5):
            assert not codel.should_shed(0.5)  # above target...
            yield env.timeout(0.1)  # ...but only for 0.5s total
        assert not codel.should_shed(0.01)  # dip resets the state

    env.process(run(env))
    env.run()
    assert codel.shed == 0


def test_codel_standing_queue_triggers_and_ramps():
    env = Environment()
    codel = CoDelShedder(env, target_s=0.1, interval_s=1.0)
    decisions = []

    def run(env):
        # Delay stays above target for 5 s, evaluated every 100 ms.
        for _ in range(50):
            decisions.append(codel.should_shed(0.5))
            yield env.timeout(0.1)

    env.process(run(env))
    env.run()
    assert codel.dropping
    assert codel.shed >= 3
    # First interval's worth of evaluations all passed.
    assert not any(decisions[:10])
    # Drop spacing shrinks: interval/sqrt(n) — later drops come faster.
    drop_times = [i * 0.1 for i, d in enumerate(decisions) if d]
    gaps = [b - a for a, b in zip(drop_times, drop_times[1:])]
    assert gaps == sorted(gaps, reverse=True)


def test_codel_recovery_resets():
    env = Environment()
    codel = CoDelShedder(env, target_s=0.1, interval_s=0.5)

    def run(env):
        for _ in range(20):
            codel.should_shed(0.5)
            yield env.timeout(0.1)
        assert codel.dropping
        assert not codel.should_shed(0.01)  # queue drained
        assert not codel.dropping
        # Back above target: must sustain a full interval again.
        assert not codel.should_shed(0.5)

    env.process(run(env))
    env.run()


def test_codel_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CoDelShedder(env, target_s=0.0)
    with pytest.raises(ValueError):
        CoDelShedder(env, interval_s=0.0)
