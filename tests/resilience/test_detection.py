"""Heartbeats and phi-accrual failure detection."""

import pytest

from repro.resilience import PHI_MAX, HeartbeatEmitter, PhiAccrualDetector
from repro.sim import Environment, RandomStreams


def test_register_and_phi_starts_low():
    env = Environment()
    det = PhiAccrualDetector(env)
    det.register("a", 1.0)
    assert det.phi("a") == 0.0 or det.phi("a") < det.threshold
    assert not det.is_suspect("a")


def test_register_rejects_bad_interval():
    env = Environment()
    det = PhiAccrualDetector(env)
    with pytest.raises(ValueError):
        det.register("a", 0.0)


def test_unregistered_heartbeat_raises():
    env = Environment()
    det = PhiAccrualDetector(env)
    with pytest.raises(KeyError):
        det.heartbeat("ghost")


def test_phi_grows_with_silence():
    env = Environment()
    det = PhiAccrualDetector(env, min_std_s=0.1)
    det.register("a", 1.0)

    def probe(env):
        yield env.timeout(1.0)
        low = det.phi("a")
        yield env.timeout(9.0)
        high = det.phi("a")
        assert high > low
        assert high <= PHI_MAX

    env.process(probe(env))
    env.run()


def test_silent_component_becomes_suspect_and_heartbeat_clears():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0)
    det.register("a", 1.0)

    def scenario(env):
        # Regular heartbeats: never suspected.
        for _ in range(10):
            yield env.timeout(1.0)
            det.heartbeat("a")
            assert not det.is_suspect("a")
        # Then silence: suspicion must arise.
        yield env.timeout(30.0)
        assert det.is_suspect("a")
        assert det.suspected_at("a") is not None
        assert det.suspects() == ["a"]
        # It speaks again: cleared, and booked as false.
        det.heartbeat("a")
        assert not det.is_suspect("a")
        assert det.false_suspicions == 1

    env.process(scenario(env))
    env.run()
    assert det.suspicions == 1
    assert det.suspicion_log and det.suspicion_log[0][0] == "a"


def test_poll_records_onset_without_queries():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
    det.register("a", 1.0)
    env.run(until=60.0)
    # Nobody ever called is_suspect; the poller recorded the onset.
    assert det.suspected_at("a") is not None


def test_detection_latency_requires_onset_after_failure():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
    det.register("a", 1.0)
    env.run(until=60.0)
    assert det.detection_latency_s("a", failed_at=0.0) is not None
    # An onset before the claimed failure time is not a detection of it.
    assert det.detection_latency_s("a", failed_at=59.0) is None
    assert det.detection_latency_s("never-registered", 0.0) is None


def test_emitter_feeds_detector_and_suppresses_when_down():
    env = Environment()
    streams = RandomStreams(7)
    det = PhiAccrualDetector(env)
    up = {"a": True}
    emitter = HeartbeatEmitter(env, det, "a", 1.0,
                               rng=streams.get("hb-a"),
                               is_up=lambda: up["a"])

    def crash(env):
        yield env.timeout(10.0)
        up["a"] = False

    env.process(crash(env))
    env.run(until=20.0)
    assert emitter.sent > 0
    assert emitter.suppressed > 0
    assert det.heartbeats == emitter.sent


def test_emitter_without_rng_is_unjittered():
    env = Environment()
    det = PhiAccrualDetector(env)
    emitter = HeartbeatEmitter(env, det, "a", 2.0)
    env.run(until=10.0)
    assert emitter.sent == 4  # beats at 2, 4, 6, 8 (10.0 not reached)


def test_fault_free_emitters_never_suspected_across_seeds():
    """The acceptance property: bounded jitter, zero false suspicions."""
    for seed in (0, 1, 2):
        env = Environment()
        streams = RandomStreams(seed)
        det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
        for i in range(5):
            HeartbeatEmitter(env, det, f"m{i}", 1.0,
                             rng=streams.get(f"hb-m{i}"))
        env.run(until=120.0)
        assert det.suspicions == 0, f"seed {seed}"
        assert det.false_suspicions == 0, f"seed {seed}"
        assert det.suspects() == []


def test_validation_errors():
    env = Environment()
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, threshold=0.0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, window=0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, poll_interval_s=0.0)
    det = PhiAccrualDetector(env)
    with pytest.raises(ValueError):
        HeartbeatEmitter(env, det, "a", 0.0)
    with pytest.raises(ValueError):
        HeartbeatEmitter(env, det, "a", 1.0, jitter=1.0)
