"""Heartbeats and phi-accrual failure detection."""

import pytest

from repro.resilience import PHI_MAX, HeartbeatEmitter, PhiAccrualDetector
from repro.sim import Environment, RandomStreams


def test_register_and_phi_starts_low():
    env = Environment()
    det = PhiAccrualDetector(env)
    det.register("a", 1.0)
    assert det.phi("a") == 0.0 or det.phi("a") < det.threshold
    assert not det.is_suspect("a")


def test_register_rejects_bad_interval():
    env = Environment()
    det = PhiAccrualDetector(env)
    with pytest.raises(ValueError):
        det.register("a", 0.0)


def test_unregistered_heartbeat_raises():
    env = Environment()
    det = PhiAccrualDetector(env)
    with pytest.raises(KeyError):
        det.heartbeat("ghost")


def test_phi_grows_with_silence():
    env = Environment()
    det = PhiAccrualDetector(env, min_std_s=0.1)
    det.register("a", 1.0)

    def probe(env):
        yield env.timeout(1.0)
        low = det.phi("a")
        yield env.timeout(9.0)
        high = det.phi("a")
        assert high > low
        assert high <= PHI_MAX

    env.process(probe(env))
    env.run()


def test_silent_component_becomes_suspect_and_heartbeat_clears():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0)
    det.register("a", 1.0)

    def scenario(env):
        # Regular heartbeats: never suspected.
        for _ in range(10):
            yield env.timeout(1.0)
            det.heartbeat("a")
            assert not det.is_suspect("a")
        # Then silence: suspicion must arise.
        yield env.timeout(30.0)
        assert det.is_suspect("a")
        assert det.suspected_at("a") is not None
        assert det.suspects() == ["a"]
        # It speaks again: cleared, and booked as false.
        det.heartbeat("a")
        assert not det.is_suspect("a")
        assert det.false_suspicions == 1

    env.process(scenario(env))
    env.run()
    assert det.suspicions == 1
    assert det.suspicion_log and det.suspicion_log[0][0] == "a"


def test_poll_records_onset_without_queries():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
    det.register("a", 1.0)
    env.run(until=60.0)
    # Nobody ever called is_suspect; the poller recorded the onset.
    assert det.suspected_at("a") is not None


def test_detection_latency_requires_onset_after_failure():
    env = Environment()
    det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
    det.register("a", 1.0)
    env.run(until=60.0)
    assert det.detection_latency_s("a", failed_at=0.0) is not None
    # An onset before the claimed failure time is not a detection of it.
    assert det.detection_latency_s("a", failed_at=59.0) is None
    assert det.detection_latency_s("never-registered", 0.0) is None


def test_emitter_feeds_detector_and_suppresses_when_down():
    env = Environment()
    streams = RandomStreams(7)
    det = PhiAccrualDetector(env)
    up = {"a": True}
    emitter = HeartbeatEmitter(env, det, "a", 1.0,
                               rng=streams.get("hb-a"),
                               is_up=lambda: up["a"])

    def crash(env):
        yield env.timeout(10.0)
        up["a"] = False

    env.process(crash(env))
    env.run(until=20.0)
    assert emitter.sent > 0
    assert emitter.suppressed > 0
    assert det.heartbeats == emitter.sent


def test_emitter_with_jitter_requires_rng():
    """Regression: jitter > 0 without an rng used to silently phase-lock."""
    env = Environment()
    det = PhiAccrualDetector(env)
    with pytest.raises(ValueError, match="jitter > 0 requires a named rng"):
        HeartbeatEmitter(env, det, "a", 2.0)  # default jitter is 0.1


def test_emitter_with_explicit_zero_jitter_is_unjittered():
    env = Environment()
    det = PhiAccrualDetector(env)
    emitter = HeartbeatEmitter(env, det, "a", 2.0, jitter=0.0)
    env.run(until=10.0)
    assert emitter.sent == 4  # beats at 2, 4, 6, 8 (10.0 not reached)


def test_fault_free_emitters_never_suspected_across_seeds():
    """The acceptance property: bounded jitter, zero false suspicions."""
    for seed in (0, 1, 2):
        env = Environment()
        streams = RandomStreams(seed)
        det = PhiAccrualDetector(env, threshold=8.0, poll_interval_s=0.5)
        for i in range(5):
            HeartbeatEmitter(env, det, f"m{i}", 1.0,
                             rng=streams.get(f"hb-m{i}"))
        env.run(until=120.0)
        assert det.suspicions == 0, f"seed {seed}"
        assert det.false_suspicions == 0, f"seed {seed}"
        assert det.suspects() == []


def test_validation_errors():
    env = Environment()
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, threshold=0.0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, window=0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(env, poll_interval_s=0.0)
    det = PhiAccrualDetector(env)
    with pytest.raises(ValueError):
        HeartbeatEmitter(env, det, "a", 0.0)
    with pytest.raises(ValueError):
        HeartbeatEmitter(env, det, "a", 1.0, jitter=1.0)


def beat_regular(env, det, key, interval_s, n):
    """Advance the clock and deliver n perfectly regular heartbeats."""
    for _ in range(n):
        env.run(until=env.now + interval_s)
        det.heartbeat(key)


class TestPrimeDecayGuard:
    """Before ``min_samples`` real beats, the primed window is a guess and
    suspicion must be slower — but never impossible."""

    def test_early_silence_is_suspected_later_not_never(self):
        # After ONE real beat the naive detector (min_samples=1) trusts
        # its razor-thin window; the guarded one still widens the std
        # until min_samples beats arrive — so it suspects strictly
        # later, but it does suspect.
        def onset_after_one_beat(min_samples):
            env = Environment()
            det = PhiAccrualDetector(env, threshold=8.0,
                                     min_samples=min_samples, min_std_s=0.1)
            det.register("m", 1.0)
            env.run(until=1.0)
            det.heartbeat("m")
            t = 1.0
            while not det.is_suspect("m"):
                t += 0.1
                env.run(until=t)
                assert t < 60.0, "never suspected at all"
            return t, det
        t_naive, _ = onset_after_one_beat(1)
        t_guarded, guarded = onset_after_one_beat(3)
        assert t_naive < t_guarded
        assert guarded.suspicions == 1    # delayed, not prevented

    def test_guard_decays_with_each_real_beat(self):
        env = Environment()
        det = PhiAccrualDetector(env, min_samples=3, min_std_s=0.01)
        det.register("m", 1.0)
        stds = [det._window_stats("m")[1]]
        for _ in range(3):
            env.run(until=env.now + 1.0)
            det.heartbeat("m")
            stds.append(det._window_stats("m")[1])
        # 0 -> 1 -> 2 -> 3 observed beats: the widened std shrinks
        # monotonically and vanishes at min_samples.
        assert stds[0] > stds[1] > stds[2] > stds[3]
        assert stds[0] == pytest.approx(
            PhiAccrualDetector.PRIME_STD_FACTOR * 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhiAccrualDetector(Environment(), min_samples=0)
        with pytest.raises(ValueError):
            PhiAccrualDetector(Environment(), variance_cv=0.0)


class TestSuspectReason:
    def test_regular_source_going_quiet_is_silence(self):
        env = Environment()
        det = PhiAccrualDetector(env, threshold=8.0)
        det.register("steady", 1.0)
        beat_regular(env, det, "steady", 1.0, n=10)
        env.run(until=env.now + 30.0)      # it stops beating
        assert det.is_suspect("steady")
        assert det.suspect_reason("steady") == "silence"
        assert det.suspicions_by_reason == {"silence": 1, "variance": 0}
        assert det.suspicion_log[0][0] == "steady"
        assert det.suspicion_log[0][2] == "silence"

    def test_jittery_source_is_variance(self):
        env = Environment()
        det = PhiAccrualDetector(env, threshold=8.0, variance_cv=0.35)
        det.register("flaky", 1.0)
        # Alternate short/very-long gaps: window CV far above the
        # boundary, the gray/straggler signature.
        for i in range(12):
            env.run(until=env.now + (0.2 if i % 2 else 3.0))
            det.heartbeat("flaky")
        env.run(until=env.now + 40.0)
        assert det.is_suspect("flaky")
        assert det.suspect_reason("flaky") == "variance"
        assert det.suspicions_by_reason == {"silence": 0, "variance": 1}

    def test_never_heard_key_is_silence_by_definition(self):
        env = Environment()
        det = PhiAccrualDetector(env, threshold=8.0)
        det.register("mute", 1.0)
        env.run(until=60.0)
        assert det.is_suspect("mute")
        assert det.suspect_reason("mute") == "silence"

    def test_reason_clears_with_the_suspicion(self):
        env = Environment()
        det = PhiAccrualDetector(env, threshold=8.0)
        det.register("m", 1.0)
        beat_regular(env, det, "m", 1.0, n=8)
        env.run(until=env.now + 30.0)
        assert det.is_suspect("m")
        det.heartbeat("m")                 # it was alive after all
        assert det.suspect_reason("m") is None
        assert det.false_suspicions == 1
        # The all-time reason ledger is never decremented.
        assert det.suspicions_by_reason["silence"] == 1
