"""Brownout-aware MMOG provisioning: degrade fidelity before refusing."""

import numpy as np
import pytest

from repro.mmog import (
    BrownoutProvisioningResult,
    LastValuePredictor,
    run_brownout_provisioning,
    run_provisioning,
)
from repro.resilience import BrownoutController, ServiceMode


def flash_crowd(n=48, base=200.0, peak=2000.0, at=20, width=6):
    """A flat demand signal with a sudden spike (the [71] phenomenology)."""
    demand = np.full(n, base)
    demand[at:at + width] = peak
    return demand


def make_controller():
    return BrownoutController(degraded_enter=0.8, degraded_exit=0.6,
                              critical_enter=1.2, critical_exit=0.8)


def test_steady_demand_stays_normal():
    demand = np.full(24, 300.0)
    # min_servers pre-sizes the fleet so the elasticity warm-up does not
    # register as overload.
    result = run_brownout_provisioning(
        demand, LastValuePredictor(), make_controller(),
        players_per_server=100, provisioning_delay_steps=2, headroom=1.2,
        min_servers=4)
    assert isinstance(result, BrownoutProvisioningResult)
    assert result.degraded_fraction == 0.0
    assert (result.fidelity == 1.0).all()
    assert result.refused_player_time == 0.0


def test_flash_crowd_browns_out_before_refusing():
    demand = flash_crowd()
    controller = make_controller()
    result = run_brownout_provisioning(
        demand, LastValuePredictor(), controller,
        players_per_server=100, provisioning_delay_steps=3)
    # The elasticity gap forces degradation during the spike...
    assert result.degraded_fraction > 0.0
    assert controller.degraded_time_s() > 0.0
    assert result.mean_update_fidelity < 1.0
    # ...and the stretched capacity exceeds nominal during those steps.
    degraded = result.modes >= ServiceMode.DEGRADED.value
    assert (result.effective_capacity[degraded]
            > result.capacity[degraded]).all()
    # Fidelity tracks the mode ladder exactly.
    assert (result.fidelity[result.modes == 0] == 1.0).all()


def test_brownout_strictly_reduces_unserved_player_time():
    """The payoff: stretching capacity serves player-time the plain
    policy drops."""
    demand = flash_crowd()
    plain = run_provisioning(demand, LastValuePredictor(),
                             players_per_server=100,
                             provisioning_delay_steps=3)
    browned = run_brownout_provisioning(
        demand, LastValuePredictor(), make_controller(),
        players_per_server=100, provisioning_delay_steps=3)
    assert plain.unserved_player_time > 0.0
    lost = (browned.refused_player_time
            + browned.unserved_effective_player_time)
    assert lost < plain.unserved_player_time
    # Same fleet, same bill: brownout sheds fidelity, not servers.
    assert browned.server_hours == plain.server_hours
    assert (browned.provisioned == plain.provisioned).all()


def test_refusals_only_in_critical():
    demand = flash_crowd(peak=5000.0)
    result = run_brownout_provisioning(
        demand, LastValuePredictor(), make_controller(),
        players_per_server=100, provisioning_delay_steps=3,
        critical_capacity_factor=1.5)
    critical = result.modes == ServiceMode.CRITICAL.value
    assert critical.any()
    assert result.refused_player_time > 0.0
    # Excess during non-critical steps is degraded service, not refusal.
    noncritical_excess = np.maximum(
        result.demand - result.effective_capacity, 0.0)[~critical]
    expected = float(noncritical_excess.sum() * result.step_s)
    assert result.unserved_effective_player_time == pytest.approx(expected)


def test_deterministic_given_same_inputs():
    demand = flash_crowd()
    a = run_brownout_provisioning(demand, LastValuePredictor(),
                                  make_controller())
    b = run_brownout_provisioning(demand, LastValuePredictor(),
                                  make_controller())
    assert (a.modes == b.modes).all()
    assert a.refused_player_time == b.refused_player_time


def test_parameter_validation():
    demand = flash_crowd()
    with pytest.raises(ValueError):
        run_brownout_provisioning(demand, LastValuePredictor(),
                                  make_controller(),
                                  degraded_capacity_factor=0.9)
    with pytest.raises(ValueError):
        run_brownout_provisioning(demand, LastValuePredictor(),
                                  make_controller(),
                                  fidelity_degraded=0.5,
                                  fidelity_critical=0.6)
