"""Tests for CAMEO-style continuous gaming analytics ([79])."""

import numpy as np
import pytest

from repro.mmog.analytics import (
    CameoAnalytics,
    SessionRecord,
    churned,
    dau,
    generate_sessions,
    retention,
)
from repro.sim import RandomStreams


@pytest.fixture(scope="module")
def sessions():
    rng = RandomStreams(seed=21).get("cameo")
    return generate_sessions(rng, n_players=400, days=7,
                             churn_per_day=0.05)


class TestSessionGeneration:
    def test_invalid_session_rejected(self):
        with pytest.raises(ValueError):
            SessionRecord("p", start=10.0, end=10.0)

    def test_sessions_sorted_and_spanning_days(self, sessions):
        starts = [s.start for s in sessions]
        assert starts == sorted(starts)
        assert {s.day for s in sessions} == set(range(7))

    def test_power_law_activity(self, sessions):
        counts = {}
        for s in sessions:
            counts[s.player] = counts.get(s.player, 0) + 1
        values = sorted(counts.values(), reverse=True)
        # The most active player far out-plays the median player.
        assert values[0] > 3 * values[len(values) // 2]

    def test_validation(self):
        rng = RandomStreams(seed=1).get("x")
        with pytest.raises(ValueError):
            generate_sessions(rng, n_players=0)


class TestExactKPIs:
    def test_dau_counts_distinct_players(self):
        day = [SessionRecord("a", 10, 20), SessionRecord("a", 30, 40),
               SessionRecord("b", 50, 60)]
        assert dau(day, 0) == 2
        assert dau(day, 1) == 0

    def test_retention(self):
        sessions = [SessionRecord("a", 10, 20),
                    SessionRecord("b", 30, 40),
                    SessionRecord("a", 86400 + 10, 86400 + 20)]
        assert retention(sessions, 0) == 0.5
        assert np.isnan(retention(sessions, 5))

    def test_churn_reflects_disappearance(self):
        sessions = [SessionRecord("a", 10, 20),
                    SessionRecord("b", 30, 40),
                    SessionRecord("a", 2 * 86400 + 10, 2 * 86400 + 20)]
        assert churned(sessions, 0, horizon_days=3) == 0.5

    def test_churn_declines_population(self, sessions):
        assert dau(sessions, 6) < dau(sessions, 0)


class TestCameo:
    def test_full_analysis_is_exact(self, sessions):
        report = CameoAnalytics().analyze(sessions, fraction=1.0)
        assert report.mean_relative_error == pytest.approx(0.0)
        assert report.events_processed == len(sessions)

    def test_sampling_cuts_cost(self, sessions):
        cameo = CameoAnalytics()
        full = cameo.analyze(sessions, fraction=1.0)
        sampled = cameo.analyze(sessions, fraction=0.2)
        assert sampled.cloud_cost < 0.35 * full.cloud_cost
        assert sampled.events_processed < full.events_processed

    def test_smaller_samples_larger_errors(self, sessions):
        cameo = CameoAnalytics()
        coarse = cameo.analyze(sessions, fraction=0.05)
        fine = cameo.analyze(sessions, fraction=0.5)
        assert fine.mean_relative_error <= (
            coarse.mean_relative_error + 1e-9)
        assert coarse.mean_relative_error < 1.0  # still in the ballpark

    def test_budget_planning(self, sessions):
        cameo = CameoAnalytics()
        full_cost = len(sessions) * cameo.cost_per_event
        fraction = cameo.max_fraction_for_budget(sessions, full_cost / 4)
        assert fraction == pytest.approx(0.25, rel=0.01)
        report = cameo.analyze_within_budget(sessions, full_cost / 4)
        assert report.cloud_cost <= full_cost / 4 * 1.05

    def test_generous_budget_caps_at_full(self, sessions):
        cameo = CameoAnalytics()
        assert cameo.max_fraction_for_budget(sessions, 10**9) == 1.0

    def test_validation(self, sessions):
        cameo = CameoAnalytics()
        with pytest.raises(ValueError):
            cameo.analyze(sessions, fraction=0.0)
        with pytest.raises(ValueError):
            cameo.max_fraction_for_budget(sessions, 0.0)
        with pytest.raises(ValueError):
            CameoAnalytics(cost_per_event=0)
