"""Tests for the virtual world, player dynamics, and provisioning."""

import numpy as np
import pytest

from repro.mmog import (
    GENRE_PROFILES,
    LastValuePredictor,
    MovingAveragePredictor,
    PlayerSession,
    TrendPredictor,
    VirtualWorld,
    Zone,
    run_provisioning,
    simulate_population,
)
from repro.mmog.provisioning import static_provisioning
from repro.sim import RandomStreams


@pytest.fixture
def rng():
    return RandomStreams(seed=13).get("mmog")


class TestZone:
    def test_tick_rate_degrades_above_soft_capacity(self):
        zone = Zone("z", soft_capacity=10, hard_capacity=20)
        for i in range(10):
            assert zone.try_join(PlayerSession(f"p{i}", start=0))
        assert zone.tick_hz == zone.base_tick_hz
        assert not zone.overloaded
        for i in range(5):
            zone.try_join(PlayerSession(f"q{i}", start=0))
        assert zone.overloaded
        assert zone.tick_hz < zone.base_tick_hz

    def test_hard_capacity_refuses_joins(self):
        zone = Zone("z", soft_capacity=2, hard_capacity=3)
        sessions = [PlayerSession(f"p{i}", start=0) for i in range(4)]
        results = [zone.try_join(s) for s in sessions]
        assert results == [True, True, True, False]

    def test_leave_frees_capacity(self):
        zone = Zone("z", soft_capacity=1, hard_capacity=1)
        s = PlayerSession("p", start=0)
        assert zone.try_join(s)
        zone.leave(s)
        assert s.zone is None
        assert zone.try_join(PlayerSession("q", start=0))

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            Zone("z", soft_capacity=10, hard_capacity=5)


class TestVirtualWorld:
    def test_least_loaded_placement(self):
        world = VirtualWorld([Zone("a", 5, 10), Zone("b", 5, 10)])
        z1 = world.place(PlayerSession("p1", start=0))
        z2 = world.place(PlayerSession("p2", start=0))
        assert {z1.name, z2.name} == {"a", "b"}

    def test_rejection_counted_when_full(self):
        world = VirtualWorld([Zone("a", 1, 1)])
        world.place(PlayerSession("p1", start=0))
        assert world.place(PlayerSession("p2", start=0)) is None
        assert world.rejected_joins == 1

    def test_remove_populated_zone_rejected(self):
        world = VirtualWorld([Zone("a", 5, 10)])
        world.place(PlayerSession("p", start=0))
        with pytest.raises(RuntimeError):
            world.remove_zone("a")

    def test_duplicate_zone_rejected(self):
        world = VirtualWorld([Zone("a", 5, 10)])
        with pytest.raises(ValueError):
            world.add_zone(Zone("a", 5, 10))

    def test_worst_tick(self):
        world = VirtualWorld([Zone("a", 1, 10), Zone("b", 100, 110)])
        for i in range(5):
            world.zones["a"].try_join(PlayerSession(f"p{i}", start=0))
        assert world.worst_tick_hz() < world.zones["b"].tick_hz


class TestPopulationDynamics:
    def test_diurnal_peak_to_trough(self, rng):
        trace = simulate_population(rng, genre="mmorpg", days=5,
                                    base_arrivals_per_s=0.05)
        assert trace.peak_to_trough > 1.5

    def test_growth_sign_follows_genre(self):
        streams = RandomStreams(seed=19)
        growing = simulate_population(streams.get("g"), genre="social",
                                      days=28, base_arrivals_per_s=0.05)
        declining = simulate_population(streams.get("d"), genre="declining",
                                        days=28, base_arrivals_per_s=0.05)
        assert growing.long_term_growth() > declining.long_term_growth()

    def test_unknown_genre_rejected(self, rng):
        with pytest.raises(KeyError):
            simulate_population(rng, genre="idle-clicker")

    def test_daily_peaks_length(self, rng):
        trace = simulate_population(rng, days=4,
                                    base_arrivals_per_s=0.02)
        assert len(trace.daily_peaks()) == 4

    def test_all_genres_simulate(self, rng):
        for genre in GENRE_PROFILES:
            trace = simulate_population(rng, genre=genre, days=2,
                                        base_arrivals_per_s=0.02)
            assert trace.peak > 0


class TestPredictors:
    def test_last_value(self):
        assert LastValuePredictor().predict([1, 2, 3]) == 3
        assert LastValuePredictor().predict([]) == 0.0

    def test_moving_average(self):
        predictor = MovingAveragePredictor(window=2)
        assert predictor.predict([1, 2, 4]) == 3.0

    def test_trend_extrapolates(self):
        predictor = TrendPredictor(window=4)
        assert predictor.predict([0, 10, 20, 30], horizon=1) == (
            pytest.approx(40.0))
        assert predictor.predict([0, 10, 20, 30], horizon=3) == (
            pytest.approx(60.0))

    def test_trend_never_negative(self):
        predictor = TrendPredictor(window=3)
        assert predictor.predict([30, 20, 10], horizon=5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)
        with pytest.raises(ValueError):
            TrendPredictor(window=1)


class TestProvisioning:
    def _ramp_demand(self):
        # A smooth diurnal-like ramp: 0 -> 2000 -> 0 players over 200 steps.
        x = np.linspace(0, np.pi, 200)
        return 2000 * np.sin(x)

    def test_trend_beats_last_value_on_ramps(self):
        demand = self._ramp_demand()
        last = run_provisioning(demand, LastValuePredictor(),
                                provisioning_delay_steps=4)
        trend = run_provisioning(demand, TrendPredictor(window=6),
                                 provisioning_delay_steps=4)
        assert trend.unserved_player_time < last.unserved_player_time

    def test_static_peak_provisioning_never_underprovisions(self):
        demand = self._ramp_demand()
        static = static_provisioning(demand, percentile=100)
        assert static.underprovisioned_fraction == 0.0

    def test_elastic_cheaper_than_static_peak(self):
        demand = self._ramp_demand()
        static = static_provisioning(demand, percentile=100)
        elastic = run_provisioning(demand, TrendPredictor(window=6),
                                   provisioning_delay_steps=2)
        assert elastic.server_hours < static.server_hours

    def test_under_over_provisioning_accounting(self):
        demand = np.array([0.0, 500.0, 500.0, 0.0])
        result = run_provisioning(demand, LastValuePredictor(),
                                  players_per_server=100,
                                  provisioning_delay_steps=1,
                                  headroom=1.0)
        # Step 1: fleet still at min size -> underprovisioned.
        assert result.underprovisioned_fraction > 0
        assert result.unserved_player_time > 0
        assert result.overprovisioned_capacity_time > 0

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            run_provisioning([1.0], LastValuePredictor(), headroom=0.5)
        with pytest.raises(ValueError):
            run_provisioning([1.0], LastValuePredictor(),
                             players_per_server=0)

    def test_mean_utilization_bounded(self):
        demand = self._ramp_demand()
        result = run_provisioning(demand, MovingAveragePredictor())
        assert 0 <= result.mean_utilization <= 1
