"""Tests for the Yardstick benchmark ([84])."""

import pytest

from repro.mmog.world import Zone
from repro.mmog.yardstick import capacity_study, run_yardstick


class TestYardstick:
    def test_curve_degrades_past_soft_capacity(self):
        zone = Zone("srv", soft_capacity=50, hard_capacity=100,
                    base_tick_hz=20.0)
        report = run_yardstick(zone, max_bots=120,
                               playability_floor_hz=10.0)
        assert report.degradation_onset == 51
        curve = dict(report.curve())
        assert curve[50] == 20.0
        assert curve[100] < 20.0

    def test_max_playable_between_soft_and_hard(self):
        zone = Zone("srv", soft_capacity=50, hard_capacity=100,
                    base_tick_hz=20.0)
        report = run_yardstick(zone, max_bots=120,
                               playability_floor_hz=10.0)
        assert 50 <= report.max_playable_population < 100

    def test_hard_capacity_refusal_recorded(self):
        zone = Zone("srv", soft_capacity=10, hard_capacity=20)
        report = run_yardstick(zone, max_bots=50)
        assert report.hard_capacity_hit
        assert report.samples[-1].joined is False

    def test_no_degradation_below_soft(self):
        zone = Zone("srv", soft_capacity=200, hard_capacity=300)
        report = run_yardstick(zone, max_bots=100)
        assert report.degradation_onset is None
        assert report.max_playable_population == 100

    def test_validation(self):
        zone = Zone("srv", soft_capacity=10, hard_capacity=20)
        with pytest.raises(ValueError):
            run_yardstick(zone, max_bots=0)

    def test_capacity_study_scales(self):
        rows = capacity_study([20, 50, 100])
        playable = [r["max_playable"] for r in rows]
        assert playable == sorted(playable)
        for row in rows:
            # Real playable capacity exceeds nominal but not by the full
            # hard factor — degradation bites first.
            assert row["nominal_capacity"] <= row["max_playable"]
            assert row["max_playable"] < row["nominal_capacity"] * 1.5
