"""Tests for RTS scalability, social networks, toxicity, and PGCG."""

import numpy as np
import pytest

from repro.mmog import (
    AreaOfSimulation,
    MirrorOffload,
    PointOfInterest,
    RTSWorkload,
    ToxicityDetector,
    build_interaction_graph,
    generate_chat,
    generate_puzzles,
    matchmaking_quality,
    puzzle_difficulty,
    rts_frame_cost,
    rtsenv_sweep,
)
from repro.mmog.pgcg import SOLVED, generation_rejection_rate, scramble
from repro.mmog.rts import replay_derived_workload
from repro.mmog.social import CoPlayRecord, generate_coplay
from repro.sim import RandomStreams


@pytest.fixture
def rng():
    return RandomStreams(seed=43).get("mmog2")


class TestRTSenv:
    def test_quadratic_wall(self):
        """Uniform-fidelity cost grows superlinearly — the RTSenv finding
        that naive scaling fails."""
        rows = rtsenv_sweep([10, 100, 1000])
        costs = [r["frame_cost"] for r in rows]
        assert costs[1] / costs[0] > 10      # superlinear
        assert costs[2] / costs[1] > 10

    def test_playability_threshold_located(self):
        rows = rtsenv_sweep([10, 50, 100, 500, 2000])
        playable = [bool(r["playable"]) for r in rows]
        assert playable[0] is True
        assert playable[-1] is False
        # Monotone: once unplayable, stays unplayable.
        first_fail = playable.index(False)
        assert all(not p for p in playable[first_fail:])

    def test_aos_speedup_on_replay_workload(self, rng):
        """Area of Simulation wins big when most entities are background."""
        workload = replay_derived_workload(rng)
        aos = AreaOfSimulation(workload)
        assert aos.speedup > 5.0

    def test_aos_no_gain_for_single_micromanaged_melee(self):
        workload = RTSWorkload(
            pois=[PointOfInterest("all", entities=200, micromanaged=True)],
            background_entities=0)
        aos = AreaOfSimulation(workload)
        assert aos.speedup == pytest.approx(1.0)

    def test_aos_supports_more_entities(self):
        workload = RTSWorkload(
            pois=[PointOfInterest("battle", entities=30)],
            background_entities=500)
        aos = AreaOfSimulation(workload)
        supported = aos.max_supported_entities(budget=1.0, frame_hz=30)
        assert supported > 500

    def test_mirror_offload_pays_for_heavy_frames(self):
        mirror = MirrorOffload(device_speed=1.0, cloud_speed=10.0,
                               rtt_s=0.05)
        heavy_cost = 1.0
        fraction, best_time = mirror.best_offload(heavy_cost)
        assert fraction > 0.5
        assert best_time < mirror.frame_time(heavy_cost, 0.0)

    def test_mirror_offload_useless_for_light_frames(self):
        mirror = MirrorOffload(device_speed=1.0, cloud_speed=10.0,
                               rtt_s=0.5)
        light_cost = 0.01
        fraction, _ = mirror.best_offload(light_cost)
        assert fraction == pytest.approx(0.0)

    def test_mirror_fraction_validation(self):
        with pytest.raises(ValueError):
            MirrorOffload().frame_time(1.0, 1.5)


class TestSocialNetworks:
    def test_planted_groups_recovered(self, rng):
        records = generate_coplay(rng, n_players=60, n_matches=400,
                                  n_groups=6, social_bias=0.9)
        graph = build_interaction_graph(records)
        communities = graph.communities()
        big = [c for c in communities if len(c) >= 5]
        assert len(big) >= 4  # most planted groups found

    def test_strong_ties_form_under_bias(self, rng):
        records = generate_coplay(rng, n_matches=300, social_bias=0.9)
        graph = build_interaction_graph(records)
        assert len(graph.strong_ties(min_weight=3)) > 0

    def test_random_play_has_weak_ties(self, rng):
        records = generate_coplay(rng, n_players=80, n_matches=150,
                                  social_bias=0.0)
        graph = build_interaction_graph(records)
        assert len(graph.strong_ties(min_weight=5)) == 0

    def test_suggest_teammates_prefers_strong_ties(self):
        graph = build_interaction_graph([
            CoPlayRecord(0, ("a", "b")),
            CoPlayRecord(1, ("a", "b")),
            CoPlayRecord(2, ("a", "c")),
        ])
        assert graph.suggest_teammates("a", k=2) == ["b", "c"]

    def test_suggest_includes_friends_of_friends(self):
        graph = build_interaction_graph([
            CoPlayRecord(0, ("a", "b")),
            CoPlayRecord(1, ("b", "c")),
        ])
        assert graph.suggest_teammates("a", k=3) == ["b", "c"]

    def test_unknown_player_suggestions_empty(self):
        graph = build_interaction_graph([])
        assert graph.suggest_teammates("ghost") == []

    def test_matchmaking_quality_metric(self, rng):
        records = generate_coplay(rng, n_matches=300, social_bias=0.9)
        graph = build_interaction_graph(records)
        social_party = graph.suggest_teammates("player-000", k=3)
        social_party = ["player-000"] + social_party
        random_party = ["player-000", "player-020", "player-040",
                        "player-055"]
        assert matchmaking_quality(graph, [social_party]) > (
            matchmaking_quality(graph, [random_party]))

    def test_dedup_within_match(self):
        graph = build_interaction_graph([CoPlayRecord(0, ("a", "a", "b"))])
        assert graph.n_players == 2
        assert graph.tie_strength("a", "b") == 1


class TestToxicity:
    def test_detector_catches_planted_toxicity(self, rng):
        messages = generate_chat(rng, n_messages=500)
        detector = ToxicityDetector(threshold=0.45)
        metrics = detector.evaluate(messages)
        assert metrics["precision"] > 0.9  # friendly chat never flagged
        assert metrics["recall"] > 0.5

    def test_friendly_messages_score_zero(self):
        from repro.mmog.toxicity import ChatMessage
        detector = ToxicityDetector()
        msg = ChatMessage(author="a", text="good game well played", time=0)
        assert detector.score(msg) == 0.0

    def test_shouting_amplifies(self):
        from repro.mmog.toxicity import ChatMessage
        detector = ToxicityDetector()
        quiet = ChatMessage(author="a", text="my team is garbage", time=0)
        loud = ChatMessage(author="b", text="MY TEAM IS GARBAGE", time=0)
        assert detector.score(loud) > detector.score(quiet)

    def test_repeat_offenders_found(self, rng):
        messages = generate_chat(rng, n_players=10, n_messages=600,
                                 toxic_player_fraction=0.2,
                                 toxic_message_rate=0.8)
        detector = ToxicityDetector(threshold=0.45)
        offenders = detector.repeat_offenders(messages, min_toxic=3)
        truly_toxic = {m.author for m in messages if m.toxic}
        assert offenders
        assert set(offenders) <= truly_toxic

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ToxicityDetector(threshold=0)

    def test_evaluate_requires_labels(self):
        from repro.mmog.toxicity import ChatMessage
        detector = ToxicityDetector()
        with pytest.raises(ValueError):
            detector.evaluate([ChatMessage("a", "hi", 0.0)])


class TestPGCG:
    def test_solved_difficulty_zero(self):
        assert puzzle_difficulty(SOLVED) == 0

    def test_one_move_difficulty(self):
        board = list(SOLVED)
        board[8], board[7] = board[7], board[8]
        assert puzzle_difficulty(tuple(board)) == 1

    def test_invalid_board_rejected(self):
        with pytest.raises(ValueError):
            puzzle_difficulty((1, 1, 2, 3, 4, 5, 6, 7, 8))

    def test_scramble_solvable(self, rng):
        for _ in range(5):
            board = scramble(rng, walk_length=12)
            assert puzzle_difficulty(board, max_depth=14) is not None

    def test_generated_puzzles_in_band(self, rng):
        puzzles = generate_puzzles(rng, count=5, difficulty_band=(4, 10))
        assert len(puzzles) == 5
        for p in puzzles:
            assert 4 <= p.difficulty <= 10
            assert not p.solved

    def test_rejection_rate_positive(self, rng):
        rate = generation_rejection_rate(rng, (6, 10), samples=50)
        assert 0 < rate < 1

    def test_invalid_band(self, rng):
        with pytest.raises(ValueError):
            generate_puzzles(rng, count=1, difficulty_band=(5, 3))
