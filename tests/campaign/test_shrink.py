"""End-to-end seeded-bug test: campaign catches the unfenced-failover
bug, the shrinker minimizes it, and the repro file replays exactly."""

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    Episode,
    FaultSchedule,
    OracleStack,
    generate_schedules,
    load_repro,
    replay_repro,
    repro_dict,
    shrink_schedule,
)
from repro.campaign.cli import main as campaign_main

#: The recipe that plants the bug: a failover campaign where the new
#: leader never fences the old one. Schedule #9 of this campaign
#: exercises a partition + heal and trips the split-brain oracles.
BUGGY_KWARGS = {"fence_on_failover": False}
BUGGY_CONFIG = dict(root_seed=2, n_schedules=10, workers=1,
                    worlds=("failover",), double_run=False,
                    extra_world_kwargs=BUGGY_KWARGS)


def failing_schedule():
    schedules = generate_schedules(CampaignConfig(**BUGGY_CONFIG))
    stack = OracleStack(double_run=False, extra_world_kwargs=BUGGY_KWARGS)
    for index, schedule in enumerate(schedules):
        verdict = stack.evaluate(schedule, index=index)
        if not verdict.passed:
            return schedule, verdict
    raise AssertionError("seeded campaign found no failure")


class TestShrinkSchedule:
    def test_seeded_bug_shrinks_to_minimal_schedule(self):
        schedule, verdict = failing_schedule()
        assert "no_split_brain" in verdict.failures
        result = shrink_schedule(schedule,
                                 extra_world_kwargs=BUGGY_KWARGS)
        # Acceptance bar: at most three episodes survive shrinking.
        assert 1 <= len(result.minimal.episodes) <= 3
        assert len(result.minimal.episodes) <= len(schedule.episodes)
        assert result.executions <= 150
        assert "no_split_brain" in result.failures
        # The minimal schedule still fails exactly as targeted.
        minimal_verdict = OracleStack(
            double_run=False,
            extra_world_kwargs=BUGGY_KWARGS).evaluate(result.minimal)
        assert set(result.failures) <= set(minimal_verdict.failures)
        assert minimal_verdict.trace_digest == result.trace_digest

    def test_passing_schedule_refuses_to_shrink(self):
        schedule = FaultSchedule(
            world="partition", seed=3, sim_budget_s=240.0,
            episodes=(Episode(kind="partition", start_s=20.0,
                              end_s=40.0),))
        with pytest.raises(ValueError, match="does not fail"):
            shrink_schedule(schedule)

    def test_unrelated_target_failures_rejected(self):
        schedule, _ = failing_schedule()
        with pytest.raises(ValueError, match="not among"):
            shrink_schedule(schedule, extra_world_kwargs=BUGGY_KWARGS,
                            target_failures=["determinism"])


class TestReproFiles:
    def test_repro_round_trip_reproduces_exactly(self):
        schedule, verdict = failing_schedule()
        result = shrink_schedule(schedule,
                                 extra_world_kwargs=BUGGY_KWARGS)
        data = repro_dict(result.minimal, result.failures,
                          extra_world_kwargs=BUGGY_KWARGS,
                          trace_digest=result.trace_digest)
        loaded = load_repro(json.dumps(data))
        outcome = replay_repro(loaded)
        assert outcome.reproduced
        assert outcome.trace_digest_matches is True
        assert outcome.expected_failures == result.failures
        assert "reproduced" in outcome.describe()

    def test_repro_detects_wrong_expectations(self):
        schedule = FaultSchedule(
            world="partition", seed=3, sim_budget_s=240.0,
            episodes=(Episode(kind="partition", start_s=20.0,
                              end_s=40.0),))
        data = repro_dict(schedule, ["no_split_brain"])
        outcome = replay_repro(data)
        assert not outcome.reproduced
        assert "NOT reproduced" in outcome.describe()

    def test_corrupt_repro_file_rejected(self):
        schedule, _ = failing_schedule()
        data = repro_dict(schedule, ["no_split_brain"])
        data["schedule"]["seed"] += 1  # tamper without re-digesting
        with pytest.raises(ValueError, match="digest mismatch"):
            replay_repro(data)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a campaign repro"):
            load_repro(json.dumps({"format": "something/else"}))


class TestCli:
    def test_run_shrink_repro_workflow(self, tmp_path):
        out_dir = tmp_path / "failures"
        report = tmp_path / "report.json"
        code = campaign_main([
            "run", "--seed", "2", "--schedules", "10",
            "--worlds", "failover", "--no-double-run",
            "--world-kwarg", "fence_on_failover=false",
            "--report", str(report), "--out-dir", str(out_dir)])
        assert code == 1  # failures found
        repro_files = sorted(out_dir.glob("failure-*.json"))
        assert repro_files
        assert json.loads(report.read_text())["n_failed"] >= 1

        minimal = tmp_path / "minimal.json"
        assert campaign_main(["shrink", "--input", str(repro_files[0]),
                              "--out", str(minimal)]) == 0
        minimal_data = load_repro(minimal.read_text())
        assert len(minimal_data["schedule"]["episodes"]) <= 3

        assert campaign_main(["repro", str(minimal)]) == 0

    def test_clean_run_exits_zero(self, tmp_path):
        code = campaign_main([
            "run", "--seed", "0", "--schedules", "2",
            "--worlds", "partition", "--no-double-run"])
        assert code == 0
