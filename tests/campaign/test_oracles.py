"""Tests for the oracle stack and schedule execution."""

import pytest

from repro.campaign import (
    Episode,
    FaultSchedule,
    Oracle,
    OracleStack,
    RunVerdict,
    execute_schedule,
    merge_metrics,
    standard_oracles,
)


def quick_schedule(world="partition", seed=3):
    episodes = (Episode(kind="partition", start_s=20.0, end_s=40.0),)
    return FaultSchedule(world=world, seed=seed, sim_budget_s=240.0,
                         episodes=episodes)


class TestStandardOracles:
    def test_catalog_names(self):
        names = [o.name for o in standard_oracles()]
        assert names == ["invariants_hold", "run_completes",
                         "no_lost_tasks", "at_most_one_leader",
                         "no_split_brain"]

    def test_world_filtering(self):
        partition = {o.name for o in standard_oracles("partition")}
        failover = {o.name for o in standard_oracles("failover")}
        assert "at_most_one_leader" not in partition
        assert "no_split_brain" not in partition
        assert {"at_most_one_leader", "no_split_brain"} <= failover

    def test_applies_to(self):
        anywhere = Oracle("o", lambda result: None)
        assert anywhere.applies_to("partition")
        only_failover = Oracle("o", lambda result: None,
                               worlds=("failover",))
        assert not only_failover.applies_to("partition")


class TestExecuteSchedule:
    def test_same_schedule_same_trace_and_result(self):
        schedule = quick_schedule()
        first = execute_schedule(schedule)
        second = execute_schedule(schedule)
        assert first.trace_digest == second.trace_digest
        assert first.trace_events == second.trace_events
        assert first.result == second.result
        assert first.metrics == second.metrics

    def test_extra_kwargs_plant_the_fencing_bug(self):
        schedule = FaultSchedule(
            world="failover", seed=3, sim_budget_s=240.0,
            episodes=(Episode(kind="partition", start_s=30.0,
                              end_s=80.0),))
        clean = execute_schedule(schedule)
        buggy = execute_schedule(
            schedule, extra_world_kwargs={"fence_on_failover": False})
        assert clean.result["split_brain_writes"] == 0
        assert buggy.result["split_brain_writes"] > 0


class TestOracleStack:
    def test_clean_partition_schedule_passes(self):
        stack = OracleStack(double_run=False)
        verdict = stack.evaluate(quick_schedule(), index=5)
        assert verdict.passed
        assert verdict.failures == ()
        assert verdict.index == 5
        assert verdict.world == "partition"
        assert verdict.schedule_digest == quick_schedule().digest()
        assert verdict.summary["all_done"] is True

    def test_double_run_passes_on_deterministic_world(self):
        stack = OracleStack(double_run=True)
        verdict = stack.evaluate(quick_schedule())
        assert verdict.passed

    def test_failing_oracle_names_and_details(self):
        def always_fails(result):
            return "synthetic failure"

        stack = OracleStack(
            oracles=(Oracle("synthetic", always_fails),),
            double_run=False)
        verdict = stack.evaluate(quick_schedule())
        assert not verdict.passed
        assert verdict.failures == ("synthetic",)
        assert verdict.failure_details["synthetic"] == "synthetic failure"

    def test_seeded_fencing_bug_fails_failover_oracles(self):
        schedule = FaultSchedule(
            world="failover", seed=3, sim_budget_s=240.0,
            episodes=(Episode(kind="partition", start_s=30.0,
                              end_s=80.0),))
        stack = OracleStack(
            double_run=False,
            extra_world_kwargs={"fence_on_failover": False})
        verdict = stack.evaluate(schedule)
        assert not verdict.passed
        assert "no_split_brain" in verdict.failures
        assert "invariants_hold" in verdict.failures

    def test_verdict_round_trips_through_dict(self):
        stack = OracleStack(double_run=False)
        verdict = stack.evaluate(quick_schedule(), index=7)
        assert RunVerdict.from_dict(verdict.as_dict()) == verdict


class TestMergeMetrics:
    def test_merge_is_order_insensitive(self):
        a = {"x": {"type": "counter", "total": 2, "by_key": {"k": 2}},
             "y": {"type": "series", "count": 3}}
        b = {"x": {"type": "counter", "total": 5, "by_key": {"k": 1,
                                                             "j": 4}},
             "z": {"type": "counter", "total": 1}}
        merged_ab = merge_metrics([a, b])
        merged_ba = merge_metrics([b, a])
        assert merged_ab == merged_ba
        assert merged_ab["x"]["total"] == 7
        assert merged_ab["x"]["by_key"] == {"j": 4, "k": 2 + 1}
        assert merged_ab["y"]["count"] == 3
        assert merged_ab["z"]["total"] == 1

    def test_merge_of_nothing_is_empty(self):
        assert merge_metrics([]) == {}
