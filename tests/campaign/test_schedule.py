"""Tests for fault-schedule serialization, identity, and generation."""

import json

import pytest

from repro.campaign import (
    EPISODE_KINDS,
    Episode,
    FaultSchedule,
    KINDS_BY_WORLD,
    ScheduleEnvelope,
    derive_seed,
    generate_schedule,
    normalize_episodes,
)
from repro.sim import RandomStreams


def episode(kind="partition", start=10.0, end=20.0, **params):
    defaults = {"loss": {"rate": 0.1}, "burst": {"fraction": 0.3},
                "overload": {"factor": 2.0}}
    merged = dict(defaults.get(kind, {}))
    merged.update(params)
    return Episode(kind=kind, start_s=start, end_s=end, params=merged)


class TestEpisode:
    def test_validation_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            episode(start=20.0, end=10.0)
        with pytest.raises(ValueError):
            episode(start=-1.0, end=10.0)
        with pytest.raises(ValueError):
            episode(start=10.0, end=10.0)

    def test_validation_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Episode(kind="meteor", start_s=0.0, end_s=1.0)

    @pytest.mark.parametrize("kind,params", [
        ("partition", {"direction": "sideways"}),
        ("gray", {"role": "janitor"}),
        ("loss", {"rate": 1.5}),
        ("loss", {}),
        ("burst", {"fraction": 0.0}),
        ("overload", {"factor": 0.5}),
    ])
    def test_validation_rejects_bad_params(self, kind, params):
        with pytest.raises(ValueError):
            Episode(kind=kind, start_s=0.0, end_s=1.0, params=params)

    def test_round_trips_through_dict(self):
        for kind in EPISODE_KINDS:
            original = episode(kind=kind)
            assert Episode.from_dict(original.as_dict()) == original


class TestNormalizeEpisodes:
    def test_sorts_by_start(self):
        late = episode(start=50.0, end=60.0)
        early = episode(kind="gray", start=5.0, end=15.0)
        assert normalize_episodes([late, early]) == (early, late)

    def test_clips_overlapping_partitions(self):
        a = episode(start=10.0, end=30.0)
        b = episode(start=20.0, end=40.0)
        out = normalize_episodes([a, b])
        assert out[0] == a
        assert out[1].start_s == 30.0 and out[1].end_s == 40.0

    def test_drops_swallowed_exclusive_episodes(self):
        a = episode(kind="crash", start=10.0, end=40.0)
        b = episode(kind="crash", start=15.0, end=35.0)
        assert normalize_episodes([a, b]) == (a,)

    def test_overlap_allowed_for_additive_kinds(self):
        a = episode(kind="gray", start=10.0, end=30.0)
        b = episode(kind="gray", start=20.0, end=40.0)
        assert normalize_episodes([a, b]) == (a, b)

    def test_crash_and_partition_clip_independently(self):
        part = episode(start=10.0, end=30.0)
        crash = episode(kind="crash", start=15.0, end=20.0)
        assert normalize_episodes([part, crash]) == (part, crash)


class TestFaultSchedule:
    def test_rejects_unknown_world(self):
        with pytest.raises(ValueError):
            FaultSchedule(world="narnia", seed=0, sim_budget_s=100.0)

    def test_rejects_world_incompatible_kind(self):
        with pytest.raises(ValueError):
            FaultSchedule(world="failover", seed=0, sim_budget_s=100.0,
                          episodes=(episode(kind="crash"),))

    def test_json_round_trip_preserves_digest(self):
        schedule = FaultSchedule(
            world="partition", seed=42, sim_budget_s=300.0,
            episodes=(episode(), episode(kind="loss", start=50.0,
                                         end=80.0)))
        text = schedule.dumps()
        loaded = FaultSchedule.loads(text)
        assert loaded == schedule
        assert loaded.digest() == schedule.digest()

    def test_canonical_json_is_key_sorted_and_compact(self):
        schedule = FaultSchedule(world="partition", seed=1,
                                 sim_budget_s=60.0)
        canonical = schedule.canonical_json()
        assert ": " not in canonical
        assert json.loads(canonical)["world"] == "partition"

    def test_digest_changes_with_any_field(self):
        base = FaultSchedule(world="partition", seed=1, sim_budget_s=60.0,
                             episodes=(episode(),))
        assert base.digest() != FaultSchedule(
            world="partition", seed=2, sim_budget_s=60.0,
            episodes=(episode(),)).digest()
        assert base.digest() != FaultSchedule(
            world="partition", seed=1, sim_budget_s=60.0,
            episodes=(episode(end=21.0),)).digest()

    def test_world_kwargs_cover_every_knob_explicitly(self):
        schedule = FaultSchedule(world="partition", seed=9,
                                 sim_budget_s=120.0)
        kwargs = schedule.to_world_kwargs()
        assert kwargs["partition_episodes"] == []
        assert kwargs["crash_schedule"] == []
        assert kwargs["gray_spans"] == {"worker": [], "scheduler": []}
        assert kwargs["loss_episodes"] == []
        assert kwargs["burst_episodes"] == []
        assert kwargs["overload_spans"] == []
        assert kwargs["invariant_halt"] is False
        assert kwargs["seed"] == 9
        assert kwargs["sim_budget_s"] == 120.0

    def test_world_kwargs_translate_each_kind(self):
        schedule = FaultSchedule(
            world="partition", seed=0, sim_budget_s=300.0,
            episodes=(
                episode(start=10.0, end=20.0, direction="inbound"),
                episode(kind="gray", start=5.0, end=15.0,
                        role="scheduler"),
                episode(kind="crash", start=30.0, end=36.0),
                episode(kind="loss", start=1.0, end=2.0, rate=0.2),
                episode(kind="burst", start=3.0, end=4.0, fraction=0.5),
                episode(kind="overload", start=6.0, end=7.0, factor=1.5),
            ))
        kwargs = schedule.to_world_kwargs()
        [cut] = kwargs["partition_episodes"]
        assert (cut.start_s, cut.end_s, cut.isolate, cut.direction) == \
            (10.0, 20.0, "minority", "inbound")
        assert kwargs["gray_spans"] == {"worker": [],
                                        "scheduler": [(5.0, 15.0)]}
        assert kwargs["crash_schedule"] == [(30.0, 6.0)]
        assert kwargs["loss_episodes"] == [(1.0, 2.0, 0.2)]
        assert kwargs["burst_episodes"] == [(3.0, 4.0, 0.5)]
        assert kwargs["overload_spans"] == [(6.0, 7.0, 1.5)]

    def test_failover_world_kwargs_target_old_leader(self):
        schedule = FaultSchedule(
            world="failover", seed=0, sim_budget_s=300.0,
            episodes=(episode(start=40.0, end=90.0),
                      episode(kind="gray", start=35.0, end=80.0)))
        kwargs = schedule.to_world_kwargs()
        assert kwargs["partition_episodes"][0].isolate == "old-leader"
        assert kwargs["gray_spans"] == [(35.0, 80.0)]
        assert "crash_schedule" not in kwargs


class TestEnvelope:
    def test_rejects_unsupported_kind_for_world(self):
        with pytest.raises(ValueError):
            ScheduleEnvelope(world="failover",
                             kind_weights=(("crash", 1.0),))

    def test_for_world_drops_unsupported_kinds(self):
        envelope = ScheduleEnvelope.for_world("failover")
        kinds = {kind for kind, _ in envelope.kind_weights}
        assert "crash" not in kinds
        assert kinds <= KINDS_BY_WORLD["failover"]


class TestGeneration:
    def test_same_stream_same_schedule(self):
        envelope = ScheduleEnvelope.for_world("partition")
        a = generate_schedule(RandomStreams(7), envelope, index=3, seed=11)
        b = generate_schedule(RandomStreams(7), envelope, index=3, seed=11)
        assert a == b
        assert a.digest() == b.digest()

    def test_different_indices_differ(self):
        streams = RandomStreams(7)
        envelope = ScheduleEnvelope.for_world("partition")
        a = generate_schedule(streams, envelope, index=0, seed=1)
        b = generate_schedule(streams, envelope, index=1, seed=1)
        assert a.digest() != b.digest()

    def test_generated_schedules_are_valid_and_bounded(self):
        streams = RandomStreams(13)
        for world in ("partition", "failover"):
            envelope = ScheduleEnvelope.for_world(world)
            for index in range(20):
                schedule = generate_schedule(
                    streams, envelope, index=index,
                    seed=derive_seed(13, index))
                assert 1 <= len(schedule.episodes) <= envelope.max_episodes
                allowed = KINDS_BY_WORLD[world]
                for ep in schedule.episodes:
                    assert ep.kind in allowed
                    assert 0 <= ep.start_s < ep.end_s
                # Round-trip through JSON preserves identity.
                assert FaultSchedule.loads(
                    schedule.dumps()).digest() == schedule.digest()

    def test_derive_seed_is_stable_and_spread(self):
        seeds = [derive_seed(0, i) for i in range(50)]
        assert seeds == [derive_seed(0, i) for i in range(50)]
        assert len(set(seeds)) == 50
        assert all(0 <= s < 2 ** 31 for s in seeds)
