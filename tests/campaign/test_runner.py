"""Shard-invariance tests: verdicts are a pure function of the config,
never of the worker count."""

from repro.campaign import (
    CampaignConfig,
    CampaignReport,
    generate_schedules,
    run_campaign,
)


def small_config(**overrides):
    base = dict(root_seed=5, n_schedules=6, workers=1,
                worlds=("partition", "failover"), double_run=False)
    base.update(overrides)
    return CampaignConfig(**base)


class TestGenerateSchedules:
    def test_round_robins_worlds(self):
        schedules = generate_schedules(small_config())
        assert [s.world for s in schedules] == \
            ["partition", "failover"] * 3

    def test_regeneration_is_identical(self):
        first = generate_schedules(small_config())
        second = generate_schedules(small_config())
        assert [s.digest() for s in first] == \
            [s.digest() for s in second]

    def test_seed_changes_everything(self):
        a = generate_schedules(small_config())
        b = generate_schedules(small_config(root_seed=6))
        assert all(x.digest() != y.digest() for x, y in zip(a, b))


class TestShardInvariance:
    def test_verdicts_and_metrics_identical_1_vs_3_workers(self):
        sequential = run_campaign(small_config(workers=1))
        sharded = run_campaign(small_config(workers=3))
        assert [v.as_dict() for v in sequential.verdicts] == \
            [v.as_dict() for v in sharded.verdicts]
        assert sequential.merged_metrics == sharded.merged_metrics
        assert sequential.n_passed == len(sequential.verdicts)

    def test_more_workers_than_schedules(self):
        report = run_campaign(small_config(n_schedules=2, workers=8))
        assert len(report.verdicts) == 2
        assert [v.index for v in report.verdicts] == [0, 1]


class TestCampaignReport:
    def test_report_shape_and_summary(self):
        report = run_campaign(small_config(n_schedules=2))
        data = report.as_dict()
        assert data["format"] == "repro.campaign/report/1"
        assert data["n_passed"] + data["n_failed"] == 2
        assert len(data["verdicts"]) == 2
        text = report.format()
        assert "2 schedule(s)" in text
        assert "partition:" in text and "failover:" in text

    def test_failures_listed_in_format(self):
        config = small_config(
            root_seed=2, n_schedules=10, worlds=("failover",),
            extra_world_kwargs={"fence_on_failover": False})
        report = run_campaign(config)
        assert report.n_failed >= 1
        failing = report.failures()[0]
        assert "no_split_brain" in failing.failures
        assert f"FAIL #{failing.index}" in report.format()
        # The report dict round-trips losslessly through its verdicts.
        rebuilt = CampaignReport(
            root_seed=config.root_seed, n_schedules=config.n_schedules,
            workers=1, worlds=config.worlds, verdicts=report.verdicts,
            merged_metrics=report.merged_metrics)
        assert rebuilt.n_failed == report.n_failed
