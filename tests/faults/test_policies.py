"""Tests for the resilience policy combinators."""

import pytest

from repro.faults import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FaultInjectedError,
    Hedge,
    RetryPolicy,
    TimeoutExceeded,
    with_timeout,
)
from repro.sim import Environment, Interrupt, RandomStreams


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=5.0, jitter=0.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3, 4)] == [1, 2, 4, 5]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=10.0, jitter=0.2)
        rng = RandomStreams(3).get("jitter")
        delays = [policy.backoff_s(1, rng) for _ in range(200)]
        assert all(8.0 <= d <= 12.0 for d in delays)
        assert len(set(delays)) > 1

    def test_retries_until_success(self):
        env = Environment()
        state = {"fails_left": 2}
        result = {}

        def attempt():
            yield env.timeout(1.0)
            if state["fails_left"] > 0:
                state["fails_left"] -= 1
                raise FaultInjectedError("flaky")
            return "ok"

        def proc(env):
            policy = RetryPolicy(max_attempts=3, base_delay_s=1.0,
                                 multiplier=2.0, jitter=0.0)
            result["value"] = yield from policy.call(env, attempt)
            result["t"] = env.now
            result["retries"] = policy.retries

        env.process(proc(env))
        env.run()
        # 1s fail + 1s backoff + 1s fail + 2s backoff + 1s success.
        assert result == {"value": "ok", "t": 6.0, "retries": 2}

    def test_exhaustion_reraises(self):
        env = Environment()

        def attempt():
            yield env.timeout(1.0)
            raise FaultInjectedError("always")

        def proc(env):
            policy = RetryPolicy(max_attempts=2, base_delay_s=0.1,
                                 jitter=0.0)
            yield from policy.call(env, attempt)

        env.process(proc(env))
        with pytest.raises(FaultInjectedError):
            env.run()

    def test_non_transient_errors_not_retried(self):
        env = Environment()
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            yield env.timeout(1.0)
            raise KeyError("a real bug")

        def proc(env):
            yield from RetryPolicy(max_attempts=5).call(env, attempt)

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestWithTimeout:
    def test_fast_attempt_returns_value(self):
        env = Environment()
        result = {}

        def fast():
            yield env.timeout(1.0)
            return 99

        def proc(env):
            result["value"] = yield from with_timeout(env, fast(), 5.0)

        env.process(proc(env))
        env.run()
        assert result == {"value": 99}

    def test_slow_attempt_times_out(self):
        env = Environment()
        result = {}

        def slow():
            yield env.timeout(60.0)

        def proc(env):
            try:
                yield from with_timeout(env, slow(), 2.0)
            except TimeoutExceeded:
                result["t"] = env.now

        env.process(proc(env))
        env.run()
        assert result == {"t": 2.0}

    def test_abandoned_failure_does_not_crash_the_run(self):
        env = Environment()

        def doomed():
            yield env.timeout(10.0)
            raise FaultInjectedError("too late to matter")

        def proc(env):
            with pytest.raises(TimeoutExceeded):
                yield from with_timeout(env, doomed(), 2.0, cancel=False)

        env.process(proc(env))
        env.run()  # must not raise the abandoned FaultInjectedError

    def test_attempt_failure_propagates(self):
        env = Environment()

        def broken():
            yield env.timeout(1.0)
            raise ValueError("bad input")

        def proc(env):
            yield from with_timeout(env, broken(), 5.0)

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()


class TestCircuitBreaker:
    @staticmethod
    def _failing(env):
        def attempt():
            yield env.timeout(0.5)
            raise FaultInjectedError("down")
        return attempt

    def test_trips_open_after_threshold_and_recovers(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=2, cooldown_s=10.0)
        log = []

        def ok():
            yield env.timeout(0.5)
            return "fine"

        def proc(env):
            for _ in range(2):
                try:
                    yield from breaker.call(self._failing(env))
                except FaultInjectedError:
                    pass
            log.append(breaker.state)
            try:
                yield from breaker.call(self._failing(env))
            except CircuitOpenError:
                log.append("rejected")
            yield env.timeout(10.0)
            log.append(breaker.state)       # cooldown over: half-open
            value = yield from breaker.call(ok)
            log.append((value, breaker.state))

        env.process(proc(env))
        env.run()
        assert log == [BreakerState.OPEN, "rejected", BreakerState.HALF_OPEN,
                       ("fine", BreakerState.CLOSED)]
        assert breaker.rejections == 1
        assert breaker.opens == 1

    def test_half_open_failure_reopens(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, cooldown_s=5.0)

        def proc(env):
            try:
                yield from breaker.call(self._failing(env))
            except FaultInjectedError:
                pass
            yield env.timeout(5.0)
            assert breaker.state is BreakerState.HALF_OPEN
            try:
                yield from breaker.call(self._failing(env))
            except FaultInjectedError:
                pass
            assert breaker.state is BreakerState.OPEN

        env.process(proc(env))
        env.run()
        assert breaker.opens == 2

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CircuitBreaker(env, failure_threshold=0)


class TestHedge:
    def test_hedge_beats_straggling_primary(self):
        env = Environment()
        durations = iter([10.0, 1.0])
        result = {}

        def attempt():
            d = next(durations)
            yield env.timeout(d)
            return d

        def proc(env):
            hedge = Hedge(delay_s=2.0)
            result["value"] = yield from hedge.run(env, attempt)
            result["t"] = env.now
            result["wins"] = hedge.hedge_wins
            result["launched"] = hedge.launched

        env.process(proc(env))
        env.run()
        # Hedge launched at t=2, finishes at t=3, beating the 10s primary.
        assert result == {"value": 1.0, "t": 3.0, "wins": 1, "launched": 2}

    def test_fast_primary_needs_no_hedge(self):
        env = Environment()
        result = {}

        def attempt():
            yield env.timeout(1.0)
            return "primary"

        def proc(env):
            hedge = Hedge(delay_s=5.0)
            result["value"] = yield from hedge.run(env, attempt)
            result["hedges"] = hedge.hedges

        env.process(proc(env))
        env.run()
        assert result == {"value": "primary", "hedges": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            Hedge(delay_s=0.0)


class TestRetryBudget:
    def test_budget_stops_retrying_before_backoff_outlives_it(self):
        env = Environment()
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            yield env.timeout(1.0)
            raise FaultInjectedError("always")

        def proc(env):
            # Attempts cost 1s; backoffs 1s, 2s, 4s... With a 4s budget
            # the second backoff (elapsed 3s + 2s delay = 5s) is refused.
            policy = RetryPolicy(max_attempts=10, base_delay_s=1.0,
                                 multiplier=2.0, jitter=0.0,
                                 max_elapsed_s=4.0)
            try:
                yield from policy.call(env, attempt)
            finally:
                assert policy.exhausted == 1

        env.process(proc(env))
        with pytest.raises(FaultInjectedError):
            env.run()
        assert calls["n"] == 2
        assert env.now == 3.0  # gave up instead of sleeping past budget

    def test_budget_allows_retries_that_fit(self):
        env = Environment()
        state = {"fails_left": 2}
        result = {}

        def attempt():
            yield env.timeout(1.0)
            if state["fails_left"] > 0:
                state["fails_left"] -= 1
                raise FaultInjectedError("flaky")
            return "ok"

        def proc(env):
            policy = RetryPolicy(max_attempts=5, base_delay_s=1.0,
                                 multiplier=2.0, jitter=0.0,
                                 max_elapsed_s=60.0)
            result["value"] = yield from policy.call(env, attempt)
            result["retries"] = policy.retries

        env.process(proc(env))
        env.run()
        assert result == {"value": "ok", "retries": 2}

    def test_unbounded_budget_is_default(self):
        assert RetryPolicy().max_elapsed_s is None

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=-1.0)


class TestHalfOpenProbes:
    def test_half_open_admits_limited_concurrent_probes(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, cooldown_s=5.0,
                                 half_open_max=1)
        outcomes = {}

        def failing():
            yield env.timeout(0.5)
            raise FaultInjectedError("down")

        def slow_ok():
            yield env.timeout(2.0)
            return "recovered"

        def tripper(env):
            try:
                yield from breaker.call(failing)
            except FaultInjectedError:
                pass

        def probe(env, tag, start):
            yield env.timeout(start)
            try:
                outcomes[tag] = yield from breaker.call(slow_ok)
            except CircuitOpenError:
                outcomes[tag] = "rejected"

        env.process(tripper(env))
        # Both arrive during HALF_OPEN, while probe one is still in flight.
        env.process(probe(env, "first", 6.0))
        env.process(probe(env, "second", 6.5))
        env.run()
        # Only one concurrent probe allowed; the second is rejected even
        # though the breaker is HALF_OPEN, not OPEN.
        assert outcomes == {"first": "recovered", "second": "rejected"}
        assert breaker.rejections == 1
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_max_two_admits_two(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, cooldown_s=5.0,
                                 half_open_max=2)

        def failing():
            yield env.timeout(0.5)
            raise FaultInjectedError("down")

        def proc(env):
            try:
                yield from breaker.call(failing)
            except FaultInjectedError:
                pass
            yield env.timeout(5.0)
            assert breaker.state is BreakerState.HALF_OPEN
            assert breaker.allow()
            assert breaker.allow()
            assert not breaker.allow()

        env.process(proc(env))
        env.run()


class TestHedgeCancellation:
    def test_losers_are_cancelled_not_leaked(self):
        env = Environment()
        running = {"n": 0}
        interrupted = []

        def attempt():
            durations = [30.0, 20.0, 1.0]
            d = durations[min(running["n"], 2)]
            running["n"] += 1
            tag = running["n"]
            try:
                yield env.timeout(d)
                return tag
            except Interrupt as intr:
                interrupted.append((tag, str(intr.cause), env.now))
                raise

        def proc(env):
            hedge = Hedge(delay_s=2.0, max_hedges=2)
            value = yield from hedge.run(env, attempt)
            assert value == 3  # the third (fastest) attempt wins
            assert hedge.hedge_wins == 1
            assert hedge.launched == 3

        env.process(proc(env))
        env.run(until=10.0)
        # Both stragglers were interrupted the moment the winner finished
        # (t = 2 + 2 + 1 = 5), not left running to completion.
        assert sorted(interrupted) == [(1, "hedge-won", 5.0),
                                       (2, "hedge-won", 5.0)]
        assert env.now == 10.0

    def test_loser_failure_after_loss_does_not_crash_run(self):
        env = Environment()

        def fast_then_fail():
            order = {"n": 0}

            def factory():
                order["n"] += 1
                if order["n"] == 1:
                    return slow_failure()
                return quick_win()
            return factory

        def slow_failure():
            yield env.timeout(5.0)
            raise FaultInjectedError("too late anyway")

        def quick_win():
            yield env.timeout(0.5)
            return "ok"

        def proc(env):
            hedge = Hedge(delay_s=1.0)
            value = yield from hedge.run(env, fast_then_fail())
            assert value == "ok"

        env.process(proc(env))
        # Run past the loser's failure time: the defused failure of the
        # abandoned primary must not crash the simulation.
        env.run(until=20.0)


class TestJitterRequiresRng:
    """Jittered backoff without an rng is a refused configuration, not a
    silently-unjittered one (it would phase-lock retry storms while
    reporting a jittered setup)."""

    def test_backoff_with_jitter_and_no_rng_raises(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.1)
        with pytest.raises(ValueError, match="rng=None"):
            policy.backoff_s(1)

    def test_default_policy_requires_rng_too(self):
        # The default jitter is nonzero on purpose: opting out must be
        # explicit, never accidental.
        assert RetryPolicy().jitter > 0
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(1)

    def test_explicit_zero_jitter_is_deterministic_without_rng(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=8.0, jitter=0.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3, 4, 5)] \
            == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_with_named_stream_is_seeded(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.2)

        def draws():
            rng = RandomStreams(9).get("retry-jitter")
            return [policy.backoff_s(1, rng) for _ in range(5)]

        a, b = draws(), draws()
        assert a == b
        assert len(set(a)) > 1

    def test_call_combinator_propagates_the_requirement(self):
        env = Environment()

        def attempt():
            yield env.timeout(0.1)
            raise FaultInjectedError("flaky")

        def driver():
            policy = RetryPolicy(max_attempts=3, base_delay_s=0.5,
                                 jitter=0.1)
            yield from policy.call(env, attempt)   # no rng passed

        env.process(driver())
        with pytest.raises(ValueError, match="rng=None"):
            env.run()
