"""Tests for the resilience policy combinators."""

import pytest

from repro.faults import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FaultInjectedError,
    Hedge,
    RetryPolicy,
    TimeoutExceeded,
    with_timeout,
)
from repro.sim import Environment, RandomStreams


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=5.0, jitter=0.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3, 4)] == [1, 2, 4, 5]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=10.0, jitter=0.2)
        rng = RandomStreams(3).get("jitter")
        delays = [policy.backoff_s(1, rng) for _ in range(200)]
        assert all(8.0 <= d <= 12.0 for d in delays)
        assert len(set(delays)) > 1

    def test_retries_until_success(self):
        env = Environment()
        state = {"fails_left": 2}
        result = {}

        def attempt():
            yield env.timeout(1.0)
            if state["fails_left"] > 0:
                state["fails_left"] -= 1
                raise FaultInjectedError("flaky")
            return "ok"

        def proc(env):
            policy = RetryPolicy(max_attempts=3, base_delay_s=1.0,
                                 multiplier=2.0, jitter=0.0)
            result["value"] = yield from policy.call(env, attempt)
            result["t"] = env.now
            result["retries"] = policy.retries

        env.process(proc(env))
        env.run()
        # 1s fail + 1s backoff + 1s fail + 2s backoff + 1s success.
        assert result == {"value": "ok", "t": 6.0, "retries": 2}

    def test_exhaustion_reraises(self):
        env = Environment()

        def attempt():
            yield env.timeout(1.0)
            raise FaultInjectedError("always")

        def proc(env):
            policy = RetryPolicy(max_attempts=2, base_delay_s=0.1,
                                 jitter=0.0)
            yield from policy.call(env, attempt)

        env.process(proc(env))
        with pytest.raises(FaultInjectedError):
            env.run()

    def test_non_transient_errors_not_retried(self):
        env = Environment()
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            yield env.timeout(1.0)
            raise KeyError("a real bug")

        def proc(env):
            yield from RetryPolicy(max_attempts=5).call(env, attempt)

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestWithTimeout:
    def test_fast_attempt_returns_value(self):
        env = Environment()
        result = {}

        def fast():
            yield env.timeout(1.0)
            return 99

        def proc(env):
            result["value"] = yield from with_timeout(env, fast(), 5.0)

        env.process(proc(env))
        env.run()
        assert result == {"value": 99}

    def test_slow_attempt_times_out(self):
        env = Environment()
        result = {}

        def slow():
            yield env.timeout(60.0)

        def proc(env):
            try:
                yield from with_timeout(env, slow(), 2.0)
            except TimeoutExceeded:
                result["t"] = env.now

        env.process(proc(env))
        env.run()
        assert result == {"t": 2.0}

    def test_abandoned_failure_does_not_crash_the_run(self):
        env = Environment()

        def doomed():
            yield env.timeout(10.0)
            raise FaultInjectedError("too late to matter")

        def proc(env):
            with pytest.raises(TimeoutExceeded):
                yield from with_timeout(env, doomed(), 2.0, cancel=False)

        env.process(proc(env))
        env.run()  # must not raise the abandoned FaultInjectedError

    def test_attempt_failure_propagates(self):
        env = Environment()

        def broken():
            yield env.timeout(1.0)
            raise ValueError("bad input")

        def proc(env):
            yield from with_timeout(env, broken(), 5.0)

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()


class TestCircuitBreaker:
    @staticmethod
    def _failing(env):
        def attempt():
            yield env.timeout(0.5)
            raise FaultInjectedError("down")
        return attempt

    def test_trips_open_after_threshold_and_recovers(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=2, cooldown_s=10.0)
        log = []

        def ok():
            yield env.timeout(0.5)
            return "fine"

        def proc(env):
            for _ in range(2):
                try:
                    yield from breaker.call(self._failing(env))
                except FaultInjectedError:
                    pass
            log.append(breaker.state)
            try:
                yield from breaker.call(self._failing(env))
            except CircuitOpenError:
                log.append("rejected")
            yield env.timeout(10.0)
            log.append(breaker.state)       # cooldown over: half-open
            value = yield from breaker.call(ok)
            log.append((value, breaker.state))

        env.process(proc(env))
        env.run()
        assert log == [BreakerState.OPEN, "rejected", BreakerState.HALF_OPEN,
                       ("fine", BreakerState.CLOSED)]
        assert breaker.rejections == 1
        assert breaker.opens == 1

    def test_half_open_failure_reopens(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, cooldown_s=5.0)

        def proc(env):
            try:
                yield from breaker.call(self._failing(env))
            except FaultInjectedError:
                pass
            yield env.timeout(5.0)
            assert breaker.state is BreakerState.HALF_OPEN
            try:
                yield from breaker.call(self._failing(env))
            except FaultInjectedError:
                pass
            assert breaker.state is BreakerState.OPEN

        env.process(proc(env))
        env.run()
        assert breaker.opens == 2

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CircuitBreaker(env, failure_threshold=0)


class TestHedge:
    def test_hedge_beats_straggling_primary(self):
        env = Environment()
        durations = iter([10.0, 1.0])
        result = {}

        def attempt():
            d = next(durations)
            yield env.timeout(d)
            return d

        def proc(env):
            hedge = Hedge(delay_s=2.0)
            result["value"] = yield from hedge.run(env, attempt)
            result["t"] = env.now
            result["wins"] = hedge.hedge_wins
            result["launched"] = hedge.launched

        env.process(proc(env))
        env.run()
        # Hedge launched at t=2, finishes at t=3, beating the 10s primary.
        assert result == {"value": 1.0, "t": 3.0, "wins": 1, "launched": 2}

    def test_fast_primary_needs_no_hedge(self):
        env = Environment()
        result = {}

        def attempt():
            yield env.timeout(1.0)
            return "primary"

        def proc(env):
            hedge = Hedge(delay_s=5.0)
            result["value"] = yield from hedge.run(env, attempt)
            result["hedges"] = hedge.hedges

        env.process(proc(env))
        env.run()
        assert result == {"value": "primary", "hedges": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            Hedge(delay_s=0.0)
