"""Tests for the chaos harness scenario matrix."""

from repro.faults.chaos import (
    ChaosOutcome,
    run_chaos_matrix,
    run_scheduling_scenario,
    run_serverless_scenario,
)


class TestServerlessScenario:
    def test_fault_free_baseline_is_healthy(self):
        result = run_serverless_scenario(seed=5, error_rate=0.0,
                                         n_invocations=100)
        assert result["slo_attainment"] == 1.0
        assert result["availability"] == 1.0
        assert result["faults"] == 0

    def test_faults_without_retry_lose_invocations(self):
        result = run_serverless_scenario(seed=5, error_rate=0.25,
                                         retry=False, n_invocations=100)
        assert result["slo_attainment"] < 0.9
        assert result["faults"] > 0
        assert result["retries"] == 0

    def test_retries_bill_for_failed_attempts(self):
        off = run_serverless_scenario(seed=5, error_rate=0.25, retry=False,
                                      n_invocations=100)
        on = run_serverless_scenario(seed=5, error_rate=0.25, retry=True,
                                     n_invocations=100)
        assert on["retries"] > 0
        assert on["mean_attempts"] > 1.0
        assert on["billed_gb_s"] > off["billed_gb_s"]


class TestSchedulingScenario:
    def test_drop_mode_loses_work(self):
        result = run_scheduling_scenario(seed=5, mtbf_s=400.0,
                                         requeue=False)
        assert result["lost"] > 0
        assert result["slo_attainment"] < 1.0
        assert result["wasted_core_s"] > 0

    def test_requeue_recovers_goodput(self):
        result = run_scheduling_scenario(seed=5, mtbf_s=400.0, requeue=True)
        assert result["lost"] == 0
        assert result["slo_attainment"] == 1.0
        assert result["restarts"] > 0
        # Work killed mid-flight is burned even though it was re-run.
        assert result["wasted_core_s"] > 0


class TestMatrix:
    def test_matrix_shape_and_lookup(self):
        report = run_chaos_matrix(seed=2,
                                  serverless_error_rates=(0.0, 0.3),
                                  scheduling_mtbfs=(None, 500.0))
        # serverless: 1 baseline + 2 policies; scheduling: same.
        assert len(report.outcomes) == 6
        cell = report.cell("serverless", "transient p=0.3", "retry+backoff")
        assert isinstance(cell, ChaosOutcome)
        assert cell.slo_attainment > report.cell(
            "serverless", "transient p=0.3", "none").slo_attainment

    def test_format_renders_all_rows(self):
        report = run_chaos_matrix(seed=2,
                                  serverless_error_rates=(0.0,),
                                  scheduling_mtbfs=(None,))
        text = report.format()
        assert "SLO attainment" in text
        assert "serverless" in text and "scheduling" in text
