"""Property tests for randomized partition-episode generation.

Many seeds, three properties: the same named stream always yields the
identical timeline; episodes survive a JSON round trip; and half-open
``[start, end)`` windows of the same group never overlap.
"""

import json

import pytest

from repro.faults.partition import NetworkPartitionModel, PartitionEpisode
from repro.sim import RandomStreams

GROUPS = ("minority", "majority", "old-leader")


def draw(seed, n=12, horizon_s=300.0, mean_duration_s=25.0,
         one_way_p=0.3):
    rng = RandomStreams(seed).get("episode-property")
    return NetworkPartitionModel.random_episodes(
        rng, GROUPS, n, horizon_s=horizon_s,
        mean_duration_s=mean_duration_s, one_way_p=one_way_p)


class TestSameStreamSameTimeline:
    @pytest.mark.parametrize("seed", range(10))
    def test_identical_across_regenerations(self, seed):
        assert draw(seed) == draw(seed)

    def test_different_seeds_differ(self):
        timelines = {tuple((e.start_s, e.end_s, e.isolate, e.direction)
                           for e in draw(seed)) for seed in range(10)}
        assert len(timelines) == 10

    def test_stream_name_matters(self):
        rng_a = RandomStreams(4).get("episode-property")
        rng_b = RandomStreams(4).get("other-stream")
        a = NetworkPartitionModel.random_episodes(
            rng_a, GROUPS, 8, horizon_s=300.0, mean_duration_s=25.0)
        b = NetworkPartitionModel.random_episodes(
            rng_b, GROUPS, 8, horizon_s=300.0, mean_duration_s=25.0)
        assert a != b


class TestJsonRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_episodes_round_trip(self, seed):
        for episode in draw(seed):
            wire = json.dumps(episode.as_dict(), sort_keys=True)
            restored = PartitionEpisode.from_dict(json.loads(wire))
            assert restored == episode

    def test_directions_survive(self):
        episodes = [e for seed in range(10) for e in draw(seed)]
        directions = {e.direction for e in episodes}
        # one_way_p=0.3 over ~100 draws: all three shapes appear.
        assert directions == {"both", "outbound", "inbound"}
        for episode in episodes:
            assert PartitionEpisode.from_dict(
                episode.as_dict()).direction == episode.direction


class TestNoSameGroupOverlap:
    @pytest.mark.parametrize("seed", range(25))
    def test_half_open_windows_disjoint_within_group(self, seed):
        episodes = draw(seed, n=20, horizon_s=200.0,
                        mean_duration_s=40.0)
        by_group = {}
        for episode in episodes:
            by_group.setdefault(episode.isolate, []).append(episode)
        for group_episodes in by_group.values():
            ordered = sorted(group_episodes, key=lambda e: e.start_s)
            for prev, cur in zip(ordered, ordered[1:]):
                # [start, end) half-open: touching at the boundary is
                # fine, strict overlap is not.
                assert prev.end_s <= cur.start_s

    @pytest.mark.parametrize("seed", range(25))
    def test_no_instant_is_doubly_claimed(self, seed):
        episodes = draw(seed, n=20, horizon_s=200.0,
                        mean_duration_s=40.0)
        for group in GROUPS:
            mine = [e for e in episodes if e.isolate == group]
            for t in range(0, 200):
                active = [e for e in mine if e.active(float(t))]
                assert len(active) <= 1


class TestUpToN:
    @pytest.mark.parametrize("seed", range(10))
    def test_returns_at_most_n_valid_episodes(self, seed):
        episodes = draw(seed, n=15, horizon_s=100.0,
                        mean_duration_s=60.0)
        assert len(episodes) <= 15
        for episode in episodes:
            assert 0.0 <= episode.start_s < episode.end_s
            assert episode.isolate in GROUPS

    def test_crowded_horizon_drops_swallowed_episodes(self):
        # A tiny horizon with long durations forces clipping to drop
        # some of the requested episodes.
        counts = [len(draw(seed, n=30, horizon_s=50.0,
                           mean_duration_s=80.0))
                  for seed in range(10)]
        assert any(count < 30 for count in counts)

    def test_rejects_bad_arguments(self):
        rng = RandomStreams(0).get("episode-property")
        with pytest.raises(ValueError):
            NetworkPartitionModel.random_episodes(
                rng, GROUPS, -1, horizon_s=10.0, mean_duration_s=1.0)
        with pytest.raises(ValueError):
            NetworkPartitionModel.random_episodes(
                rng, GROUPS, 1, horizon_s=0.0, mean_duration_s=1.0)
