"""Tests for partition episodes, the partition model, and gray failures."""

import pytest

from repro.faults import (
    CorrelatedBurst,
    GrayFailureModel,
    NetworkPartitionModel,
    PartitionEpisode,
)
from repro.sim import Environment, Network, RandomStreams


class TestPartitionEpisode:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionEpisode(10.0, 5.0, "g")
        with pytest.raises(ValueError):
            PartitionEpisode(-1.0, 5.0, "g")
        with pytest.raises(ValueError):
            PartitionEpisode(0.0, 5.0, "g", direction="sideways")

    def test_active_is_half_open(self):
        ep = PartitionEpisode(10.0, 20.0, "g")
        assert not ep.active(9.9)
        assert ep.active(10.0)
        assert ep.active(19.9)
        assert not ep.active(20.0)

    def test_both_severs_either_direction(self):
        ep = PartitionEpisode(0.0, 10.0, "g")
        assert ep.severs(5.0, True, False)
        assert ep.severs(5.0, False, True)
        assert not ep.severs(5.0, True, True)
        assert not ep.severs(5.0, False, False)

    def test_one_way_directions(self):
        out = PartitionEpisode(0.0, 10.0, "g", direction="outbound")
        assert out.severs(5.0, True, False)       # inside -> out: cut
        assert not out.severs(5.0, False, True)   # outside -> in: flows
        inb = PartitionEpisode(0.0, 10.0, "g", direction="inbound")
        assert not inb.severs(5.0, True, False)
        assert inb.severs(5.0, False, True)


def make_partitioned(env, episodes):
    net = Network(env)
    net.add_nodes(["s", "w1", "w2", "w3"])
    model = net.attach(NetworkPartitionModel(
        env, groups={"minority": ["w2", "w3"]}, episodes=episodes))
    return net, model


class TestNetworkPartitionModel:
    def test_unknown_group_in_episode_rejected(self):
        with pytest.raises(ValueError):
            NetworkPartitionModel(Environment(), groups={"g": ["a"]},
                                  episodes=[PartitionEpisode(0, 1, "other")])

    def test_blocks_only_across_the_cut_while_active(self):
        env = Environment()
        net, model = make_partitioned(
            env, [PartitionEpisode(10.0, 20.0, "minority")])
        # Before the split everything flows.
        assert net.allows("s", "w2")
        env.run(until=15.0)
        assert not net.allows("s", "w2")    # across the cut
        assert not net.allows("w2", "s")
        assert net.allows("s", "w1")        # both on the majority side
        assert net.allows("w2", "w3")       # both inside the minority
        env.run(until=25.0)
        assert net.allows("s", "w2")        # healed

    def test_one_way_partition_is_asymmetric(self):
        env = Environment()
        net, _ = make_partitioned(
            env, [PartitionEpisode(0.0, 10.0, "minority",
                                   direction="outbound")])
        assert not net.allows("w2", "s")    # its announcements vanish
        assert net.allows("s", "w2")        # but it still hears the world

    def test_timeline_counts_and_hooks(self):
        env = Environment()
        seen = []
        model = NetworkPartitionModel(
            env, groups={"g": ["a"]},
            episodes=[PartitionEpisode(5.0, 8.0, "g"),
                      PartitionEpisode(12.0, 14.0, "g")],
            on_split=lambda ep: seen.append(("split", env.now)),
            on_heal=lambda ep: seen.append(("heal", env.now)))
        env.run(until=20.0)
        assert model.splits == 2
        assert model.heals == 2
        assert seen == [("split", 5.0), ("heal", 8.0),
                        ("split", 12.0), ("heal", 14.0)]

    def test_isolated_nodes(self):
        env = Environment()
        _, model = make_partitioned(
            env, [PartitionEpisode(0.0, 10.0, "minority")])
        assert model.isolated() == ["w2", "w3"]
        env.run(until=10.0)
        assert model.isolated() == []

    def test_random_episodes_are_reproducible(self):
        def draw():
            rng = RandomStreams(11).get("partition-episodes")
            return NetworkPartitionModel.random_episodes(
                rng, ["g1", "g2"], n=5, horizon_s=100.0,
                mean_duration_s=10.0, one_way_p=0.5)
        a, b = draw(), draw()
        assert a == b
        assert all(0.0 <= ep.start_s < ep.end_s for ep in a)


class TestGrayFailureModel:
    def make(self, env=None, **kwargs):
        env = env or Environment()
        rng = RandomStreams(3).get("gray")
        defaults = dict(slowdown=3.0, error_rate=0.5, drop_rate=0.5)
        defaults.update(kwargs)
        return env, GrayFailureModel(env, rng, **defaults)

    def test_validation(self):
        env = Environment()
        rng = RandomStreams(0).get("gray")
        with pytest.raises(ValueError):
            GrayFailureModel(env, rng, slowdown=0.5)
        with pytest.raises(ValueError):
            GrayFailureModel(env, rng, error_rate=1.5)
        with pytest.raises(ValueError):
            GrayFailureModel(env, rng, drop_rate=1.0)
        with pytest.raises(ValueError):
            GrayFailureModel(env, rng, episodes={"n": [(5.0, 2.0)]})

    def test_scheduled_episodes_drive_grayness(self):
        env, gray = self.make(episodes={"n1": [(10.0, 20.0)]})
        assert not gray.is_gray("n1")
        env.run(until=15.0)
        assert gray.is_gray("n1")
        assert gray.gray_nodes() == ["n1"]
        env.run(until=20.0)
        assert not gray.is_gray("n1")

    def test_manual_degrade_restore(self):
        _, gray = self.make()
        gray.degrade("n1")
        gray.degrade("n1")  # idempotent
        assert gray.is_gray("n1")
        assert gray.degradations == 1
        gray.restore("n1")
        gray.restore("n1")
        assert not gray.is_gray("n1")
        assert gray.restorations == 1

    def test_service_factor_only_while_gray(self):
        _, gray = self.make()
        assert gray.service_factor("n1") == 1.0
        gray.degrade("n1")
        assert gray.service_factor("n1") == 3.0
        assert gray.slowed_operations == 1

    def test_no_rng_drawn_while_healthy(self):
        """Baseline comparability: a healthy fleet never touches the RNG."""
        env = Environment()
        rng = RandomStreams(3).get("gray")
        gray = GrayFailureModel(env, rng, error_rate=0.5, drop_rate=0.5)
        state_before = rng.bit_generator.state["state"]["state"]
        for _ in range(50):
            assert not gray.should_error("n1")
            assert not gray.drops("a", "n1", "data")
        assert rng.bit_generator.state["state"]["state"] == state_before

    def test_heartbeats_are_protected_from_drops(self):
        _, gray = self.make(drop_rate=0.999999)
        gray.degrade("n1")
        for _ in range(20):
            assert not gray.drops("n1", "s", "heartbeat")
        assert any(gray.drops("n1", "s", "data") for _ in range(20))

    def test_drops_fire_for_either_gray_endpoint(self):
        _, gray = self.make(drop_rate=0.999999)
        gray.degrade("n1")
        assert gray.drops("s", "n1", "data")   # gray receiver
        assert gray.drops("n1", "s", "data")   # gray sender

    def test_extra_latency_only_while_gray(self):
        _, gray = self.make(extra_latency_s=0.5, drop_rate=0.0,
                            error_rate=0.0)
        assert gray.extra_latency_s("a", "n1") == 0.0
        gray.degrade("n1")
        assert gray.extra_latency_s("a", "n1") == 0.5
        assert gray.extra_latency_s("n1", "a") == 0.5
        assert gray.extra_latency_s("a", "b") == 0.0

    def test_should_error_rate(self):
        _, gray = self.make(error_rate=1.0, drop_rate=0.0)
        gray.degrade("n1")
        assert gray.should_error("n1")
        assert gray.injected_errors == 1

    def test_target_adapter_flips_with_gray_state(self):
        _, gray = self.make()
        target = gray.target("n1")
        assert target.is_up
        target.fail()
        assert gray.is_gray("n1") and not target.is_up
        target.repair()
        assert not gray.is_gray("n1") and target.is_up

    def test_target_adapter_composes_with_correlated_burst(self):
        """A burst pointed at gray targets grays nodes instead of crashing."""
        env = Environment()
        streams = RandomStreams(5)
        gray = GrayFailureModel(env, streams.get("gray"), slowdown=2.0)
        targets = [gray.target(f"n{i}") for i in range(8)]
        burst = CorrelatedBurst(env, targets, streams.get("burst"),
                                mean_interval_s=20.0, fraction=0.5,
                                mttr_s=10.0)
        env.run(until=300.0)
        assert burst.bursts > 0
        # Every burst victim was grayed, not crashed, and repairs restore.
        assert gray.degradations == burst.victims > 0
        assert gray.restorations > 0
