"""Tests for the fault models."""

import numpy as np
import pytest

from repro.faults import (
    CorrelatedBurst,
    CrashRestart,
    FaultInjectedError,
    MessageLossModel,
    StragglerModel,
    TransientErrorModel,
)
from repro.sim import Environment, Monitor, RandomStreams


class FlakyTarget:
    """Minimal crash/restart target for the generic models."""

    def __init__(self, name="t"):
        self.name = name
        self.up = True
        self.crashes = 0

    def fail(self):
        self.up = False
        self.crashes += 1

    def repair(self):
        self.up = True

    @property
    def is_up(self):
        return self.up


@pytest.fixture
def rng():
    return RandomStreams(seed=42).get("faults")


class TestTransientErrorModel:
    def test_rate_respected_statistically(self, rng):
        model = TransientErrorModel(rng, error_rate=0.3)
        hits = sum(model.should_fail() for _ in range(10_000))
        assert 0.27 < hits / 10_000 < 0.33
        assert model.checks == 10_000
        assert model.injected == hits

    def test_zero_rate_never_fails_and_preserves_stream(self, rng):
        model = TransientErrorModel(rng, error_rate=0.0)
        assert not any(model.should_fail() for _ in range(100))
        # The disabled path must not consume random numbers: the stream's
        # next draw equals a fresh stream's first draw.
        fresh = RandomStreams(seed=42).get("faults")
        assert rng.random() == fresh.random()

    def test_disabled_model_is_noop(self, rng):
        model = TransientErrorModel(rng, error_rate=1.0, enabled=False)
        assert not model.should_fail()

    def test_maybe_raise(self, rng):
        model = TransientErrorModel(rng, error_rate=1.0)
        with pytest.raises(FaultInjectedError):
            model.maybe_raise("unit test op")

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            TransientErrorModel(rng, error_rate=1.5)

    def test_deterministic_under_seed(self):
        a = TransientErrorModel(RandomStreams(7).get("x"), 0.4)
        b = TransientErrorModel(RandomStreams(7).get("x"), 0.4)
        assert [a.should_fail() for _ in range(50)] == \
            [b.should_fail() for _ in range(50)]


class TestStragglerModel:
    def test_factors_are_one_or_multiplier(self, rng):
        model = StragglerModel(rng, probability=0.25, multiplier=6.0)
        factors = {model.runtime_factor() for _ in range(500)}
        assert factors == {1.0, 6.0}
        assert 0 < model.stragglers < 500

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            StragglerModel(rng, probability=2.0)
        with pytest.raises(ValueError):
            StragglerModel(rng, probability=0.5, multiplier=0.5)


class TestMessageLossModel:
    def test_goodput_plus_lost_equals_transferred(self, rng):
        model = MessageLossModel(rng, loss_rate=0.2)
        total = 0.0
        for _ in range(200):
            total += model.transfer(10.0)
        assert total == pytest.approx(model.delivered_mb)
        assert model.lost_mb > 0
        # Statistically ~20% lost.
        lost_frac = model.lost_mb / (model.lost_mb + model.delivered_mb)
        assert 0.15 < lost_frac < 0.25

    def test_lossless_channel(self, rng):
        model = MessageLossModel(rng, loss_rate=0.0)
        assert model.transfer(5.0) == 5.0
        assert model.lost_mb == 0.0


class TestCrashRestart:
    def test_targets_fail_and_repair(self, rng):
        env = Environment()
        targets = [FlakyTarget(f"t{i}") for i in range(10)]
        mon = Monitor(env)
        model = CrashRestart(env, targets, rng, mtbf_s=50.0, mttr_s=10.0,
                             monitor=mon, name="node")
        env.run(until=1000)
        assert model.failures > 0
        assert model.repairs > 0
        assert mon.counters["node_failures"].total == model.failures
        assert sum(t.crashes for t in targets) == model.failures

    def test_empirical_availability_matches_theory(self):
        env = Environment()
        targets = [FlakyTarget(f"t{i}") for i in range(30)]
        rng = RandomStreams(seed=11).get("avail")
        model = CrashRestart(env, targets, rng, mtbf_s=100.0, mttr_s=25.0)
        env.run(until=4000)
        assert model.expected_availability == pytest.approx(0.8)
        assert model.empirical_availability() == pytest.approx(
            model.expected_availability, abs=0.05)

    def test_callbacks_fire(self, rng):
        env = Environment()
        targets = [FlakyTarget()]
        downs, ups = [], []
        CrashRestart(env, targets, rng, mtbf_s=20.0, mttr_s=5.0,
                     on_fail=downs.append, on_repair=ups.append)
        env.run(until=500)
        assert downs and ups

    def test_invalid_params(self, rng):
        env = Environment()
        with pytest.raises(ValueError):
            CrashRestart(env, [FlakyTarget()], rng, mtbf_s=0, mttr_s=1)


class TestCorrelatedBurst:
    def test_burst_takes_down_fraction(self, rng):
        env = Environment()
        targets = [FlakyTarget(f"t{i}") for i in range(20)]
        mon = Monitor(env)
        burst = CorrelatedBurst(env, targets, rng, mean_interval_s=100.0,
                                fraction=0.5, mttr_s=20.0, monitor=mon)
        env.run(until=1000)
        assert burst.bursts > 0
        # Half of twenty up targets per burst.
        assert burst.victims >= burst.bursts * 5
        assert max(mon.series["burst_size"].values) <= 10
        # Victims eventually repair.
        assert sum(1 for t in targets if t.is_up) > 0

    def test_invalid_fraction(self, rng):
        env = Environment()
        with pytest.raises(ValueError):
            CorrelatedBurst(env, [FlakyTarget()], rng,
                            mean_interval_s=10.0, fraction=0.0)


class TestCorrelatedBurstStatistics:
    """Statistical coverage: burst size/interval distributions and the
    availability the burst regime implies."""

    def _run(self, seed=11, n=20, interval=50.0, fraction=0.25,
             mttr=10.0, horizon=100_000.0):
        env = Environment()
        rng = RandomStreams(seed=seed).get("burst")
        targets = [FlakyTarget(f"t{i}") for i in range(n)]
        mon = Monitor(env)
        fail_times = []
        burst = CorrelatedBurst(env, targets, rng, mean_interval_s=interval,
                                fraction=fraction, mttr_s=mttr, monitor=mon,
                                on_fail=lambda t: fail_times.append(env.now))
        up_samples = []

        def sampler(env):
            while True:
                yield env.timeout(5.0)
                up_samples.append(sum(1 for t in targets if t.is_up) / n)

        env.process(sampler(env))
        env.run(until=horizon)
        return burst, mon, fail_times, up_samples

    def test_burst_interval_distribution_is_exponential(self):
        burst, _, fail_times, _ = self._run()
        burst_times = sorted(set(fail_times))
        assert len(burst_times) == burst.bursts
        gaps = np.diff(burst_times)
        # Mean inter-burst gap matches the configured rate...
        assert gaps.mean() == pytest.approx(50.0, rel=0.10)
        # ...and the coefficient of variation is ~1: exponential, not
        # regular (CV~0) or heavy-tailed clustering (CV>>1).
        assert 0.85 < gaps.std() / gaps.mean() < 1.15

    def test_burst_size_distribution(self):
        burst, mon, _, _ = self._run()
        sizes = np.asarray(mon.series["burst_size"].values, dtype=float)
        assert len(sizes) == burst.bursts
        assert sizes.max() <= 5  # never more than fraction * n_targets
        # Fast repair keeps nearly all 20 targets up between bursts, so
        # almost every burst takes down round(0.25 * 20) = 5 of them.
        assert sizes.mean() == pytest.approx(5.0, rel=0.05)
        assert burst.victims == int(sizes.sum())

    def test_availability_accounting_matches_burst_math(self):
        # Per-target failure rate = fraction / interval; unavailability
        # = rate * MTTR  =>  A = 1 - fraction * mttr / interval = 0.95.
        _, _, _, up_samples = self._run()
        availability = float(np.mean(up_samples))
        assert availability == pytest.approx(0.95, abs=0.01)

    def test_victims_scale_with_fraction(self):
        small, _, _, _ = self._run(fraction=0.1, mttr=2.0)
        large, _, _, _ = self._run(fraction=0.5, mttr=2.0)
        assert large.victims > 3 * small.victims


class TestCrashRestartAvailabilityConvergence:
    def test_empirical_converges_to_expected_on_long_runs(self):
        env = Environment()
        rng = RandomStreams(seed=3).get("crash")
        targets = [FlakyTarget(f"t{i}") for i in range(5)]
        model = CrashRestart(env, targets, rng, mtbf_s=100.0, mttr_s=25.0)
        env.run(until=200_000)
        assert model.expected_availability == pytest.approx(0.8)
        # Long-run empirical availability converges tightly (LLN): the
        # short-run test above tolerates 5%, here we demand 1%.
        assert model.empirical_availability() == pytest.approx(
            model.expected_availability, abs=0.01)

    def test_convergence_improves_with_horizon(self):
        def gap_at(horizon):
            env = Environment()
            rng = RandomStreams(seed=5).get("crash")
            targets = [FlakyTarget(f"t{i}") for i in range(3)]
            model = CrashRestart(env, targets, rng,
                                 mtbf_s=50.0, mttr_s=50.0)
            env.run(until=horizon)
            return abs(model.empirical_availability()
                       - model.expected_availability)

        # 100x the horizon must shrink the estimation error.
        assert gap_at(500_000.0) < gap_at(5_000.0)
