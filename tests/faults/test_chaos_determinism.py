"""Every scenario entry point in chaos.py is deterministic under its seed.

One parametrized test drives each ``run_*`` function twice per seed and
requires byte-identical event traces (via :class:`DeterminismSanitizer`)
plus identical result payloads — the property the whole campaign layer
rests on.
"""

import dataclasses

import pytest

from repro.analysis.sanitizers import DeterminismSanitizer
from repro.faults import chaos

#: Cheap parameters per scenario: small enough that 2 seeds x 2 runs
#: stay fast, rich enough that the fault machinery actually engages.
SCENARIOS = {
    "run_serverless_scenario": dict(error_rate=0.2, retry=True,
                                    n_invocations=60),
    "run_overload_scenario": dict(admission=True, n_invocations=120),
    "run_detection_scenario": dict(crash=True, n_machines=4,
                                   duration_s=60.0),
    "run_scheduling_scenario": dict(mtbf_s=200.0, requeue=True,
                                    n_tasks=40, n_machines=4),
    "run_recovery_scenario": dict(work_s=400.0, mtbf_s=150.0,
                                  corruption_p=0.1),
    "run_scheduler_recovery_scenario": dict(journaled=True, n_tasks=30,
                                            n_machines=4),
    "run_partition_scenario": dict(n_tasks=30, n_invocations=40,
                                   sim_budget_s=200.0),
    "run_failover_scenario": dict(n_tasks=20, sim_budget_s=200.0),
    "run_chaos_matrix": dict(serverless_error_rates=(0.0, 0.3),
                             scheduling_mtbfs=(300.0,)),
}


def _every_run_function():
    return sorted(name for name in dir(chaos)
                  if name.startswith("run_")
                  and callable(getattr(chaos, name)))


def test_scenario_table_covers_every_entry_point():
    """If chaos.py grows a new run_* function, this test must learn it."""
    assert _every_run_function() == sorted(SCENARIOS)


def _as_comparable(value):
    if dataclasses.is_dataclass(value):
        return dataclasses.asdict(value)
    return value


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 17])
def test_scenario_is_deterministic(name, seed):
    runner = getattr(chaos, name)
    kwargs = SCENARIOS[name]
    results = []

    def scenario():
        results.append(_as_comparable(runner(seed=seed, **kwargs)))

    # Identical event traces across both runs...
    DeterminismSanitizer(runs=2).check(scenario, label=f"{name}/{seed}")
    # ...and identical result payloads, not just identical dispatch.
    assert results[0] == results[1]
