"""Property-based tests for workload models and arrival processes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams
from repro.workload import (
    PoissonArrivals,
    Task,
    TraceArchive,
    Workflow,
    generate_workflow,
)


@given(seed=st.integers(min_value=0, max_value=10**6),
       rate=st.floats(min_value=0.001, max_value=10.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_poisson_arrivals_sorted_and_bounded(seed, rate):
    rng = RandomStreams(seed).get("arrivals")
    times = list(PoissonArrivals(rate, rng).times(100.0))
    assert times == sorted(times)
    assert all(0 < t < 100.0 for t in times)


@given(seed=st.integers(min_value=0, max_value=10**6),
       n_tasks=st.integers(min_value=1, max_value=40),
       shape=st.sampled_from(["chain", "fork-join", "random"]))
@settings(max_examples=40, deadline=None)
def test_generated_workflows_are_valid_dags(seed, n_tasks, shape):
    rng = RandomStreams(seed).get("wf")
    wf = generate_workflow(rng, n_tasks=n_tasks, shape=shape)
    assert len(wf) == n_tasks
    # Acyclicity is enforced at construction; roots must exist.
    roots = [t for t in wf.tasks if not wf.predecessors(t)]
    assert roots
    # Critical path work never exceeds total work.
    total = sum(t.work for t in wf.tasks)
    assert wf.critical_path_work() <= total + 1e-9
    # Levels partition all tasks.
    levels = wf.levels()
    assert sum(len(v) for v in levels.values()) == n_tasks


@given(seed=st.integers(min_value=0, max_value=10**6),
       n_tasks=st.integers(min_value=2, max_value=30))
@settings(max_examples=30, deadline=None)
def test_completing_tasks_in_topological_order_unlocks_everything(
        seed, n_tasks):
    from repro.workload.task import TaskState
    rng = RandomStreams(seed).get("wf2")
    wf = generate_workflow(rng, n_tasks=n_tasks, shape="random")
    completed = 0
    for _ in range(n_tasks + 1):
        ready = wf.ready_tasks()
        if not ready:
            break
        for task in ready:
            task.state = TaskState.DONE
            task.finish_time = float(completed)
            completed += 1
    assert completed == n_tasks
    assert wf.done


@given(events=st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
              st.sampled_from(["a", "b", "c"])),
    min_size=0, max_size=50))
@settings(max_examples=40, deadline=None)
def test_trace_archive_roundtrip_preserves_everything(events):
    import tempfile
    from pathlib import Path

    archive = TraceArchive("prop", domain="test")
    for time, kind in events:
        archive.add(time, kind)
    with tempfile.TemporaryDirectory() as tmp:
        path = archive.save(Path(tmp) / "t.jsonl")
        loaded = TraceArchive.load(path)
    assert len(loaded) == len(events)
    # Round trip sorts by time; multisets of (time, kind) must match.
    assert sorted((r.time, r.kind) for r in loaded.records) == sorted(
        (float(t), k) for t, k in events)
