"""Tests for tasks, bags, workflows, and MapReduce jobs."""

import pytest

from repro.workload import BagOfTasks, MapReduceJob, Task, TaskState, Workflow


class TestTask:
    def test_invalid_work_rejected(self):
        with pytest.raises(ValueError):
            Task(work=0)
        with pytest.raises(ValueError):
            Task(work=10, cores=0)

    def test_timing_metrics(self):
        t = Task(work=10, submit_time=5)
        assert t.wait_time is None
        assert t.response_time is None
        t.start_time = 8
        t.finish_time = 18
        assert t.wait_time == 3
        assert t.response_time == 13
        assert t.runtime == 10
        assert t.slowdown(10) == pytest.approx(1.3)

    def test_unique_ids(self):
        assert Task(work=1).task_id != Task(work=1).task_id


class TestBagOfTasks:
    def test_submit_time_propagates(self):
        bag = BagOfTasks([Task(work=1), Task(work=2)], submit_time=7)
        assert all(t.submit_time == 7 for t in bag.tasks)
        assert all(t.job_id == bag.job_id for t in bag.tasks)

    def test_empty_bag_rejected(self):
        with pytest.raises(ValueError):
            BagOfTasks([])

    def test_total_work_and_makespan(self):
        bag = BagOfTasks([Task(work=3), Task(work=5)], submit_time=0)
        assert bag.total_work == 8
        assert bag.makespan is None
        for i, t in enumerate(bag.tasks):
            t.state = TaskState.DONE
            t.finish_time = 10 + i
        assert bag.done
        assert bag.makespan == 11


class TestWorkflow:
    def _diamond(self):
        a, b, c, d = (Task(work=w) for w in (1, 2, 3, 4))
        wf = Workflow(
            [a, b, c, d],
            [(a.task_id, b.task_id), (a.task_id, c.task_id),
             (b.task_id, d.task_id), (c.task_id, d.task_id)],
            name="diamond")
        return wf, (a, b, c, d)

    def test_cycle_rejected(self):
        a, b = Task(work=1), Task(work=1)
        with pytest.raises(ValueError):
            Workflow([a, b], [(a.task_id, b.task_id), (b.task_id, a.task_id)])

    def test_unknown_edge_rejected(self):
        a = Task(work=1)
        with pytest.raises(ValueError):
            Workflow([a], [(a.task_id, 999_999)])

    def test_ready_tasks_respect_dependencies(self):
        wf, (a, b, c, d) = self._diamond()
        assert [t.task_id for t in wf.ready_tasks()] == [a.task_id]
        a.state = TaskState.DONE
        ready = {t.task_id for t in wf.ready_tasks()}
        assert ready == {b.task_id, c.task_id}
        b.state = TaskState.DONE
        assert d.task_id not in {t.task_id for t in wf.ready_tasks()}
        c.state = TaskState.DONE
        assert {t.task_id for t in wf.ready_tasks()} == {d.task_id}

    def test_critical_path_of_diamond(self):
        wf, _ = self._diamond()
        # a -> c -> d = 1 + 3 + 4 = 8.
        assert wf.critical_path_work() == 8

    def test_levels(self):
        wf, (a, b, c, d) = self._diamond()
        levels = wf.levels()
        assert [t.task_id for t in levels[0]] == [a.task_id]
        assert {t.task_id for t in levels[1]} == {b.task_id, c.task_id}
        assert [t.task_id for t in levels[2]] == [d.task_id]
        assert wf.level_of(d) == 2

    def test_makespan_requires_completion(self):
        wf, tasks = self._diamond()
        assert wf.makespan is None
        for i, t in enumerate(tasks):
            t.state = TaskState.DONE
            t.finish_time = float(i + 1)
        assert wf.makespan == 4


class TestMapReduceJob:
    def test_shuffle_barrier_structure(self):
        job = MapReduceJob(n_maps=3, n_reduces=2)
        assert len(job) == 5
        assert job.graph.number_of_edges() == 6
        # No reduce is ready before all maps are done.
        ready_ids = {t.task_id for t in job.ready_tasks()}
        assert ready_ids == {t.task_id for t in job.map_tasks}
        for m in job.map_tasks[:-1]:
            m.state = TaskState.DONE
        assert not any(t in job.reduce_tasks for t in job.ready_tasks())
        job.map_tasks[-1].state = TaskState.DONE
        assert {t.task_id for t in job.ready_tasks()} == {
            t.task_id for t in job.reduce_tasks}

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob(n_maps=0, n_reduces=1)
