"""Tests for arrival processes, workload generators, and the trace archive."""

import pytest

from repro.sim import RandomStreams
from repro.workload import (
    BagOfTasks,
    DiurnalArrivals,
    FlashcrowdArrivals,
    MapReduceJob,
    PoissonArrivals,
    TraceArchive,
    TraceArrivals,
    Workflow,
    WORKLOAD_DOMAINS,
    generate_bot_workload,
    generate_domain_workload,
    generate_workflow,
    generate_workflow_workload,
)
from repro.workload.arrivals import interarrival_cv


@pytest.fixture
def rng():
    return RandomStreams(seed=7).get("test")


class TestArrivals:
    def test_poisson_rate_approximately_respected(self, rng):
        times = list(PoissonArrivals(rate=0.1, rng=rng).times(100_000))
        assert 8_000 < len(times) < 12_000

    def test_poisson_times_increasing_below_horizon(self, rng):
        times = list(PoissonArrivals(rate=1.0, rng=rng).times(100))
        assert times == sorted(times)
        assert all(t < 100 for t in times)

    def test_poisson_cv_near_one(self, rng):
        times = list(PoissonArrivals(rate=1.0, rng=rng).times(5_000))
        assert 0.9 < interarrival_cv(times) < 1.1

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0, rng=rng)

    def test_diurnal_peaks_beat_troughs(self, rng):
        proc = DiurnalArrivals(base_rate=0.01, rng=rng, amplitude=0.9)
        times = list(proc.times(7 * 86400))
        # Peak quarter of the day (sin≈1 around t=period/4) vs trough quarter.
        day = 86400
        peak = sum(1 for t in times if (t % day) < day / 2)
        trough = sum(1 for t in times if (t % day) >= day / 2)
        assert peak > 1.5 * trough

    def test_diurnal_amplitude_validation(self, rng):
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=1, rng=rng, amplitude=1.5)

    def test_flashcrowd_burst_raises_rate(self, rng):
        proc = FlashcrowdArrivals(base_rate=0.01, rng=rng,
                                  burst_times=[10_000],
                                  burst_factor=50, burst_decay_s=2000)
        times = list(proc.times(20_000))
        before = sum(1 for t in times if t < 10_000)
        after = sum(1 for t in times if 10_000 <= t < 12_000)
        # 2000 s of flashcrowd should out-arrive the 10000 s before it.
        assert after > before

    def test_flashcrowd_detector(self, rng):
        proc = FlashcrowdArrivals(base_rate=1.0, rng=rng, burst_times=[100],
                                  burst_factor=50, burst_decay_s=500)
        assert not proc.is_flashcrowd_at(50)
        assert proc.is_flashcrowd_at(101)
        assert not proc.is_flashcrowd_at(100_000)

    def test_flashcrowd_cv_exceeds_poisson(self, rng):
        base = list(PoissonArrivals(rate=0.05, rng=rng).times(50_000))
        fc = list(FlashcrowdArrivals(
            base_rate=0.05, rng=rng, burst_times=[20_000], burst_factor=80,
            burst_decay_s=1000).times(50_000))
        assert interarrival_cv(fc) > interarrival_cv(base)

    def test_trace_arrivals_replay(self):
        proc = TraceArrivals([5.0, 1.0, 9.0])
        assert list(proc.times(8)) == [1.0, 5.0]

    def test_count(self, rng):
        proc = TraceArrivals([1, 2, 3])
        assert proc.count(10) == 3


class TestGenerators:
    def test_all_domains_generate(self, rng):
        for domain in WORKLOAD_DOMAINS:
            jobs = generate_domain_workload(rng, domain, n_jobs=10,
                                            horizon_s=10 * 86400)
            assert jobs, f"domain {domain} generated nothing"
            assert all(isinstance(j, (BagOfTasks, Workflow)) for j in jobs)

    def test_unknown_domain_rejected(self, rng):
        with pytest.raises(KeyError):
            generate_domain_workload(rng, "nope")

    def test_bot_workload_submit_times_increase(self, rng):
        bags = generate_bot_workload(rng, n_jobs=20)
        submits = [b.submit_time for b in bags]
        assert submits == sorted(submits)

    def test_bigdata_contains_mapreduce(self, rng):
        jobs = generate_domain_workload(rng, "bigdata", n_jobs=12,
                                        horizon_s=30 * 86400)
        assert any(isinstance(j, MapReduceJob) for j in jobs)

    def test_workflow_shapes(self, rng):
        chain = generate_workflow(rng, n_tasks=5, shape="chain")
        assert chain.critical_path_work() == sum(
            t.work for t in chain.tasks)
        fj = generate_workflow(rng, n_tasks=6, shape="fork-join")
        assert len(fj.ready_tasks()) == 1  # single head
        rand = generate_workflow(rng, n_tasks=25, shape="random")
        assert len(rand) == 25

    def test_unknown_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_workflow(rng, shape="star-of-david")

    def test_workflow_workload_sizes(self, rng):
        wfs = generate_workflow_workload(rng, n_workflows=8,
                                         horizon_s=30 * 86400)
        assert len(wfs) == 8
        assert all(len(wf) >= 2 for wf in wfs)

    def test_estimates_bounded_by_error_factor(self, rng):
        spec = WORKLOAD_DOMAINS["scientific"]
        bags = generate_bot_workload(rng, n_jobs=10, spec=spec,
                                     horizon_s=30 * 86400)
        for bag in bags:
            for task in bag.tasks:
                assert task.work <= task.runtime_estimate <= (
                    task.work * spec.estimate_error * 1.0001)


class TestTraceArchive:
    def test_roundtrip(self, tmp_path):
        archive = TraceArchive("p2p-2010", domain="p2p",
                               instrument="btworld",
                               provenance="simulated global monitor")
        archive.add(0.0, "peer_join", "peer-1", swarm="s1")
        archive.add(5.0, "piece_complete", "peer-1", piece=3)
        path = archive.save(tmp_path / "trace.jsonl")
        loaded = TraceArchive.load(path)
        assert loaded.name == "p2p-2010"
        assert len(loaded) == 2
        assert loaded.records[1].attributes == {"piece": 3}

    def test_kind_filtering_and_window(self):
        archive = TraceArchive("t", domain="test")
        for i in range(10):
            archive.add(float(i), "a" if i % 2 == 0 else "b")
        assert len(archive.of_kind("a")) == 5
        assert archive.kinds() == {"a", "b"}
        assert len(archive.window(2, 6)) == 4
        assert archive.time_range() == (0.0, 9.0)

    def test_empty_time_range_raises(self):
        with pytest.raises(ValueError):
            TraceArchive("t", domain="x").time_range()

    def test_truncated_file_detected(self, tmp_path):
        archive = TraceArchive("t", domain="x")
        archive.add(1.0, "e")
        archive.add(2.0, "e")
        path = archive.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            TraceArchive.load(path)

    def test_records_saved_sorted_by_time(self, tmp_path):
        archive = TraceArchive("t", domain="x")
        archive.add(5.0, "late")
        archive.add(1.0, "early")
        loaded = TraceArchive.load(archive.save(tmp_path / "t.jsonl"))
        assert [r.kind for r in loaded.records] == ["early", "late"]
