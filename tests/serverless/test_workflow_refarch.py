"""Tests for the workflow engine and the FaaS reference architecture."""

import pytest

from repro.faults.models import TransientErrorModel
from repro.faults.policies import RetryPolicy
from repro.serverless import (
    FaaSPlatform,
    FunctionSpec,
    FunctionWorkflow,
    KNOWN_PLATFORMS,
    PlatformConfig,
    WorkflowEngine,
    platform_coverage,
)
from repro.serverless.refarch import layer_coverage, missing_components
from repro.sim import Environment, RandomStreams


def platform_with(env, functions, **config_kwargs):
    platform = FaaSPlatform(env, PlatformConfig(**config_kwargs))
    for name, runtime in functions:
        platform.deploy(FunctionSpec(name, runtime_s=runtime))
    return platform


class TestFunctionWorkflow:
    def test_chain_builder(self):
        wf = FunctionWorkflow.chain("etl", ["extract", "transform", "load"])
        assert len(wf) == 3
        assert wf.graph.number_of_edges() == 2

    def test_fan_out_fan_in_builder(self):
        wf = FunctionWorkflow.fan_out_fan_in(
            "map", "split", ["work"] * 4, "merge")
        assert len(wf) == 6
        assert wf.graph.number_of_edges() == 8

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            FunctionWorkflow("bad", [("a", "f"), ("b", "g")],
                             [("a", "b"), ("b", "a")])

    def test_duplicate_step_rejected(self):
        with pytest.raises(ValueError):
            FunctionWorkflow("bad", [("a", "f"), ("a", "g")])

    def test_unknown_edge_rejected(self):
        with pytest.raises(ValueError):
            FunctionWorkflow("bad", [("a", "f")], [("a", "zzz")])


class TestWorkflowEngine:
    def test_chain_runs_sequentially(self):
        env = Environment()
        platform = platform_with(env, [("a", 1.0), ("b", 2.0)],
                                 cold_start_s=0.0)
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a", "b"])
        run = env.run(until=engine.submit(wf))
        assert run.makespan == pytest.approx(3.0)
        assert len(run.invocations) == 2

    def test_fan_out_runs_in_parallel(self):
        env = Environment()
        platform = platform_with(
            env, [("head", 0.5), ("work", 2.0), ("tail", 0.5)],
            cold_start_s=0.0)
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.fan_out_fan_in(
            "m", "head", ["work"] * 8, "tail")
        run = env.run(until=engine.submit(wf))
        # Parallel middle: makespan ≈ 0.5 + 2.0 + 0.5, not 0.5 + 16 + 0.5.
        assert run.makespan == pytest.approx(3.0)

    def test_cold_starts_add_overhead(self):
        env = Environment()
        platform = platform_with(env, [("a", 1.0), ("b", 1.0)],
                                 cold_start_s=2.0)
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a", "b"])
        run = env.run(until=engine.submit(wf))
        assert run.makespan == pytest.approx(2 + 1 + 2 + 1)
        assert run.critical_path_runtime == pytest.approx(2.0)

    def test_undeployed_function_rejected(self):
        env = Environment()
        platform = platform_with(env, [("a", 1.0)])
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a", "ghost"])
        with pytest.raises(KeyError):
            engine.submit(wf)

    def test_concurrency_rejection_surfaces(self):
        env = Environment()
        platform = platform_with(env, [("work", 1.0)],
                                 cold_start_s=0.0, concurrency_limit=2)
        # head/tail share the same function name 'work'.
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.fan_out_fan_in(
            "m", "work", ["work"] * 6, "work")
        with pytest.raises(RuntimeError, match="rejected"):
            env.run(until=engine.submit(wf))

    def test_multiple_runs_recorded(self):
        env = Environment()
        platform = platform_with(env, [("a", 0.5)], cold_start_s=0.0)
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a"])

        def scenario(env, engine, wf):
            yield engine.submit(wf)
            yield engine.submit(wf)

        env.run(until=env.process(scenario(env, engine, wf)))
        assert len(engine.runs) == 2
        assert all(r.finish_time is not None for r in engine.runs)


class TestWorkflowFailureSemantics:
    """Regression: a step that exhausts its retries must fail the
    workflow deterministically — downstream steps skipped, engine never
    hung — instead of being silently counted as a success."""

    def failing_platform(self, env, functions, max_attempts=2):
        streams = RandomStreams(0)
        platform = FaaSPlatform(
            env, PlatformConfig(cold_start_s=0.0),
            fault_model=TransientErrorModel(streams.get("faults"),
                                            error_rate=1.0),
            retry_policy=RetryPolicy(max_attempts=max_attempts,
                                     base_delay_s=0.01, multiplier=2.0,
                                     max_delay_s=0.1, jitter=0.0),
            retry_rng=streams.get("retry"))
        for name, runtime in functions:
            platform.deploy(FunctionSpec(name, runtime_s=runtime))
        return platform

    def test_exhausted_retries_fail_chain_and_skip_downstream(self):
        env = Environment()
        platform = self.failing_platform(env, [("a", 0.5), ("b", 0.5)])
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a", "b"])
        run = env.run(until=engine.submit(wf))
        assert run.status == "failed"
        assert not run.succeeded
        assert run.failed_steps == {"s0"}
        assert run.skipped_steps == {"s1"}
        assert run.finish_time is not None  # terminated, not hung
        assert run.invocations["s0"].attempts == 2  # retries exhausted
        assert "s1" not in run.invocations  # never invoked

    def test_fan_out_head_failure_skips_every_branch(self):
        env = Environment()
        platform = self.failing_platform(
            env, [("head", 0.5), ("work", 0.5), ("tail", 0.5)])
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.fan_out_fan_in("m", "head", ["work"] * 4,
                                             "tail")
        run = env.run(until=engine.submit(wf))
        assert run.status == "failed"
        assert run.failed_steps == {"head"}
        assert run.skipped_steps == {"m0", "m1", "m2", "m3", "tail"}
        assert len(run.invocations) == 1

    def test_successful_run_reports_completed(self):
        env = Environment()
        platform = platform_with(env, [("a", 0.5), ("b", 0.5)],
                                 cold_start_s=0.0)
        engine = WorkflowEngine(env, platform)
        wf = FunctionWorkflow.chain("c", ["a", "b"])
        run = env.run(until=engine.submit(wf))
        assert run.status == "completed"
        assert run.succeeded
        assert not run.failed_steps and not run.skipped_steps


class TestFaaSReferenceArchitecture:
    def test_full_platform_covers_everything(self):
        assert platform_coverage(
            KNOWN_PLATFORMS["aws-lambda+step-functions"]) == 1.0

    def test_workflow_support_separates_platforms(self):
        fission = platform_coverage(KNOWN_PLATFORMS["fission"])
        fission_wf = platform_coverage(KNOWN_PLATFORMS["fission+workflows"])
        assert fission_wf > fission
        missing = missing_components(KNOWN_PLATFORMS["fission"])
        assert "workflow-engine" in missing

    def test_bare_containers_are_not_serverless(self):
        coverage = platform_coverage(
            KNOWN_PLATFORMS["bare-container-platform"])
        assert coverage < 0.3
        layers = layer_coverage(KNOWN_PLATFORMS["bare-container-platform"])
        assert layers["function-management"] == 0.0

    def test_layer_coverage_structure(self):
        layers = layer_coverage(KNOWN_PLATFORMS["aws-lambda"])
        assert set(layers) == {"resources", "function-management",
                               "workflow-composition", "business-logic",
                               "operations"}
        assert layers["workflow-composition"] == 0.0
        assert layers["function-management"] == 1.0

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            platform_coverage(["quantum-burst-unit"])
