"""Tests for the FaaS platform."""

import pytest

from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Environment


def make_platform(env, **config_kwargs):
    platform = FaaSPlatform(env, PlatformConfig(**config_kwargs))
    platform.deploy(FunctionSpec("f", runtime_s=0.2, memory_gb=0.5))
    return platform


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", runtime_s=0)
        with pytest.raises(ValueError):
            FunctionSpec("f", runtime_s=1, memory_gb=0)


class TestLifecycle:
    def test_deploy_undeploy(self):
        env = Environment()
        platform = make_platform(env)
        assert "f" in platform.functions
        with pytest.raises(ValueError):
            platform.deploy(FunctionSpec("f", runtime_s=1))
        platform.undeploy("f")
        with pytest.raises(KeyError):
            platform.undeploy("f")

    def test_invoke_unknown_function(self):
        env = Environment()
        platform = FaaSPlatform(env)
        with pytest.raises(KeyError):
            platform.invoke("ghost")


class TestColdWarm:
    def test_first_invocation_is_cold(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=2.0)
        results = {}

        def scenario(env, platform):
            inv = yield platform.invoke("f")
            results["first"] = inv
            inv = yield platform.invoke("f")
            results["second"] = inv

        env.run(until=env.process(scenario(env, platform)))
        assert results["first"].cold
        assert not results["second"].cold
        assert results["first"].latency == pytest.approx(2.2)
        assert results["second"].latency == pytest.approx(0.2)

    def test_concurrent_burst_spawns_instances(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0)

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(5)]
            for ev in events:
                yield ev

        env.run(until=env.process(scenario(env, platform)))
        assert platform.pool_size("f") == 5
        assert platform.cold_start_fraction("f") == 1.0

    def test_prewarming_removes_cold_starts(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=2.0, prewarmed=3)

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(3)]
            for ev in events:
                inv = yield ev
                assert not inv.cold

        env.run(until=env.process(scenario(env, platform)))
        assert platform.cold_start_fraction() == 0.0

    def test_keep_alive_reaps_idle_instances(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=60.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            assert platform.pool_size("f") == 1
            yield env.timeout(300)
            # Instance reaped; next call is cold again.
            inv = yield platform.invoke("f")
            assert inv.cold

        env.run(until=env.process(scenario(env, platform)))

    def test_warm_within_keep_alive(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=600.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            yield env.timeout(120)
            inv = yield platform.invoke("f")
            assert not inv.cold

        env.run(until=env.process(scenario(env, platform)))


class TestConcurrencyLimit:
    def test_over_limit_rejected(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=0.5,
                                 concurrency_limit=2)
        rejected = []

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(4)]
            for ev in events:
                inv = yield ev
                if inv.rejected:
                    rejected.append(inv)

        env.run(until=env.process(scenario(env, platform)))
        assert len(rejected) == 2
        assert platform.monitor.counters["rejections"].total == 2


class TestBilling:
    def test_pay_only_for_runtime(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=3.0,
                                 bill_cold_start=False)

        def scenario(env, platform):
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        # runtime 0.2 s × 0.5 GB.
        assert platform.billed_gb_s == pytest.approx(0.1)
        assert platform.cost() == pytest.approx(
            0.1 * platform.config.price_per_gb_s)

    def test_cold_start_billing_toggle(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=3.0,
                                 bill_cold_start=True)

        def scenario(env, platform):
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        assert platform.billed_gb_s == pytest.approx((0.2 + 3.0) * 0.5)

    def test_idle_capacity_is_providers_cost_not_customers(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=100.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            yield env.timeout(50)
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        customer = platform.billed_gb_s
        assert customer == pytest.approx(2 * 0.2 * 0.5)
        assert platform.idle_gb_s > 0  # the provider's keep-alive burn


class TestBoundedQueueing:
    def test_queue_holds_overflow_until_capacity_frees(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=0.0,
                                 concurrency_limit=2, queue_capacity=4)
        outcomes = []

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(4)]
            for ev in events:
                inv = yield ev
                outcomes.append(inv)

        env.run(until=env.process(scenario(env, platform)))
        # With a queue, nothing is rejected: the two overflow invocations
        # wait for instances instead.
        assert all(not i.rejected and not i.shed for i in outcomes)
        assert len(platform.completed("f")) == 4
        waits = sorted(i.start_time - i.submit_time for i in outcomes)
        assert waits[:2] == [0.0, 0.0]
        assert all(w > 0 for w in waits[2:])

    def test_queue_overflow_is_rejected_not_unbounded(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=0.0,
                                 concurrency_limit=1, queue_capacity=2)

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(5)]
            invs = []
            for ev in events:
                invs.append((yield ev))
            return invs

        invs = env.run(until=env.process(scenario(env, platform)))
        rejected = [i for i in invs if i.rejected]
        assert len(rejected) == 2  # 1 running + 2 queued + 2 overflow
        assert len(platform.completed("f")) == 3

    def test_zero_capacity_keeps_historical_reject(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=0.5, concurrency_limit=2)
        assert platform.pressure("f") == 0.0

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(3)]
            invs = []
            for ev in events:
                invs.append((yield ev))
            return invs

        invs = env.run(until=env.process(scenario(env, platform)))
        assert sum(1 for i in invs if i.rejected) == 1


class TestShedAccounting:
    def _platform_with_admitter(self, env, rate_per_s=1.0, burst=2.0):
        from repro.resilience import TokenBucketAdmitter
        platform = FaaSPlatform(
            env, PlatformConfig(cold_start_s=0.0),
            admitter=TokenBucketAdmitter(env, rate_per_s=rate_per_s,
                                         burst=burst))
        platform.deploy(FunctionSpec("f", runtime_s=0.2, memory_gb=0.5))
        return platform

    def test_shed_invocations_resolve_immediately_and_count(self):
        env = Environment()
        platform = self._platform_with_admitter(env, burst=2.0)

        def scenario(env, platform):
            invs = []
            for _ in range(4):  # all at t=0: 2 admitted, 2 shed
                invs.append((yield platform.invoke("f")))
            return invs

        invs = env.run(until=env.process(scenario(env, platform)))
        shed = [i for i in invs if i.shed]
        assert len(shed) == 2
        # A shed invocation resolves instantly, was never started, and
        # costs nothing.
        assert all(i.start_time is None and i.finish_time is None
                   for i in shed)
        assert platform.shed("f") == shed
        assert platform.shed_fraction("f") == pytest.approx(0.5)
        assert platform.monitor.counters["shed"].total == 2

    def test_sheds_count_against_availability_and_slo(self):
        env = Environment()
        platform = self._platform_with_admitter(env, burst=2.0)

        def scenario(env, platform):
            for _ in range(4):
                yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        assert platform.failure_fraction("f") == pytest.approx(0.5)
        assert platform.slo_attainment(10.0, "f") == pytest.approx(0.5)
        # Sheds never ran, so they can't skew the cold-start ratio.
        assert platform.cold_start_fraction("f") == pytest.approx(0.5)

    def test_brownout_critical_sheds_everything(self):
        from repro.resilience import BrownoutController, ServiceMode
        env = Environment()
        controller = BrownoutController(degraded_enter=0.5,
                                        degraded_exit=0.4,
                                        critical_enter=0.9,
                                        critical_exit=0.5)
        platform = FaaSPlatform(
            env, PlatformConfig(cold_start_s=0.0, concurrency_limit=1),
            brownout=controller)
        platform.deploy(FunctionSpec("f", runtime_s=0.2, memory_gb=0.5))

        def scenario(env, platform):
            first = platform.invoke("f")
            yield env.timeout(0.1)  # let it occupy the only instance
            # The running invocation saturates the limit: pressure 1.0
            # puts the controller in CRITICAL, shedding the newcomer.
            second = yield platform.invoke("f")
            assert second.shed
            assert controller.mode is ServiceMode.CRITICAL
            yield first

        env.run(until=env.process(scenario(env, platform)))
