"""Tests for the FaaS platform."""

import pytest

from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Environment


def make_platform(env, **config_kwargs):
    platform = FaaSPlatform(env, PlatformConfig(**config_kwargs))
    platform.deploy(FunctionSpec("f", runtime_s=0.2, memory_gb=0.5))
    return platform


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", runtime_s=0)
        with pytest.raises(ValueError):
            FunctionSpec("f", runtime_s=1, memory_gb=0)


class TestLifecycle:
    def test_deploy_undeploy(self):
        env = Environment()
        platform = make_platform(env)
        assert "f" in platform.functions
        with pytest.raises(ValueError):
            platform.deploy(FunctionSpec("f", runtime_s=1))
        platform.undeploy("f")
        with pytest.raises(KeyError):
            platform.undeploy("f")

    def test_invoke_unknown_function(self):
        env = Environment()
        platform = FaaSPlatform(env)
        with pytest.raises(KeyError):
            platform.invoke("ghost")


class TestColdWarm:
    def test_first_invocation_is_cold(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=2.0)
        results = {}

        def scenario(env, platform):
            inv = yield platform.invoke("f")
            results["first"] = inv
            inv = yield platform.invoke("f")
            results["second"] = inv

        env.run(until=env.process(scenario(env, platform)))
        assert results["first"].cold
        assert not results["second"].cold
        assert results["first"].latency == pytest.approx(2.2)
        assert results["second"].latency == pytest.approx(0.2)

    def test_concurrent_burst_spawns_instances(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0)

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(5)]
            for ev in events:
                yield ev

        env.run(until=env.process(scenario(env, platform)))
        assert platform.pool_size("f") == 5
        assert platform.cold_start_fraction("f") == 1.0

    def test_prewarming_removes_cold_starts(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=2.0, prewarmed=3)

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(3)]
            for ev in events:
                inv = yield ev
                assert not inv.cold

        env.run(until=env.process(scenario(env, platform)))
        assert platform.cold_start_fraction() == 0.0

    def test_keep_alive_reaps_idle_instances(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=60.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            assert platform.pool_size("f") == 1
            yield env.timeout(300)
            # Instance reaped; next call is cold again.
            inv = yield platform.invoke("f")
            assert inv.cold

        env.run(until=env.process(scenario(env, platform)))

    def test_warm_within_keep_alive(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=600.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            yield env.timeout(120)
            inv = yield platform.invoke("f")
            assert not inv.cold

        env.run(until=env.process(scenario(env, platform)))


class TestConcurrencyLimit:
    def test_over_limit_rejected(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=0.5,
                                 concurrency_limit=2)
        rejected = []

        def scenario(env, platform):
            events = [platform.invoke("f") for _ in range(4)]
            for ev in events:
                inv = yield ev
                if inv.rejected:
                    rejected.append(inv)

        env.run(until=env.process(scenario(env, platform)))
        assert len(rejected) == 2
        assert platform.monitor.counters["rejections"].total == 2


class TestBilling:
    def test_pay_only_for_runtime(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=3.0,
                                 bill_cold_start=False)

        def scenario(env, platform):
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        # runtime 0.2 s × 0.5 GB.
        assert platform.billed_gb_s == pytest.approx(0.1)
        assert platform.cost() == pytest.approx(
            0.1 * platform.config.price_per_gb_s)

    def test_cold_start_billing_toggle(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=3.0,
                                 bill_cold_start=True)

        def scenario(env, platform):
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        assert platform.billed_gb_s == pytest.approx((0.2 + 3.0) * 0.5)

    def test_idle_capacity_is_providers_cost_not_customers(self):
        env = Environment()
        platform = make_platform(env, cold_start_s=1.0, keep_alive_s=100.0)

        def scenario(env, platform):
            yield platform.invoke("f")
            yield env.timeout(50)
            yield platform.invoke("f")

        env.run(until=env.process(scenario(env, platform)))
        customer = platform.billed_gb_s
        assert customer == pytest.approx(2 * 0.2 * 0.5)
        assert platform.idle_gb_s > 0  # the provider's keep-alive burn
