"""Tests for durable workflow execution: journal replay and idempotency."""

import pytest

from repro.faults.models import CrashRestart
from repro.recovery import Journal
from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.serverless.durable import DurableWorkflowEngine
from repro.serverless.workflow import FunctionWorkflow
from repro.sim import Environment, RandomStreams


def make_stack(env, functions, append_cost_s=0.05,
               replay_cost_per_record_s=0.01, restart_cost_s=0.5):
    platform = FaaSPlatform(env, PlatformConfig(cold_start_s=0.2,
                                                keep_alive_s=600.0))
    for name, runtime in functions:
        platform.deploy(FunctionSpec(name, runtime_s=runtime))
    journal = Journal(env, append_cost_s=append_cost_s,
                      replay_cost_per_record_s=replay_cost_per_record_s)
    engine = DurableWorkflowEngine(env, platform, journal,
                                   restart_cost_s=restart_cost_s)
    return platform, journal, engine


CHAIN = [(f, 2.0) for f in "abcdef"]


def crash_engine(env, engine, at_s, down_s):
    def driver():
        yield env.timeout(at_s)
        engine.fail()
        yield env.timeout(down_s)
        engine.repair()
    env.process(driver())


class TestHappyPath:
    def test_no_crash_runs_like_plain_engine(self):
        env = Environment()
        _, journal, engine = make_stack(env, CHAIN)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])
        run = env.run(until=engine.submit(wf, key="r1"))
        assert run.succeeded and run.attempts == 1
        assert run.steps_replayed == 0
        assert run.invocations_issued == 6
        assert engine.dedup_suppressed == 0
        assert journal.appended == 6  # one step_done per step
        # Every side-effect executed exactly once, even without dedup.
        assert all(engine.effects[("r1", s)] == 1 for s in wf.functions)


class TestCrashRecovery:
    def test_replay_skips_durably_journaled_steps(self):
        env = Environment()
        _, journal, engine = make_stack(env, CHAIN)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])
        done = engine.submit(wf, key="r1")
        # Steps finish at ~2.2s intervals; crash at 7.0 is mid-step-4
        # with steps 0-2 durably journaled.
        crash_engine(env, engine, at_s=7.0, down_s=5.0)
        run = env.run(until=done)
        assert run.succeeded
        assert run.attempts == 2
        assert run.orchestrator_crashes == 1
        assert run.steps_replayed == 3
        # 6 firsts + 1 re-execution of the in-flight step.
        assert run.invocations_issued == 7

    def test_effectively_once_despite_at_least_once(self):
        env = Environment()
        _, _, engine = make_stack(env, CHAIN)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])
        done = engine.submit(wf, key="r1")
        crash_engine(env, engine, at_s=7.0, down_s=5.0)
        env.run(until=done)
        run = engine.runs[0]
        # At-least-once: the in-flight step's function ran twice.
        assert max(engine.effects.values()) == 2
        # Idempotency dedup absorbs exactly the duplicates...
        assert engine.dedup_suppressed == run.invocations_issued - len(wf)
        # ...so effectively-once end to end.
        assert all(engine.effective_effect_count("r1", s) == 1
                   for s in wf.functions)

    def test_journal_saves_equal_replayed_steps(self):
        # The acceptance identity: re-invocations saved by the journal
        # are exactly the steps it replayed.
        env = Environment()
        _, _, engine = make_stack(env, CHAIN)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])
        done = engine.submit(wf, key="r1")
        crash_engine(env, engine, at_s=7.0, down_s=5.0)
        env.run(until=done)
        run = engine.runs[0]
        # Without the journal, attempt 2 would re-invoke all 6 steps;
        # with it, it issued (6 - replayed) + nothing extra.
        reissued = run.invocations_issued - len(wf)
        assert reissued == (len(wf) - run.steps_replayed
                            - 2)  # 2 steps hadn't started at the crash
        assert run.steps_replayed == 3

    def test_crash_in_durability_window_reexecutes_step(self):
        env = Environment()
        # Huge append cost: records never durable before the crash.
        _, _, engine = make_stack(env, CHAIN, append_cost_s=100.0)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN[:3]])
        done = engine.submit(wf, key="r1")
        crash_engine(env, engine, at_s=5.0, down_s=2.0)
        run = env.run(until=done)
        assert run.succeeded
        # Nothing was durable: zero replays, completed steps re-ran.
        assert run.steps_replayed == 0
        assert engine.dedup_suppressed > 0
        assert all(engine.effective_effect_count("r1", s) == 1
                   for s in wf.functions)

    def test_two_crashes_still_terminate(self):
        env = Environment()
        _, _, engine = make_stack(env, CHAIN)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])

        def driver():
            yield env.timeout(5.0)
            engine.fail()
            yield env.timeout(2.0)
            engine.repair()
            yield env.timeout(3.0)
            engine.fail()
            yield env.timeout(2.0)
            engine.repair()
        env.process(driver())
        run = env.run(until=engine.submit(wf, key="r1"))
        assert run.succeeded
        assert run.orchestrator_crashes == 2
        assert run.attempts == 3
        assert all(engine.effective_effect_count("r1", s) == 1
                   for s in wf.functions)


class TestUnderCrashRestart:
    @pytest.mark.parametrize("seed", [7, 19, 42])
    def test_effectively_once_under_random_crashes(self, seed):
        streams = RandomStreams(seed)
        env = Environment()
        _, _, engine = make_stack(env, CHAIN)
        CrashRestart(env, [engine], streams.get("orchestrator-crash"),
                     mtbf_s=15.0, mttr_s=3.0)
        wf = FunctionWorkflow.chain("p", [f for f, _ in CHAIN])
        run = env.run(until=engine.submit(wf, key=f"r{seed}"))
        assert run.succeeded
        assert all(engine.effective_effect_count(f"r{seed}", s) == 1
                   for s in wf.functions)
        # Dedup absorbed every duplicate execution.
        raw = sum(engine.effects.values())
        assert raw - len(wf) == engine.dedup_suppressed

    def test_undeployed_function_rejected(self):
        env = Environment()
        _, _, engine = make_stack(env, [("a", 1.0)])
        wf = FunctionWorkflow.chain("c", ["a", "ghost"])
        with pytest.raises(KeyError):
            engine.submit(wf, key="r1")
