"""Tests for Pocket-style ephemeral storage ([104], [96])."""

import pytest

from repro.serverless.storage import (
    AnalyticsJob,
    TIERS,
    allocate_pocket,
    allocate_single_tier,
    storage_study,
)


def job(name="j", data_gb=100.0, throughput_mbps=2000.0,
        lifetime_s=120.0):
    return AnalyticsJob(name=name, data_gb=data_gb,
                        throughput_mbps=throughput_mbps,
                        lifetime_s=lifetime_s)


class TestTiers:
    def test_hierarchy(self):
        assert (TIERS["dram"].throughput_per_gb
                > TIERS["nvme"].throughput_per_gb
                > TIERS["hdd"].throughput_per_gb)
        assert (TIERS["dram"].cost_per_gb_hour
                > TIERS["nvme"].cost_per_gb_hour
                > TIERS["hdd"].cost_per_gb_hour)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            job(data_gb=0)


class TestSingleTier:
    def test_capacity_sized(self):
        alloc = allocate_single_tier(job(data_gb=100,
                                         throughput_mbps=100), "nvme")
        assert alloc.capacity_gb == 100.0
        assert alloc.meets_requirements

    def test_throughput_sized_when_binding(self):
        # hdd: 2 MB/s per GB; 2000 MB/s needs 1000 GB >> 100 GB data.
        alloc = allocate_single_tier(job(data_gb=100,
                                         throughput_mbps=2000), "hdd")
        assert alloc.capacity_gb == 1000.0
        assert alloc.meets_requirements

    def test_dram_only_is_expensive(self):
        j = job()
        dram = allocate_single_tier(j, "dram")
        nvme = allocate_single_tier(j, "nvme")
        assert dram.cost > nvme.cost

    def test_stall_factor(self):
        j = job(data_gb=10, throughput_mbps=100)
        # Force an undersized allocation manually.
        from repro.serverless.storage import Allocation
        alloc = Allocation(job=j, per_tier_gb={"hdd": 10.0})  # 20 MB/s
        assert alloc.stall_factor == pytest.approx(5.0)
        assert not alloc.meets_requirements


class TestPocket:
    def test_meets_requirements(self):
        alloc = allocate_pocket(job())
        assert alloc.meets_requirements
        assert alloc.capacity_gb >= 100.0 - 1e-9

    def test_cheaper_than_dram_only(self):
        j = job()
        pocket = allocate_pocket(j)
        dram = allocate_single_tier(j, "dram")
        assert pocket.cost < dram.cost

    def test_low_throughput_jobs_stay_on_cheap_tiers(self):
        j = job(data_gb=500, throughput_mbps=50)
        alloc = allocate_pocket(j)
        assert "dram" not in alloc.per_tier_gb
        assert alloc.meets_requirements

    def test_extreme_throughput_escalates_to_dram(self):
        j = job(data_gb=10, throughput_mbps=100_000)
        alloc = allocate_pocket(j)
        assert alloc.meets_requirements
        assert "dram" in alloc.per_tier_gb


class TestStudy:
    def _jobs(self):
        return [
            job("small-hot", data_gb=5, throughput_mbps=1500,
                lifetime_s=60),
            job("large-warm", data_gb=400, throughput_mbps=3000,
                lifetime_s=300),
            job("bulk-cold", data_gb=800, throughput_mbps=400,
                lifetime_s=600),
        ]

    def test_pocket_headline(self):
        """[96]'s result: Pocket meets every job's requirements at a
        fraction of DRAM-only cost, without the stalls of a cheap-only
        deployment sized to capacity."""
        study = storage_study(self._jobs())
        assert study["pocket"]["met_fraction"] == 1.0
        assert study["dram-only"]["met_fraction"] == 1.0
        assert study["pocket"]["total_cost"] < (
            0.6 * study["dram-only"]["total_cost"])
        assert study["pocket"]["mean_stall"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            storage_study([])
