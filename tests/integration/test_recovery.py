"""Integration tests for the recovery subsystem: determinism + acceptance.

Pins the PR's acceptance criteria end to end: `run_recovery_scenario`
is bit-deterministic at the event-trace level (2 runs x 3 seeds through
the DeterminismSanitizer), Daly-optimal checkpointing beats both
restart-from-scratch and over-frequent checkpointing, and the scheduler
recovery scenario loses nothing.
"""

import pytest

from repro.analysis.sanitizers import DeterminismSanitizer
from repro.faults.chaos import (
    run_recovery_scenario,
    run_scheduler_recovery_scenario,
)

SEEDS = (7, 19, 42)


class TestRecoveryScenarioDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_identical_across_runs(self, seed):
        sanitizer = DeterminismSanitizer(runs=2)
        digest = sanitizer.check(
            lambda: run_recovery_scenario(seed=seed, policy="daly",
                                          work_s=600.0, mtbf_s=150.0,
                                          corruption_p=0.05),
            label=f"recovery seed={seed}")
        assert len(digest) == 64

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scheduler_recovery_trace_identical(self, seed):
        sanitizer = DeterminismSanitizer(runs=2)
        sanitizer.check(
            lambda: run_scheduler_recovery_scenario(seed=seed, n_tasks=40),
            label=f"sched-recovery seed={seed}")

    def test_digests_distinct_across_seeds(self):
        sanitizer = DeterminismSanitizer(runs=2)
        digests = {
            sanitizer.check(
                lambda s=seed: run_recovery_scenario(
                    seed=s, policy="daly", work_s=600.0, mtbf_s=150.0))
            for seed in SEEDS
        }
        assert len(digests) == len(SEEDS)


class TestRecoveryScenarioOutcomes:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_daly_beats_no_checkpoint_under_heavy_faults(self, seed):
        """work >> MTBF: restart-from-scratch barely converges, the
        Young/Daly policy sails through. Same seed => same crash
        schedule (the injector draws independently of job progress)."""
        none = run_recovery_scenario(seed=seed, policy="none",
                                     work_s=1500.0, mtbf_s=200.0)
        daly = run_recovery_scenario(seed=seed, policy="daly",
                                     work_s=1500.0, mtbf_s=200.0)
        assert none["crashes"] > daly["crashes"]
        assert daly["makespan_s"] < none["makespan_s"]
        assert daly["lost_work_s"] < none["lost_work_s"]

    def test_interval_matches_daly_formula(self):
        result = run_recovery_scenario(seed=7, policy="daly",
                                       work_s=300.0, mtbf_s=500.0)
        assert result["interval_s"] == pytest.approx(
            result["daly_interval_s"])

    def test_adaptive_tracks_the_true_regime(self):
        # Starts from a 4x-wrong MTBF guess; after enough crashes its
        # interval moves toward the Daly optimum of the true MTBF.
        result = run_recovery_scenario(seed=19, policy="adaptive",
                                       work_s=3000.0, mtbf_s=150.0)
        assert result["crashes"] >= 2
        # Final interval within 2x of the true-optimum (guess was 2x off
        # in interval terms: sqrt(4) = 2).
        ratio = result["interval_s"] / result["daly_interval_s"]
        assert 0.5 < ratio < 2.0

    def test_corruption_forces_fallbacks_but_completes(self):
        result = run_recovery_scenario(seed=7, policy="periodic",
                                       interval_s=5.0, work_s=1500.0,
                                       mtbf_s=150.0, corruption_p=0.2)
        assert result["corrupt_fallbacks"] > 0
        assert result["makespan_s"] < 3 * result["work_s"]


class TestSchedulerRecoveryAcceptance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_zero_lost_completions_all_orphans_requeued(self, seed):
        result = run_scheduler_recovery_scenario(seed=seed)
        assert result["completed"] == 80
        assert result["lost"] == 0
        assert result["scheduler_crashes"] == 1
        assert result["recovered_completions"] > 0
        # Machine faults at MTBF 150s during a 60s outage orphan victims
        # on every seed we pin; all of them get requeued.
        assert result["orphans_requeued"] > 0
        assert result["journal_replays"] == 1

    def test_journaled_recovery_matches_uncrashed_completion_count(self):
        crashed = run_scheduler_recovery_scenario(seed=7)
        baseline = run_scheduler_recovery_scenario(seed=7, journaled=False,
                                                   machine_mtbf_s=None)
        assert crashed["completed"] == baseline["completed"] == 80
