"""Acceptance test for the fault-injection & resilience subsystem.

The ISSUE's contract: with faults on and resilience off, SLO attainment
measurably degrades; with retry (serverless) and requeue (scheduling) it
recovers to >= 95% of the fault-free baseline; and everything replays
deterministically under a fixed seed.
"""

from repro.faults.chaos import (
    run_chaos_matrix,
    run_scheduling_scenario,
    run_serverless_scenario,
)

SEED = 7


class TestServerlessRecovery:
    def test_degradation_and_recovery(self):
        baseline = run_serverless_scenario(seed=SEED, error_rate=0.0)
        degraded = run_serverless_scenario(seed=SEED, error_rate=0.3,
                                           retry=False)
        recovered = run_serverless_scenario(seed=SEED, error_rate=0.3,
                                            retry=True)
        # Faults without a policy measurably hurt...
        assert degraded["slo_attainment"] <= 0.9 * baseline["slo_attainment"]
        # ...and retry+backoff buys the SLO back.
        assert (recovered["slo_attainment"]
                >= 0.95 * baseline["slo_attainment"])

    def test_deterministic_under_fixed_seed(self):
        a = run_serverless_scenario(seed=SEED, error_rate=0.3, retry=True)
        b = run_serverless_scenario(seed=SEED, error_rate=0.3, retry=True)
        assert a == b


class TestSchedulingRecovery:
    def test_degradation_and_recovery(self):
        baseline = run_scheduling_scenario(seed=SEED, mtbf_s=None)
        degraded = run_scheduling_scenario(seed=SEED, mtbf_s=400.0,
                                           requeue=False)
        recovered = run_scheduling_scenario(seed=SEED, mtbf_s=400.0,
                                            requeue=True)
        assert degraded["slo_attainment"] < baseline["slo_attainment"]
        assert (recovered["slo_attainment"]
                >= 0.95 * baseline["slo_attainment"])
        # The recovery is not free: restarts burn wasted core-seconds.
        assert recovered["wasted_core_s"] > 0

    def test_deterministic_under_fixed_seed(self):
        a = run_scheduling_scenario(seed=SEED, mtbf_s=400.0, requeue=True)
        b = run_scheduling_scenario(seed=SEED, mtbf_s=400.0, requeue=True)
        assert a == b


def test_full_matrix_is_deterministic():
    a = run_chaos_matrix(seed=3, serverless_error_rates=(0.0, 0.3),
                         scheduling_mtbfs=(None, 500.0))
    b = run_chaos_matrix(seed=3, serverless_error_rates=(0.0, 0.3),
                         scheduling_mtbfs=(None, 500.0))
    assert a.rows() == b.rows()
    assert [o.details for o in a.outcomes] == [o.details for o in b.outcomes]
