"""Acceptance: the replicated control plane survives losing its brain.

ISSUE 8's headline claims, each pinned per seed:

- the leader is partitioned away mid-run (while gray-failing) and a hot
  standby promotes within a small multiple of the lease TTL — from its
  shipped journal prefix, not a replay;
- at most one leader per term, audited live by the
  ``replication.at_most_one_leader_per_term`` law;
- the deposed leader's split-brain writes are *all* rejected at fenced
  machines and counted one-for-one
  (``replication.fenced_writes_rejected``);
- no task is lost or duplicated across the takeover.
"""

import pytest

from repro.faults.chaos import run_failover_scenario

SEEDS = (7, 19, 42)

#: Lease TTL 4s + detection + one campaign round; 15 s is generous
#: against the 90 s outage.
FAILOVER_WINDOW_S = 15.0


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def result(request):
    return run_failover_scenario(seed=request.param)


def test_zero_invariant_violations(result):
    assert result["invariant_checks"] > 500    # the auditor really looked
    assert result["invariant_violations"] == 0


def test_exactly_one_takeover(result):
    assert result["failovers"] == 1
    assert result["scheduler_crashes"] == 1
    assert result["final_leader"] in ("cp-1", "cp-2")
    assert result["final_term"] >= 2
    # One leader per term, end to end.
    assert result["promotions"] == result["terms_with_leader"]
    assert result["leader_timeline"][0] == [1, "cp-0"]


def test_standby_promotes_within_the_window(result):
    assert 0.0 < result["failover_mttr_s"] <= FAILOVER_WINDOW_S
    # Promotion started from the warm shipped prefix: at most a ship
    # tick's worth of tail records (lost to gray drops right at the cut)
    # was left to reconcile — not a journal-length replay.
    assert result["unshipped_at_promotion"] <= 5
    assert result["records_shipped"] > 0
    assert result["ship_acks"] > 0


def test_stale_leader_is_fenced_and_deposed(result):
    # The old leader kept writing on its dead lease; every write that
    # reached a machine bounced off the fence, counted one-for-one.
    assert result["stale_dispatches"] >= 1
    assert result["fenced_writes_rejected"] == result["stale_dispatches"]
    # The heal opens the old leader's outbound path at 150 s; its next
    # probe round is what finally deposes it.
    assert result["old_leader_deposed_at_s"] >= 150.0


def test_no_task_lost_across_the_takeover(result):
    assert result["lost"] == 0
    assert result["completed"] == result["admitted"]
    assert result["submitted"] == result["admitted"]


def test_chaos_actually_happened(result):
    assert result["messages_blocked"] > 0   # the partition bit
    assert result["messages_dropped"] > 0   # the gray failure bit
    assert result["elections"] >= 1
