"""Trace serialization is byte-identical across same-seed runs.

This is the property the golden corpus stands on: if two runs of the
same scenario under the same seed could differ by a byte, every golden
diff would be suspect. Each domain scenario is run twice in-process
(so process-global state — id counters, import order — differs between
the runs) and the canonical JSON must still match exactly.
"""

import pytest

from repro.observability import golden
from repro.observability.scenarios import SCENARIOS, run_scenario


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_same_seed_trace_is_byte_identical(name):
    tracer1, reg1, _ = run_scenario(name)
    tracer2, reg2, _ = run_scenario(name)
    assert tracer1.to_json() == tracer2.to_json()
    assert tracer1.digest() == tracer2.digest()
    assert reg1.snapshot() == reg2.snapshot()


def test_different_seed_changes_the_trace():
    # The digest is a behavior fingerprint, not a constant: perturbing
    # the seed must perturb at least one scenario's trace.
    digests_a = {n: golden.capture(n, seed=7)["digest"] for n in SCENARIOS}
    digests_b = {n: golden.capture(n, seed=8)["digest"] for n in SCENARIOS}
    assert any(digests_a[n] != digests_b[n] for n in SCENARIOS)


def test_full_document_serialization_is_byte_identical():
    for name in ("serverless", "recovery"):
        doc1 = golden.capture(name)
        doc2 = golden.capture(name)
        assert golden.document_json(doc1) == golden.document_json(doc2)
