"""The chaos harness under the determinism sanitizer (Challenge C3).

PR 1's chaos matrix promises "run the matrix twice and the tables are
identical". This pins that promise at the event-trace level: the exact
sequence of ``(t, eid, kind)`` dispatches — far stricter than comparing
summary tables — must match across same-seed runs, for several seeds.
"""

import pytest

from repro.analysis.sanitizers import DeterminismSanitizer
from repro.faults.chaos import (
    run_chaos_matrix,
    run_recovery_scenario,
    run_scheduling_scenario,
    run_serverless_scenario,
)

SEEDS = (7, 19, 42)


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_matrix_trace_identical_across_runs(seed):
    """examples/chaos_experiment.py's scenario, one fault level per domain."""
    sanitizer = DeterminismSanitizer(runs=2)
    digest = sanitizer.check(
        lambda: run_chaos_matrix(seed=seed,
                                 serverless_error_rates=(0.3,),
                                 scheduling_mtbfs=(500.0,)),
        label=f"chaos-matrix seed={seed}")
    assert len(digest) == 64
    assert sanitizer.digests[0].events > 1000  # a real workload ran


def test_chaos_matrix_digests_distinct_across_seeds():
    sanitizer = DeterminismSanitizer(runs=2)
    digests = {
        sanitizer.check(
            lambda s=seed: run_serverless_scenario(
                seed=s, error_rate=0.15, retry=True, n_invocations=60))
        for seed in SEEDS
    }
    assert len(digests) == len(SEEDS)


@pytest.mark.parametrize("seed", SEEDS)
def test_scheduling_scenario_trace_identical(seed):
    sanitizer = DeterminismSanitizer(runs=2)
    sanitizer.check(
        lambda: run_scheduling_scenario(seed=seed, mtbf_s=300.0,
                                        n_tasks=40, n_machines=4),
        label=f"scheduling seed={seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_scenario_trace_identical(seed):
    sanitizer = DeterminismSanitizer(runs=2)
    sanitizer.check(
        lambda: run_recovery_scenario(seed=seed, policy="daly",
                                      work_s=600.0, mtbf_s=150.0,
                                      corruption_p=0.05),
        label=f"recovery seed={seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_partition_scenario_trace_identical(seed):
    """The composed-ecosystem study: partitions, gray failures, crash
    recovery, autoscaling, and the invariant engine in one trace."""
    from repro.faults.chaos import run_partition_scenario
    sanitizer = DeterminismSanitizer(runs=2)
    sanitizer.check(
        lambda: run_partition_scenario(
            seed=seed, n_tasks=24, task_rate_per_s=1.0,
            n_invocations=30, invoke_rate_per_s=1.5),
        label=f"partition seed={seed}")
    assert sanitizer.digests[0].events > 1000  # a real composition ran


@pytest.mark.parametrize("seed", SEEDS)
def test_failover_scenario_trace_identical(seed):
    """The replicated-control-plane study: elections, journal shipping,
    fencing, and a mid-run takeover in one trace."""
    from repro.faults.chaos import run_failover_scenario
    sanitizer = DeterminismSanitizer(runs=2)
    sanitizer.check(
        lambda: run_failover_scenario(seed=seed),
        label=f"failover seed={seed}")
    assert sanitizer.digests[0].events > 1000  # a real composition ran
