"""Acceptance: the composed partition study keeps its books across seeds.

ISSUE 6's headline claims, each pinned per seed:

- zero invariant violations while a partition, two gray failures, and a
  scheduler crash are all active;
- every partitioned worker is suspected — as *silence* — within the
  detection window, while the gray (heartbeat-alive) worker is never
  declared dead;
- after the heal, scheduler state is fully reconciled: no task lost, no
  task duplicated;
- admission really shed during the squeeze, and the front door's own
  conservation held.
"""

import pytest

from repro.cluster import Cluster
from repro.faults.chaos import run_partition_scenario
from repro.faults.partition import NetworkPartitionModel, PartitionEpisode
from repro.scheduling import ClusterSimulator, FCFSPolicy
from repro.sim import Environment, Network
from repro.workload.task import Task

SEEDS = (7, 19, 42)

#: Heartbeats every ~1s, phi threshold 8, poll every 0.5s: a silent
#: worker should be suspected within a few beats. 15 simulated seconds
#: is generous; the partition itself lasts 100.
DETECTION_WINDOW_S = 15.0


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def result(request):
    return run_partition_scenario(seed=request.param)


def test_zero_invariant_violations(result):
    assert result["invariant_checks"] > 500    # the auditor really looked
    assert result["invariant_violations"] == 0


def test_partitioned_workers_suspected_within_window(result):
    latencies = result["minority_detection_latency_s"]
    assert sorted(latencies) == sorted(result["suspected_minority"])
    for name, latency in latencies.items():
        assert latency is not None, f"{name} never suspected"
        assert 0.0 <= latency <= DETECTION_WINDOW_S, (name, latency)


def test_partition_reads_as_silence_not_variance(result):
    assert result["suspicions_by_reason"]["silence"] >= 3
    assert result["suspicions_by_reason"]["variance"] == 0


def test_gray_worker_never_declared_dead(result):
    # Its heartbeats are protected — slow and lossy is not down.
    assert not result["gray_worker_suspected"]
    assert result["gray_worker"] not in result["suspected_minority"]


def test_scheduler_state_reconciles_after_heal(result):
    # No task lost: everything admitted eventually completed, exactly
    # once (a duplicate would overshoot completed; a loss would strand
    # the run or land in failed).
    assert result["lost"] == 0
    assert result["completed"] == result["admitted"]
    assert result["submitted"] == result["admitted"]
    assert result["messages_in_flight"] == 0


def test_chaos_actually_happened(result):
    # The run earned its acceptance: every fault fired.
    assert result["messages_blocked"] > 0       # partition bit
    assert result["messages_dropped"] > 0       # gray failures bit
    assert result["scheduler_crashes"] == 1     # the outage happened
    assert result["door_shed"] > 0              # admission shed in the squeeze
    assert result["offered"] == result["admitted"] + result["door_shed"]


def test_recovery_survived_the_composition(result):
    assert result["orphans_requeued"] + result["readopted"] \
        + result["recovered_completions"] > 0
    assert result["job_makespan_s"] > 0


class TestOneWayPartitions:
    """The two asymmetric halves of a real switch fault, end to end.

    A lean deterministic world (no RNG anywhere): two machines, the far
    one isolated by a one-way episode during [10, 60). A filler task
    pins the near machine, so the probe work *must* cross the cut — in
    one direction per test — and the scheduler's completion-report /
    dispatch machinery has to absorb exactly the half that is severed.
    """

    def _world(self, direction):
        env = Environment()
        cluster = Cluster.homogeneous("oneway", 2, cores=4)
        far = cluster.machines[1].name
        network = Network(env)
        network.attach(NetworkPartitionModel(
            env, groups={"far": [far]},
            episodes=[PartitionEpisode(10.0, 60.0, "far", direction)]))
        sim = ClusterSimulator(env, cluster, FCFSPolicy(),
                               network=network, node_name="scheduler",
                               report_retry_s=2.0, dispatch_timeout_s=5.0)
        return env, sim, network

    def test_outbound_cut_loses_reports_not_dispatches(self):
        """``outbound``: the far machine shouts into the void — its
        completion report is refused until the heal, while dispatches
        *to* it still flow."""
        env, sim, network = self._world("outbound")
        # Pin the near machine for the whole episode.
        sim.submit_task(Task(work=200.0, cores=4))
        # The probe lands on the far machine at t=0 and finishes at
        # t=30 — mid-episode, so its report home is blocked.
        probe = Task(work=30.0, cores=4)
        sim.submit_task(probe)
        sim.close_submissions()
        env.run(until=40.0)
        # Ground truth moved on; the scheduler's belief lags behind.
        assert probe.state.name == "DONE"
        assert probe.task_id in sim._pending_reports
        assert probe.task_id in sim.running
        assert sim.monitor.counters["lost_reports"].total > 0
        env.run(until=sim._scheduler)
        # Post-heal the retry loop drains the ledger: nothing lost.
        assert not sim._pending_reports
        assert len(sim.finished) == sim.submitted == 2
        assert network.by_kind["report"]["blocked"] > 0
        assert network.by_kind["dispatch"]["blocked"] == 0
        assert sim.misdispatches == 0

    def test_inbound_cut_loses_dispatches_not_reports(self):
        """``inbound``: the far machine hears nothing — dispatches to it
        limbo out as misdispatches — but a task it started *before* the
        cut still reports home through the open half."""
        env, sim, network = self._world("inbound")
        sim.submit_task(Task(work=200.0, cores=4))
        # probe_a starts on the far machine at t=0 and finishes at t=30
        # (mid-episode): inbound lets its report through.
        probe_a = Task(work=30.0, cores=4)
        sim.submit_task(probe_a)

        def late_probe(env):
            yield env.timeout(12.0)
            sim.submit_task(Task(work=30.0, cores=4))
            sim.close_submissions()

        env.process(late_probe(env))
        env.run(until=40.0)
        # probe_a's report crossed the open half immediately.
        assert probe_a.task_id not in sim._pending_reports
        assert any(t.task_id == probe_a.task_id for t in sim.finished)
        assert network.by_kind["report"]["blocked"] == 0
        # probe_b's dispatch hit the severed half: limbo -> misdispatch
        # -> requeue, paced by the dispatch timeout until the heal.
        assert sim.misdispatches >= 1
        assert network.by_kind["dispatch"]["blocked"] >= 1
        env.run(until=sim._scheduler)
        assert len(sim.finished) == sim.submitted == 3
        assert not sim.failed and not sim._limbo
