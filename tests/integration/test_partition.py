"""Acceptance: the composed partition study keeps its books across seeds.

ISSUE 6's headline claims, each pinned per seed:

- zero invariant violations while a partition, two gray failures, and a
  scheduler crash are all active;
- every partitioned worker is suspected — as *silence* — within the
  detection window, while the gray (heartbeat-alive) worker is never
  declared dead;
- after the heal, scheduler state is fully reconciled: no task lost, no
  task duplicated;
- admission really shed during the squeeze, and the front door's own
  conservation held.
"""

import pytest

from repro.faults.chaos import run_partition_scenario

SEEDS = (7, 19, 42)

#: Heartbeats every ~1s, phi threshold 8, poll every 0.5s: a silent
#: worker should be suspected within a few beats. 15 simulated seconds
#: is generous; the partition itself lasts 100.
DETECTION_WINDOW_S = 15.0


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def result(request):
    return run_partition_scenario(seed=request.param)


def test_zero_invariant_violations(result):
    assert result["invariant_checks"] > 500    # the auditor really looked
    assert result["invariant_violations"] == 0


def test_partitioned_workers_suspected_within_window(result):
    latencies = result["minority_detection_latency_s"]
    assert sorted(latencies) == sorted(result["suspected_minority"])
    for name, latency in latencies.items():
        assert latency is not None, f"{name} never suspected"
        assert 0.0 <= latency <= DETECTION_WINDOW_S, (name, latency)


def test_partition_reads_as_silence_not_variance(result):
    assert result["suspicions_by_reason"]["silence"] >= 3
    assert result["suspicions_by_reason"]["variance"] == 0


def test_gray_worker_never_declared_dead(result):
    # Its heartbeats are protected — slow and lossy is not down.
    assert not result["gray_worker_suspected"]
    assert result["gray_worker"] not in result["suspected_minority"]


def test_scheduler_state_reconciles_after_heal(result):
    # No task lost: everything admitted eventually completed, exactly
    # once (a duplicate would overshoot completed; a loss would strand
    # the run or land in failed).
    assert result["lost"] == 0
    assert result["completed"] == result["admitted"]
    assert result["submitted"] == result["admitted"]
    assert result["messages_in_flight"] == 0


def test_chaos_actually_happened(result):
    # The run earned its acceptance: every fault fired.
    assert result["messages_blocked"] > 0       # partition bit
    assert result["messages_dropped"] > 0       # gray failures bit
    assert result["scheduler_crashes"] == 1     # the outage happened
    assert result["door_shed"] > 0              # admission shed in the squeeze
    assert result["offered"] == result["admitted"] + result["door_shed"]


def test_recovery_survived_the_composition(result):
    assert result["orphans_requeued"] + result["readopted"] \
        + result["recovered_completions"] > 0
    assert result["job_makespan_s"] > 0
