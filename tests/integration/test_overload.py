"""Acceptance tests for the graceful-degradation layer (PR-3).

The contract from the issue: (1) the phi detector suspects a crashed
machine within a configured window and never falsely suspects a healthy
one across seeds; (2) under overload, admission control buys strictly
higher SLO-goodput and a strictly lower p99 for the requests it serves;
(3) the overload scenario is bit-reproducible.
"""

import pytest

from repro.analysis import DeterminismSanitizer
from repro.faults.chaos import (
    run_detection_scenario,
    run_overload_scenario,
    run_scheduling_scenario,
)

DETECTION_WINDOW_S = 15.0


class TestDetection:
    def test_crashed_machine_suspected_within_window(self):
        result = run_detection_scenario(seed=0, crash=True, crash_at_s=30.0)
        assert "m0" in result["suspects"]
        assert result["detection_latency_s"] is not None
        assert 0.0 < result["detection_latency_s"] <= DETECTION_WINDOW_S

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fault_free_run_has_zero_false_suspicions(self, seed):
        result = run_detection_scenario(seed=seed, crash=False)
        assert result["suspects"] == []
        assert result["suspicions"] == 0
        assert result["false_suspicions"] == 0
        assert result["heartbeats_suppressed"] == 0

    def test_detection_is_deterministic(self):
        a = run_detection_scenario(seed=5)
        b = run_detection_scenario(seed=5)
        assert a == b


class TestOverload:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_admission_buys_goodput_and_tail(self, seed):
        raw = run_overload_scenario(seed=seed, admission=False)
        admitted = run_overload_scenario(seed=seed, admission=True)
        # Strictly higher useful throughput despite serving fewer requests.
        assert admitted["goodput_per_s"] > raw["goodput_per_s"]
        # Strictly lower tail for the requests actually admitted.
        assert admitted["p99_latency_s"] < raw["p99_latency_s"]
        # And the sheds are visible, first-class outcomes.
        assert admitted["shed"] > 0
        assert admitted["shed_fraction"] > 0.0
        assert (admitted["completed"] + admitted["shed"]
                + admitted["rejected"] <= admitted["invocations"])

    def test_raw_overload_overflows_the_bounded_queue(self):
        raw = run_overload_scenario(seed=0, admission=False)
        assert raw["rejected"] > 0  # overflow is explicit, never silent
        assert raw["shed"] == 0

    def test_overload_scenario_is_deterministic(self):
        DeterminismSanitizer(runs=2).check(
            lambda: run_overload_scenario(seed=3, admission=True),
            label="overload+admission")
        DeterminismSanitizer(runs=2).check(
            lambda: run_overload_scenario(seed=3, admission=False),
            label="overload raw")


class TestHealthAwareScheduling:
    def test_health_aware_crashes_still_complete(self):
        result = run_scheduling_scenario(seed=1, mtbf_s=400.0,
                                         health_aware=True)
        assert result["slo_attainment"] == 1.0  # requeue loses nothing
        assert result["completed"] == 120
        # De-omnisciencing has a measurable cost: some dispatches raced
        # a crash and were lost for the dispatch timeout.
        assert result["misdispatches"] >= 0
        assert result["suspicions"] > 0

    def test_health_aware_without_faults_matches_clean_run(self):
        plain = run_scheduling_scenario(seed=2, mtbf_s=None)
        aware = run_scheduling_scenario(seed=2, mtbf_s=None,
                                        health_aware=True)
        # No crashes: the detector never interferes with placement.
        assert aware["misdispatches"] == 0
        assert aware["false_suspicions"] == 0
        assert aware["completed"] == plain["completed"]
        assert aware["makespan_s"] == pytest.approx(plain["makespan_s"])

    def test_health_aware_is_deterministic(self):
        a = run_scheduling_scenario(seed=4, mtbf_s=300.0, health_aware=True)
        b = run_scheduling_scenario(seed=4, mtbf_s=300.0, health_aware=True)
        assert a == b
