"""Integration tests: the packages composed the way the paper uses them."""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import (
    BasicDesignCycle,
    DesignProblem,
    DesignSpace,
    Dimension,
    Stage,
    StoppingCriterion,
)
from repro.scheduling import ClusterSimulator, FCFSPolicy, SJFPolicy, simulate_schedule
from repro.scheduling.policies import make_policy
from repro.sim import Environment, RandomStreams
from repro.workload import BagOfTasks, Task, TraceArchive, TraceArrivals
from repro.workload.generators import generate_bot_workload


class TestFailureAwareScheduling:
    """Failure injection composed with the cluster simulator: tasks on
    failed machines restart and the schedule still completes."""

    def _run(self, mtbf_s):
        env = Environment()
        cluster = Cluster.homogeneous("c", 8, cores=2)
        sim = ClusterSimulator(env, cluster, FCFSPolicy())
        rng = RandomStreams(seed=5).get("failures")
        injector = FailureInjector(env, cluster, rng, mtbf_s=mtbf_s,
                                   mttr_s=30.0,
                                   on_failure=sim.handle_machine_failure)
        jobs = []
        for i in range(6):
            tasks = [Task(work=100.0) for _ in range(4)]
            for t in tasks:
                t.runtime_estimate = 100.0
            jobs.append(BagOfTasks(tasks, submit_time=float(i * 20)))
        sim.submit_jobs(jobs)
        # Run until all tasks complete (injector processes never end).
        horizon = 0.0
        while not sim.all_done:
            horizon += 2000.0
            if horizon > 100_000:
                pytest.fail("schedule did not complete under failures")
            env.run(until=horizon)
        return sim, injector

    def test_all_tasks_complete_despite_failures(self):
        sim, injector = self._run(mtbf_s=400.0)
        assert len(sim.finished) == 24
        assert injector.failures > 0
        assert sim.restarts > 0
        metrics = sim.metrics()
        assert metrics.n_tasks == 24

    def test_no_failures_no_restarts(self):
        sim, injector = self._run(mtbf_s=10**9)
        assert sim.restarts == 0
        assert injector.failures == 0

    def test_failures_extend_makespan(self):
        healthy, _ = self._run(mtbf_s=10**9)
        failing, _ = self._run(mtbf_s=300.0)
        assert failing.metrics().makespan_s > healthy.metrics().makespan_s


class TestDesignFrameworkDrivesExperiments:
    """The paper's own loop: the BDC explores a design space whose
    quality function is a scheduling simulation (Challenge C3)."""

    def test_bdc_finds_satisficing_scheduler_config(self):
        space = DesignSpace([
            Dimension("policy", ("fcfs", "sjf", "ljf")),
            Dimension("machines", ("2", "6")),
        ])
        streams = RandomStreams(seed=9)

        def quality(candidate):
            rng = streams.spawn(str(sorted(candidate.choices))).get("w")
            jobs = generate_bot_workload(rng, n_jobs=6,
                                         horizon_s=30 * 86400)
            cluster = Cluster.homogeneous(
                "dc", int(candidate["machines"]), cores=2)
            policy = make_policy(candidate["policy"], rng)
            metrics = simulate_schedule(jobs, cluster, policy)
            return 1.0 / metrics.mean_bounded_slowdown

        problem = DesignProblem("sched-config", space, quality=quality,
                                satisfice_threshold=0.2)
        rng = streams.get("bdc")

        def design_stage(context):
            candidate = space.random_candidate(rng)
            q = problem.evaluate(candidate)
            return (candidate, q) if q >= problem.satisfice_threshold \
                else None

        cycle = BasicDesignCycle(
            "sched-config", handlers={Stage.DESIGN: design_stage},
            target=StoppingCriterion.SATISFICED, budget=20)
        result = cycle.run()
        assert result.stopped_by is StoppingCriterion.SATISFICED
        candidate, q = result.answers[0]
        assert q >= 0.2
        assert candidate["policy"] in ("fcfs", "sjf", "ljf")
        # Provenance recorded for the whole exploration.
        assert result.document.executed()


class TestTraceArchiveRoundTripAcrossDomains:
    """FAIR dissemination: a P2P swarm's trace replayed as workload
    arrivals for a scheduling experiment — data moving between domains
    through the archive format."""

    def test_swarm_arrivals_drive_scheduler(self, tmp_path):
        from repro.p2p import ContentDescriptor, SwarmConfig, Tracker, run_swarm
        from repro.workload.arrivals import PoissonArrivals

        streams = RandomStreams(seed=12)
        config = SwarmConfig(content=ContentDescriptor("m", "f", 20.0),
                             horizon_s=3600.0, seed_linger_s=120)
        result = run_swarm(config, Tracker("t"), streams.get("swarm"),
                           PoissonArrivals(1 / 60.0, streams.get("arr")))
        archive = TraceArchive("swarm-arrivals", domain="p2p",
                               instrument="swarm-simulator")
        for peer in result.peers:
            if peer.arrival_time >= 0:
                archive.add(peer.arrival_time, "peer_join",
                            f"peer-{peer.peer_id}")
        path = archive.save(tmp_path / "swarm.jsonl")

        loaded = TraceArchive.load(path)
        arrivals = TraceArrivals(
            [r.time for r in loaded.of_kind("peer_join")])
        jobs = []
        for t_arr in arrivals.times(3600.0):
            task = Task(work=30.0)
            task.runtime_estimate = 30.0
            jobs.append(BagOfTasks([task], submit_time=t_arr))
        assert jobs, "no arrivals crossed the archive boundary"
        metrics = simulate_schedule(jobs, Cluster.homogeneous("c", 2),
                                    SJFPolicy())
        assert metrics.n_tasks == len(jobs)


class TestMonitoredAutoscaledServerless:
    """The serverless platform under a diurnal MMOG-style load: demand
    comes from one domain package, execution from another."""

    def test_diurnal_invocations_on_faas(self):
        from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
        from repro.workload.arrivals import DiurnalArrivals

        streams = RandomStreams(seed=14)
        env = Environment()
        platform = FaaSPlatform(env, PlatformConfig(cold_start_s=1.0,
                                                    keep_alive_s=1200.0))
        platform.deploy(FunctionSpec("matchmaker", runtime_s=0.5))
        arrivals = list(DiurnalArrivals(
            base_rate=1 / 120.0, rng=streams.get("arr"),
            amplitude=0.9).times(6 * 3600.0))

        def driver(env):
            last = 0.0
            for t in arrivals:
                yield env.timeout(t - last)
                last = t
                platform.invoke("matchmaker")
            # Drain.
            yield env.timeout(30.0)

        env.run(until=env.process(driver(env)))
        completed = platform.completed("matchmaker")
        assert len(completed) == len(arrivals)
        # Bursty diurnal peaks re-use warm instances: cold fraction < 1.
        assert platform.cold_start_fraction("matchmaker") < 0.9
        assert platform.cost() > 0
