"""Tests for straggler mitigation via hedging in graph analytics."""

import pytest

from repro.faults import Hedge, StragglerModel
from repro.graphalytics.robustness import run_jobs_with_stragglers
from repro.sim import RandomStreams


def _straggler(seed=5, probability=0.25, multiplier=8.0):
    return StragglerModel(RandomStreams(seed=seed).get("stragglers"),
                          probability=probability, multiplier=multiplier)


class TestStragglerRuns:
    def test_stragglers_inflate_the_tail(self):
        healthy = run_jobs_with_stragglers(
            [10.0] * 100, _straggler(probability=0.0))
        sick = run_jobs_with_stragglers([10.0] * 100, _straggler())
        assert healthy.p95_time_s == pytest.approx(10.0)
        assert sick.p95_time_s == pytest.approx(80.0)
        assert sick.stragglers > 0

    def test_hedging_recovers_the_tail(self):
        sick = run_jobs_with_stragglers([10.0] * 100, _straggler())
        hedged = run_jobs_with_stragglers(
            [10.0] * 100, _straggler(), hedge=Hedge(delay_s=12.0))
        # The duplicate attempt redraws its straggler fate, so the tail
        # collapses from 8x to roughly delay + runtime.
        assert hedged.p95_time_s < 0.4 * sick.p95_time_s
        assert hedged.hedge_wins > 0
        # Speculation costs duplicate work.
        assert hedged.attempts > hedged.n_jobs
        assert hedged.duplicate_work_fraction > 0.0

    def test_deterministic_under_seed(self):
        a = run_jobs_with_stragglers([5.0, 10.0, 20.0] * 10, _straggler(),
                                     hedge=Hedge(delay_s=12.0))
        b = run_jobs_with_stragglers([5.0, 10.0, 20.0] * 10, _straggler(),
                                     hedge=Hedge(delay_s=12.0))
        assert a == b

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_jobs_with_stragglers([], _straggler())


class TestSuperstepRecovery:
    def _env_with_store(self, interval_s=20.0):
        from repro.recovery import CheckpointStore, PeriodicCheckpoint
        from repro.sim import Environment
        env = Environment()
        store = CheckpointStore(env, tier="local")
        return env, PeriodicCheckpoint(interval_s), store

    def test_resumes_at_last_completed_superstep(self):
        from repro.graphalytics.robustness import run_supersteps_with_recovery
        env, policy, store = self._env_with_store(interval_s=20.0)
        rng = RandomStreams(19).get("crash")
        result = run_supersteps_with_recovery(
            30, 10.0, mtbf_s=120.0, mttr_s=10.0, rng=rng,
            policy=policy, store=store, env=env, algorithm="pagerank")
        assert result.crashes > 0
        assert result.restores > 0
        # Lost work is bounded by the checkpoint interval per crash (plus
        # the in-flight checkpoint write), never the whole run.
        assert result.lost_work_s < result.crashes * (20.0 + 1.0)
        assert result.lost_supersteps <= result.crashes * 2
        assert result.makespan_s < 2.0 * result.work_s

    def test_no_checkpointing_restarts_at_superstep_zero(self):
        from repro.graphalytics.robustness import run_supersteps_with_recovery
        from repro.sim import Environment
        rng = RandomStreams(19).get("crash")
        baseline = run_supersteps_with_recovery(
            30, 10.0, mtbf_s=120.0, mttr_s=10.0, rng=rng,
            env=Environment(), algorithm="pagerank")
        env, policy, store = self._env_with_store(interval_s=20.0)
        rng2 = RandomStreams(19).get("crash")  # same crash schedule
        ckpt = run_supersteps_with_recovery(
            30, 10.0, mtbf_s=120.0, mttr_s=10.0, rng=rng2,
            policy=policy, store=store, env=env, algorithm="pagerank")
        # Restart-from-zero loses far more work for the same faults.
        assert baseline.lost_work_s > ckpt.lost_work_s
        assert baseline.makespan_s > ckpt.makespan_s

    def test_superstep_profile_from_platform_run(self):
        import networkx as nx
        from repro.graphalytics.platforms import PLATFORMS
        from repro.graphalytics.robustness import superstep_profile
        graph = nx.erdos_renyi_graph(200, 0.05, seed=1)
        platform = PLATFORMS["cpu-distributed"]
        run = platform.run("pagerank", graph, "er200")
        n, per_step = superstep_profile(run)
        assert n == run.result.iterations >= 1
        assert per_step * n == pytest.approx(run.breakdown.compute_s)

    def test_validation(self):
        from repro.graphalytics.robustness import run_supersteps_with_recovery
        rng = RandomStreams(0).get("crash")
        with pytest.raises(ValueError):
            run_supersteps_with_recovery(0, 10.0, mtbf_s=100.0,
                                         mttr_s=10.0, rng=rng)
        with pytest.raises(ValueError):
            run_supersteps_with_recovery(5, 0.0, mtbf_s=100.0,
                                         mttr_s=10.0, rng=rng)
