"""Tests for straggler mitigation via hedging in graph analytics."""

import pytest

from repro.faults import Hedge, StragglerModel
from repro.graphalytics.robustness import run_jobs_with_stragglers
from repro.sim import RandomStreams


def _straggler(seed=5, probability=0.25, multiplier=8.0):
    return StragglerModel(RandomStreams(seed=seed).get("stragglers"),
                          probability=probability, multiplier=multiplier)


class TestStragglerRuns:
    def test_stragglers_inflate_the_tail(self):
        healthy = run_jobs_with_stragglers(
            [10.0] * 100, _straggler(probability=0.0))
        sick = run_jobs_with_stragglers([10.0] * 100, _straggler())
        assert healthy.p95_time_s == pytest.approx(10.0)
        assert sick.p95_time_s == pytest.approx(80.0)
        assert sick.stragglers > 0

    def test_hedging_recovers_the_tail(self):
        sick = run_jobs_with_stragglers([10.0] * 100, _straggler())
        hedged = run_jobs_with_stragglers(
            [10.0] * 100, _straggler(), hedge=Hedge(delay_s=12.0))
        # The duplicate attempt redraws its straggler fate, so the tail
        # collapses from 8x to roughly delay + runtime.
        assert hedged.p95_time_s < 0.4 * sick.p95_time_s
        assert hedged.hedge_wins > 0
        # Speculation costs duplicate work.
        assert hedged.attempts > hedged.n_jobs
        assert hedged.duplicate_work_fraction > 0.0

    def test_deterministic_under_seed(self):
        a = run_jobs_with_stragglers([5.0, 10.0, 20.0] * 10, _straggler(),
                                     hedge=Hedge(delay_s=12.0))
        b = run_jobs_with_stragglers([5.0, 10.0, 20.0] * 10, _straggler(),
                                     hedge=Hedge(delay_s=12.0))
        assert a == b

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_jobs_with_stragglers([], _straggler())
