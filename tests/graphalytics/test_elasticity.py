"""Tests for elastic graph processing ([111])."""

import pytest

from repro.graphalytics.elasticity import (
    CapacityPhase,
    DEFAULT_JOB,
    WorkPhase,
    elasticity_study,
    run_elastic,
)


def simple_job(work=1000.0, max_scale=4.0):
    return [WorkPhase("p", work=work, max_scale=max_scale)]


class TestRunElastic:
    def test_static_run_analytics(self):
        run = run_elastic(simple_job(1000.0, max_scale=4.0),
                          [CapacityPhase(0.0, 2.0)], base_rate=10.0)
        # rate = 10 × min(2, 4) = 20 -> 50 s; provisioned 2×50 = 100.
        assert run.makespan_s == pytest.approx(50.0)
        assert run.resource_seconds == pytest.approx(100.0)
        assert run.used_resource_seconds == pytest.approx(100.0)
        assert run.reconfigurations == 0

    def test_overprovisioned_capacity_is_wasted(self):
        run = run_elastic(simple_job(1000.0, max_scale=1.0),
                          [CapacityPhase(0.0, 4.0)], base_rate=10.0)
        # Useful scale capped at 1: rate 10, makespan 100 s; provisioned
        # 4×100 but used only 1×100.
        assert run.makespan_s == pytest.approx(100.0)
        assert run.resource_seconds == pytest.approx(400.0)
        assert run.efficiency == pytest.approx(0.25)

    def test_capacity_change_pays_penalty(self):
        run = run_elastic(
            simple_job(1000.0, max_scale=4.0),
            [CapacityPhase(0.0, 1.0), CapacityPhase(50.0, 4.0)],
            base_rate=10.0, reconfig_penalty_s=5.0)
        # 50 s at rate 10 clears 500; penalty 5 s; remaining 500 at
        # rate 40 -> 12.5 s.
        assert run.reconfigurations == 1
        assert run.makespan_s == pytest.approx(50 + 5 + 12.5)
        assert run.reconfiguration_time_s == 5.0

    def test_completion_before_change_skips_reconfig(self):
        run = run_elastic(simple_job(100.0, max_scale=2.0),
                          [CapacityPhase(0.0, 2.0),
                           CapacityPhase(10_000.0, 8.0)],
                          base_rate=10.0)
        assert run.reconfigurations == 0

    def test_zero_final_capacity_rejected(self):
        with pytest.raises(RuntimeError):
            run_elastic(simple_job(), [CapacityPhase(0.0, 0.0)],
                        base_rate=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_elastic([], [CapacityPhase(0.0, 1.0)])
        with pytest.raises(ValueError):
            run_elastic(simple_job(), [CapacityPhase(5.0, 1.0)])
        with pytest.raises(ValueError):
            run_elastic(simple_job(), [CapacityPhase(0.0, -1.0)])
        with pytest.raises(ValueError):
            WorkPhase("bad", work=0, max_scale=1)

    def test_multi_phase_job_sequences(self):
        job = [WorkPhase("a", 100.0, 1.0), WorkPhase("b", 400.0, 4.0)]
        run = run_elastic(job, [CapacityPhase(0.0, 4.0)], base_rate=10.0)
        # a: rate 10 -> 10 s (capacity 4 wasted); b: rate 40 -> 10 s.
        assert run.makespan_s == pytest.approx(20.0)
        assert run.used_resource_seconds == pytest.approx(
            1 * 10 + 4 * 10)


class TestElasticityStudy:
    def test_the_111_shape(self):
        """Elastic: near static-large speed at near static-small cost."""
        study = elasticity_study()
        small = study["static-small"]
        large = study["static-large"]
        elastic = study["elastic"]
        assert large.makespan_s < small.makespan_s
        # Elastic is within 15% of static-large's makespan...
        assert elastic.makespan_s < large.makespan_s * 1.15
        # ...at less than half its provisioned footprint.
        assert elastic.resource_seconds < 0.5 * large.resource_seconds
        # Efficiency: elastic ~1, static-large well below.
        assert elastic.efficiency > 0.9
        assert large.efficiency < 0.6
        assert elastic.reconfigurations == len(DEFAULT_JOB) - 1

    def test_penalty_scales_overhead(self):
        cheap = elasticity_study(reconfig_penalty_s=1.0)["elastic"]
        costly = elasticity_study(reconfig_penalty_s=200.0)["elastic"]
        assert costly.reconfiguration_time_s > cheap.reconfiguration_time_s
        assert costly.makespan_s > cheap.makespan_s
        assert costly.overhead_fraction > cheap.overhead_fraction
