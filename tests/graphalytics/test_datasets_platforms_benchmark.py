"""Tests for datasets, platform models, and the PAD benchmark."""

import pytest

from repro.graphalytics import (
    DATASET_GENERATORS,
    PLATFORMS,
    dataset_properties,
    make_dataset,
    pad_interaction_analysis,
    run_benchmark,
)
from repro.graphalytics.benchmark import hpad_analysis
from repro.graphalytics.platforms import PhaseBreakdown, Platform
from repro.sim import RandomStreams


@pytest.fixture
def rng():
    return RandomStreams(seed=3).get("ga")


class TestDatasets:
    def test_all_families_generate(self, rng):
        for family in DATASET_GENERATORS:
            graph = make_dataset(family, 200, rng)
            assert graph.number_of_nodes() >= 100
            assert graph.number_of_edges() > 0

    def test_scale_free_is_skewed(self, rng):
        graph = make_dataset("scale-free", 2000, rng)
        props = dataset_properties("sf", graph)
        assert props.is_skewed

    def test_road_is_regular(self, rng):
        graph = make_dataset("road", 2000, rng)
        props = dataset_properties("road", graph)
        assert not props.is_skewed
        assert props.max_degree <= 4

    def test_small_world_is_clustered(self, rng):
        sw = dataset_properties(
            "sw", make_dataset("small-world", 1000, rng))
        er = dataset_properties(
            "er", make_dataset("random", 1000, rng))
        assert sw.clustering > 3 * er.clustering

    def test_weighted_datasets(self, rng):
        graph = make_dataset("random", 100, rng, weighted=True)
        u, v = next(iter(graph.edges))
        assert 1.0 <= graph[u][v]["weight"] <= 10.0

    def test_validation(self, rng):
        with pytest.raises(KeyError):
            make_dataset("hypercube", 100, rng)
        with pytest.raises(ValueError):
            make_dataset("road", 2, rng)


class TestPlatformModels:
    def test_phase_breakdown_total_and_bottleneck(self):
        breakdown = PhaseBreakdown(setup_s=1.0, load_s=2.0, compute_s=5.0)
        assert breakdown.total_s == 8.0
        assert breakdown.bottleneck() == "compute"

    def test_run_produces_correct_output(self, rng):
        graph = make_dataset("random", 200, rng, weighted=True)
        run = PLATFORMS["cpu-single"].run("wcc", graph, "random")
        assert not run.failed
        assert len(run.result) == graph.number_of_nodes()
        assert run.modeled_time_s > 0

    def test_gpu_memory_cap_fails_gracefully(self, rng):
        tiny_gpu = Platform("tiny-gpu", setup_s=1, load_per_edge_s=1e-7,
                            compute_per_edge_s=1e-9, per_iteration_s=0.01,
                            max_edges=10)
        graph = make_dataset("random", 200, rng)
        run = tiny_gpu.run("wcc", graph, "random")
        assert run.failed
        assert run.modeled_time_s == float("inf")
        assert "capacity" in run.failure_reason

    def test_skew_penalty_hits_gpu_on_scale_free(self, rng):
        sf = make_dataset("scale-free", 2000, rng)
        road = make_dataset("road", 2000, rng)
        gpu = PLATFORMS["gpu"]
        run_sf = gpu.run("pagerank", sf, "scale-free")
        run_road = gpu.run("pagerank", road, "road")
        # Per edge visited (barriers excluded), the skewed graph is more
        # expensive on the GPU's regular parallelism.
        per_iter = gpu.per_iteration_s
        per_edge_sf = ((run_sf.breakdown.compute_s
                        - run_sf.result.iterations * per_iter)
                       / run_sf.result.edges_visited)
        per_edge_road = ((run_road.breakdown.compute_s
                          - run_road.result.iterations * per_iter)
                         / run_road.result.edges_visited)
        assert per_edge_sf > per_edge_road

    def test_distributed_pays_iteration_barriers(self, rng):
        road = make_dataset("road", 2500, rng)  # high diameter
        dist = PLATFORMS["cpu-distributed"].run("bfs", road, "road")
        single = PLATFORMS["cpu-single"].run("bfs", road, "road")
        # Barrier cost makes distributed lose on deep BFS of small graphs.
        assert dist.modeled_time_s > single.modeled_time_s


class TestPADLaw:
    @pytest.fixture(scope="class")
    def report(self):
        return run_benchmark(n_vertices=1500, seed=7,
                             algorithms=("bfs", "pagerank", "wcc", "lcc"),
                             datasets=("scale-free", "road", "random"))

    def test_grid_complete(self, report):
        assert len(report.runs) == 4 * 4 * 3  # platforms × algos × datasets

    def test_pad_law_holds(self, report):
        """The core [105] finding: no platform dominates; rankings depend
        on the (algorithm, dataset) interaction."""
        analysis = pad_interaction_analysis(report)
        assert analysis["no_dominant_platform"]
        assert analysis["distinct_rankings"] > 1
        assert analysis["interaction_strength"] > 0

    def test_winner_counts_cover_cells(self, report):
        analysis = pad_interaction_analysis(report)
        assert sum(analysis["winner_counts"].values()) == (
            analysis["n_cells"])

    def test_hpad_heterogeneous_wins_are_partial(self, report):
        analysis = hpad_analysis(report)
        assert analysis["pad_only_special_case"]
        assert 0 < analysis["het_win_fraction"] < 1

    def test_rankings_are_permutations(self, report):
        for cell in report.cells():
            ranking = report.ranking(*cell)
            assert sorted(ranking) == sorted(PLATFORMS)

    def test_empty_report_rejected(self):
        from repro.graphalytics import BenchmarkReport
        with pytest.raises(ValueError):
            pad_interaction_analysis(BenchmarkReport())

    def test_rows_view(self, report):
        rows = report.rows()
        assert len(rows) == len(report.runs)
        assert {"platform", "algorithm", "dataset", "time_s",
                "bottleneck"} <= set(rows[0])
