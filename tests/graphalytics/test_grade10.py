"""Tests for Grade10-style fitted performance models ([108])."""

import pytest

from repro.graphalytics import run_benchmark
from repro.graphalytics.grade10 import (
    Observation,
    cross_validate,
    fit_platform_model,
    observations_from_runs,
)


@pytest.fixture(scope="module")
def observations():
    report = run_benchmark(n_vertices=800, seed=1080,
                           algorithms=("bfs", "pagerank", "wcc", "lcc",
                                       "sssp"),
                           datasets=("scale-free", "road", "random"))
    return observations_from_runs(report.runs)


class TestFitting:
    def test_fit_recovers_low_training_error(self, observations):
        model = fit_platform_model(observations, "cpu-single")
        assert model.training_error < 0.25
        assert model.setup_s >= 0
        assert model.compute_per_edge_visit_s >= 0

    def test_synthetic_exact_recovery(self):
        """On data generated exactly from the model family, the fit is
        essentially perfect."""
        obs = []
        for i, (edges, visits, iters) in enumerate(
                [(1e5, 2e5, 5), (2e5, 8e5, 10), (5e4, 5e4, 1),
                 (3e5, 3e6, 30), (1e6, 1e6, 2), (7e5, 2e6, 8)]):
            time = 2.0 + 1e-7 * edges + 3e-8 * visits + 0.1 * iters
            obs.append(Observation("synthetic", edges, visits, iters,
                                   time))
        model = fit_platform_model(obs, "synthetic")
        assert model.training_error < 1e-6
        assert model.setup_s == pytest.approx(2.0, rel=1e-3)
        assert model.per_iteration_s == pytest.approx(0.1, rel=1e-3)

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            fit_platform_model(
                [Observation("p", 1, 1, 1, 1.0)] * 3, "p")

    def test_unknown_platform_rejected(self, observations):
        with pytest.raises(ValueError):
            fit_platform_model(observations, "quantum-platform")


class TestGeneralization:
    def test_cross_validation_error_bounded(self, observations):
        """The Grade10 promise: the fitted model predicts unseen cells
        usefully (leave-one-out error well below 100%)."""
        error = cross_validate(observations, "cpu-single")
        assert error < 0.5

    def test_needs_enough_observations(self):
        obs = [Observation("p", float(i + 1), float(i + 1), 1.0, 1.0)
               for i in range(4)]
        with pytest.raises(ValueError):
            cross_validate(obs, "p")

    def test_failed_runs_excluded(self):
        report = run_benchmark(n_vertices=800, seed=1081,
                               algorithms=("pagerank",),
                               datasets=("scale-free",),
                               work_scale=5000.0)  # GPU will OOM
        obs = observations_from_runs(report.runs, work_scale=5000.0)
        assert all(o.platform != "gpu" or o.time_s < float("inf")
                   for o in obs)
