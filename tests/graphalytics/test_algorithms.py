"""Tests for the six LDBC algorithm kernels."""

import math

import networkx as nx
import pytest

from repro.graphalytics import (
    ALGORITHMS,
    bfs,
    cdlp,
    lcc,
    pagerank,
    run_algorithm,
    sssp,
    wcc,
)


@pytest.fixture
def path_graph():
    return nx.path_graph(5)  # 0-1-2-3-4


@pytest.fixture
def two_triangles():
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)])
    return g


class TestBFS:
    def test_depths_on_path(self, path_graph):
        result = bfs(path_graph, source=0)
        assert result.values == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert result.iterations == 4

    def test_unreachable_is_inf(self, two_triangles):
        result = bfs(two_triangles, source=0)
        assert result.values[10] == float("inf")
        assert result.values[2] == 1

    def test_unknown_source(self, path_graph):
        with pytest.raises(KeyError):
            bfs(path_graph, source=99)


class TestPageRank:
    def test_ranks_sum_to_one(self, path_graph):
        result = pagerank(path_graph)
        assert sum(result.values.values()) == pytest.approx(1.0, abs=1e-3)

    def test_symmetric_graph_equal_ranks(self):
        result = pagerank(nx.cycle_graph(6))
        ranks = list(result.values.values())
        assert max(ranks) - min(ranks) < 1e-6

    def test_hub_ranks_highest(self):
        star = nx.star_graph(10)  # node 0 is the hub
        result = pagerank(star)
        assert result.values[0] == max(result.values.values())

    def test_converges_before_max_iterations(self):
        result = pagerank(nx.cycle_graph(4), max_iterations=50)
        assert result.iterations < 50

    def test_empty_graph(self):
        result = pagerank(nx.Graph())
        assert result.values == {}


class TestWCC:
    def test_component_count(self, two_triangles):
        result = wcc(two_triangles)
        assert len(set(result.values.values())) == 2

    def test_same_component_same_label(self, two_triangles):
        result = wcc(two_triangles)
        assert result.values[0] == result.values[1] == result.values[2]
        assert result.values[10] != result.values[0]


class TestCDLP:
    def test_two_cliques_found(self):
        g = nx.Graph()
        # Two 4-cliques joined by one edge.
        for base in (0, 10):
            for i in range(4):
                for j in range(i + 1, 4):
                    g.add_edge(base + i, base + j)
        g.add_edge(3, 10)
        result = cdlp(g, max_iterations=20)
        left = {result.values[i] for i in range(4)}
        right = {result.values[10 + i] for i in range(4)}
        assert len(left) == 1
        assert len(right) == 1

    def test_isolated_vertex_keeps_label(self):
        g = nx.Graph()
        g.add_node(7)
        result = cdlp(g)
        assert result.values[7] == 7.0


class TestLCC:
    def test_triangle_is_fully_clustered(self):
        result = lcc(nx.complete_graph(3))
        assert all(v == pytest.approx(1.0) for v in result.values.values())

    def test_path_has_zero_clustering(self, path_graph):
        result = lcc(path_graph)
        assert all(v == 0.0 for v in result.values.values())

    def test_degree_one_is_zero(self):
        result = lcc(nx.star_graph(3))
        assert result.values[1] == 0.0


class TestSSSP:
    def test_weighted_shortest_path(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(0, 2, weight=5.0)
        result = sssp(g, source=0)
        assert result.values[2] == 2.0

    def test_unit_weights_default(self, path_graph):
        result = sssp(path_graph, source=0)
        assert result.values[4] == 4.0

    def test_unreachable_inf(self, two_triangles):
        result = sssp(two_triangles, source=0)
        assert math.isinf(result.values[11])

    def test_unknown_source(self, path_graph):
        with pytest.raises(KeyError):
            sssp(path_graph, source=42)


class TestDispatch:
    def test_all_algorithms_run(self, two_triangles):
        for name in ALGORITHMS:
            result = run_algorithm(name, two_triangles)
            assert len(result) == two_triangles.number_of_nodes()
            assert result.edges_visited > 0

    def test_unknown_algorithm(self, path_graph):
        with pytest.raises(KeyError):
            run_algorithm("quantum-walk", path_graph)

    def test_default_source_is_min_node(self, path_graph):
        result = run_algorithm("bfs", path_graph)
        assert result.values[0] == 0.0
