"""Unit tests for the metrics registry and the Monitor bridge."""

import pytest

from repro.observability import METRIC_NAME_RE, MetricsRegistry, metric_name
from repro.sim import Environment, Monitor


class TestNaming:
    def test_valid_names_pass(self):
        for name in ("serverless.invocations.shed", "p2p.swarm_size",
                     "a1.b_2"):
            assert METRIC_NAME_RE.match(name), name

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for name in ("nodots", "Upper.case", "a.b:c", "a..b", ".a.b"):
            with pytest.raises(ValueError, match="invalid metric name"):
                reg.counter(name)

    def test_metric_name_sanitizes(self):
        assert metric_name("serverless", "latency:f") == \
            "serverless.latency_f"
        assert metric_name("A B", "c") == "a_b.c"

    def test_non_strict_registry_accepts_anything(self):
        reg = MetricsRegistry(strict=False)
        assert reg.counter("Weird:Name").name == "Weird:Name"


class TestRegistry:
    def test_counter_and_series_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.series("a.c") is reg.series("a.c")

    def test_cross_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(TypeError):
            reg.series("a.b")

    def test_labels_distinguish_metrics(self):
        reg = MetricsRegistry()
        reg.incr("a.b", labels={"key": "x"})
        reg.incr("a.b", labels={"key": "y"}, amount=2)
        assert reg.counter("a.b", labels={"key": "x"}).total == 1
        assert reg.counter("a.b", labels={"key": "y"}).total == 2

    def test_adopt_first_writer_wins(self):
        from repro.sim.monitor import Counter
        reg = MetricsRegistry()
        first = Counter("x")
        assert reg.adopt("a.b", first) is first
        assert reg.adopt("a.b", Counter("y")) is first

    def test_snapshot_is_deterministic_and_complete(self):
        reg = MetricsRegistry()
        reg.incr("z.last", key="k")
        reg.record("a.first", 1.0, time=0.0)
        reg.record("a.first", 3.0, time=2.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        assert snap["a.first"] == {"type": "series", "count": 2,
                                   "first_t": 0.0, "last_t": 2.0,
                                   "last": 3.0, "time_average": 1.0}
        assert snap["z.last"] == {"type": "counter", "total": 1,
                                  "by_key": {"k": 1}}

    def test_export_text_prometheus_style(self):
        reg = MetricsRegistry()
        reg.incr("a.hits", key="f", amount=3)
        reg.record("a.depth", 2.0, time=1.0)
        text = reg.export_text()
        assert "# TYPE a_hits_total counter" in text
        assert "a_hits_total 3" in text
        assert 'a_hits_total{key="f"} 3' in text
        assert "a_depth 2" in text
        assert "a_depth_samples 1" in text


class TestMonitorBridge:
    def test_monitor_metrics_land_in_shared_registry(self):
        env = Environment()
        reg = MetricsRegistry()
        mon = Monitor(env, registry=reg, namespace="serverless")
        mon.count("shed", key="f")
        mon.record("queue", 4.0)
        assert reg.counter("serverless.shed") is mon.counters["shed"]
        assert reg.series("serverless.queue") is mon.series["queue"]

    def test_colon_names_become_labels(self):
        env = Environment()
        reg = MetricsRegistry()
        mon = Monitor(env, registry=reg, namespace="serverless")
        mon.record("latency:f", 0.5)
        assert mon.series["latency:f"] is \
            reg.series("serverless.latency", labels={"key": "f"})

    def test_private_registry_by_default(self):
        env = Environment()
        m1, m2 = Monitor(env), Monitor(env)
        m1.count("shed")
        assert "sim.shed" in m1.registry.names()
        assert m2.registry.names() == []

    def test_two_monitors_one_registry_share_objects(self):
        env = Environment()
        reg = MetricsRegistry()
        m1 = Monitor(env, registry=reg, namespace="scheduling")
        m2 = Monitor(env, registry=reg, namespace="scheduling")
        m1.count("restarts")
        m2.count("restarts", amount=2)
        assert m1.counters["restarts"] is m2.counters["restarts"]
        assert reg.counter("scheduling.restarts").total == 3
