"""Tests for the observability layer: tracer, registry, profiler, golden."""
