"""Unit tests for the sim profiler and the Environment profiling hook."""

from repro.observability import SimProfiler
from repro.sim import Environment


def _workload(env):
    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    def sleeper(env):
        yield env.timeout(25.0)

    env.process(ticker(env))
    env.process(sleeper(env))


def test_profiler_attributes_dispatches_and_processes():
    profiler = SimProfiler()
    with profiler:
        env = Environment()
        _workload(env)
        env.run()
    assert profiler.dispatches > 0
    assert profiler.wall_s > 0
    names = {e.name for e in profiler.top_processes()}
    assert {"ticker", "sleeper"} <= names
    kinds = {e.name for e in profiler.top_kinds()}
    assert "Timeout" in kinds
    ticker_entry = profiler.processes["ticker"]
    # 10 timeouts + the Initialize resume.
    assert ticker_entry.count == 11


def test_profiler_uninstalls_after_block():
    profiler = SimProfiler()
    with profiler:
        assert Environment().profiler is profiler
    assert Environment().profiler is None


def test_unprofiled_environment_pays_no_bookkeeping():
    env = Environment()
    assert env.profiler is None
    _workload(env)
    env.run()  # nothing to assert beyond "no profiler, still runs"


def test_profiler_accumulates_across_blocks():
    profiler = SimProfiler()
    for _ in range(2):
        with profiler:
            env = Environment()
            _workload(env)
            env.run()
    assert profiler.processes["ticker"].count == 22


def test_report_lists_top_processes_and_events_per_s():
    profiler = SimProfiler()
    with profiler:
        env = Environment()
        _workload(env)
        env.run()
    text = profiler.report(top=5)
    assert "dispatches" in text
    assert "ticker" in text
    assert "events/s" in text
    assert profiler.events_per_s() > 0
    snap = profiler.snapshot()
    assert snap.dispatches == profiler.dispatches
    assert snap.events_per_s == profiler.events_per_s()


def test_non_process_callbacks_are_not_misattributed():
    profiler = SimProfiler()
    with profiler:
        env = Environment()
        done = env.event()
        done.callbacks.append(lambda ev: None)  # a bare-function callback
        def trigger(env):
            yield env.timeout(1.0)
            done.succeed()
        env.process(trigger(env))
        env.run()
    assert "<lambda>" not in profiler.processes
