"""Cross-domain metric-name consistency.

Every metric the canonical scenarios emit must (a) match the dotted
naming convention and (b) be listed in the metric catalog table of
``docs/observability.md`` — the doc is parsed, so it cannot silently rot.
"""

import re
from pathlib import Path

import pytest

from repro.observability import METRIC_NAME_RE
from repro.observability.scenarios import (
    COMPOSED_SCENARIOS,
    SCENARIOS,
    run_scenario,
)

DOC = Path(__file__).resolve().parents[2] / "docs" / "observability.md"


def documented_metrics() -> set[str]:
    """Metric names from the catalog table (`` `a.b` | type | ...`` rows)."""
    names = set()
    for line in DOC.read_text().splitlines():
        m = re.match(r"\| `([a-z0-9_.]+)` \| (counter|series) \|", line)
        if m:
            names.add(m.group(1))
    return names


def emitted_metrics() -> dict[str, str]:
    """All registry metric names across scenarios -> first emitting scenario."""
    emitted = {}
    for name in SCENARIOS:
        _, registry, _ = run_scenario(name)
        for metric in registry.names():
            emitted.setdefault(metric, name)
    return emitted


@pytest.fixture(scope="module")
def emitted():
    return emitted_metrics()


def test_catalog_table_parses_nonempty():
    docs = documented_metrics()
    assert len(docs) >= 20, f"catalog table parse found only {sorted(docs)}"


def test_every_emitted_metric_matches_naming_convention(emitted):
    bad = [m for m in emitted if not METRIC_NAME_RE.match(m)]
    assert not bad, f"metrics violating naming convention: {bad}"


def test_every_emitted_metric_is_documented(emitted):
    docs = documented_metrics()
    missing = {m: s for m, s in emitted.items() if m not in docs}
    assert not missing, (
        "scenario metrics missing from docs/observability.md catalog "
        f"table: {missing}")


def test_every_domain_namespaces_its_metrics(emitted):
    for metric, scenario in emitted.items():
        if scenario in COMPOSED_SCENARIOS:
            # A composed scenario pools several domains into one world;
            # its metrics keep each participating domain's namespace.
            continue
        assert metric.split(".", 1)[0] == scenario, (
            f"{metric!r} (from scenario {scenario!r}) is not namespaced "
            "by its domain")
