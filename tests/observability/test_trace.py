"""Unit tests for the span tracer and its deterministic serialization."""

import json

import pytest

from repro.observability import TRACE_FORMAT_VERSION, Tracer
from repro.sim import Environment


class TestSpanLifecycle:
    def test_start_and_end_capture_sim_time(self):
        env = Environment()
        tracer = Tracer().bind(env)
        span = tracer.start_span("serverless.invoke", function="f")
        env.run(until=2.5)
        tracer.end_span(span)
        assert span.t_start == 0.0
        assert span.t_end == 2.5
        assert span.duration == 2.5
        assert span.finished

    def test_domain_defaults_to_first_name_component(self):
        tracer = Tracer()
        span = tracer.start_span("scheduling.task", t=0.0)
        assert span.domain == "scheduling"

    def test_explicit_time_overrides_clock(self):
        tracer = Tracer()
        span = tracer.start_span("mmog.provisioning", t=10.0)
        tracer.end_span(span, t=40.0)
        assert span.duration == 30.0

    def test_unbound_tracer_without_time_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="not bound"):
            tracer.start_span("x.y")

    def test_double_end_raises(self):
        tracer = Tracer()
        span = tracer.start_span("x.y", t=0.0)
        tracer.end_span(span, t=1.0)
        with pytest.raises(ValueError, match="already ended"):
            tracer.end_span(span, t=2.0)

    def test_parenting_and_children(self):
        tracer = Tracer()
        root = tracer.start_span("a.root", t=0.0)
        child = tracer.start_span("a.child", parent=root, t=1.0)
        assert child.parent_id == root.span_id
        assert tracer.children(root) == [child]

    def test_events_carry_time_and_fields(self):
        tracer = Tracer()
        span = tracer.start_span("x.y", t=0.0)
        tracer.add_event(span, "retry", t=1.5, attempt=2)
        assert span.events[0].t == 1.5
        assert span.events[0].fields == {"attempt": 2}

    def test_context_manager_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x.y", t=0.0):
                raise RuntimeError("boom")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].finished

    def test_find_and_open_spans(self):
        tracer = Tracer()
        a = tracer.start_span("x.a", t=0.0)
        tracer.start_span("x.b", t=0.0)
        tracer.end_span(a, t=1.0)
        assert tracer.find("x.a") == [a]
        assert [s.name for s in tracer.open_spans()] == ["x.b"]


class TestSerialization:
    def _small_trace(self):
        tracer = Tracer(name="t")
        tracer.meta["seed"] = 7
        root = tracer.start_span("d.root", t=0.0, zebra=1, apple=2)
        tracer.add_event(root, "evt", t=0.5, b=1, a=2)
        tracer.end_span(root, t=2.0)
        return tracer

    def test_format_version_and_span_count_serialized(self):
        doc = self._small_trace().to_dict()
        assert doc["format"] == TRACE_FORMAT_VERSION
        assert doc["n_spans"] == 1

    def test_json_is_deterministic_and_key_sorted(self):
        t1, t2 = self._small_trace(), self._small_trace()
        assert t1.to_json() == t2.to_json()
        tags = json.loads(t1.to_json())["spans"][0]["tags"]
        assert list(tags) == sorted(tags)

    def test_digest_changes_with_content(self):
        t1 = self._small_trace()
        t2 = self._small_trace()
        tracer3 = self._small_trace()
        tracer3.start_span("d.more", t=1.0)
        assert t1.digest() == t2.digest()
        assert t1.digest() != tracer3.digest()

    def test_non_scalar_tags_serialize_as_strings(self):
        tracer = Tracer()
        span = tracer.start_span("x.y", t=0.0, obj=[1, 2])
        tracer.end_span(span, t=1.0)
        assert tracer.to_dict()["spans"][0]["tags"]["obj"] == "[1, 2]"

    def test_summary_mentions_span_counts(self):
        text = self._small_trace().summary()
        assert "1 spans" in text
        assert "d.root: 1" in text
