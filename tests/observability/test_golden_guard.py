"""Byte-identical golden-trace guard for the kernel speed rearchitecture.

The existing golden tests (`test_golden.py`) compare *structured* documents
via :func:`repro.observability.golden.diff_documents`, which tolerates
benign formatting drift.  This guard is stricter: it re-runs every scenario
against the live kernel and asserts the canonical serialization of the
freshly captured document is **byte-for-byte identical** to the committed
file.  Any kernel change that perturbs event ordering, timestamps, trace
content, or serialization shows up here as a hard failure, making this the
conformance backstop for hot-path optimisations (two-tier dispatch, packed
heap entries, batched tickers).
"""

from __future__ import annotations

import pytest

from repro.observability import golden
from repro.observability.scenarios import SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_recaptured_trace_is_byte_identical(name: str) -> None:
    path = golden.golden_path(name)
    assert path.exists(), (
        f"missing golden document for {name!r}; bless it with "
        f"`python -m repro.observability.golden --update {name}`"
    )
    fresh = golden.document_json(golden.capture(name))
    committed = path.read_text()
    assert fresh == committed, (
        f"scenario {name!r} no longer reproduces its committed golden "
        f"document byte-for-byte; the kernel's observable behavior drifted"
    )
