"""Golden-trace regression tests: every domain scenario, structurally.

Each test re-runs one canonical scenario from
``repro.observability.scenarios`` and diffs its span trace, metrics
snapshot, and summary against the blessed document in ``tests/golden/``.
A failure means domain behavior changed: read the printed span diff, and
if the change is intended, re-bless with
``python -m repro.observability.golden --update`` and commit the diff.
"""

import copy

import pytest

from repro.observability import golden
from repro.observability.scenarios import SCENARIOS


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_scenario_matches_golden_trace(name):
    diffs = golden.check(name)
    assert not diffs, (
        f"scenario {name!r} diverged from its golden trace "
        f"({len(diffs)} differences):\n  " + "\n  ".join(diffs))


def test_corpus_covers_all_domains():
    # The acceptance bar: golden tests cover at least 6 domains.
    domains = set()
    for name in SCENARIOS:
        doc = golden.load(name)
        domains |= {s["domain"] for s in doc["trace"]["spans"]}
    assert len(domains) >= 6, f"only {sorted(domains)}"


def test_committed_documents_are_canonical():
    # Files must be byte-identical to the canonical serialization of
    # their own content — no hand-edited or re-formatted documents.
    for name in SCENARIOS:
        path = golden.golden_path(name)
        doc = golden.load(name)
        assert path.read_text() == golden.document_json(doc), (
            f"{path} is not canonically serialized; re-bless it")


class TestStructuralDiff:
    def _doc(self):
        return golden.load("serverless")

    def test_identical_documents_have_no_diff(self):
        doc = self._doc()
        assert golden.diff_documents(doc, copy.deepcopy(doc)) == []

    def test_span_status_change_is_reported(self):
        expected = self._doc()
        actual = copy.deepcopy(expected)
        actual["trace"]["spans"][0]["status"] = "failed"
        diffs = golden.diff_documents(expected, actual)
        assert any("status" in d and "failed" in d for d in diffs)

    def test_dropped_span_is_reported_as_count_mismatch(self):
        expected = self._doc()
        actual = copy.deepcopy(expected)
        del actual["trace"]["spans"][3]
        diffs = golden.diff_documents(expected, actual)
        assert any("span count" in d for d in diffs)

    def test_metric_change_is_reported(self):
        expected = self._doc()
        actual = copy.deepcopy(expected)
        key = next(iter(actual["metrics"]))
        actual["metrics"][key] = {"type": "counter", "total": -1}
        diffs = golden.diff_documents(expected, actual)
        assert any(key in d for d in diffs)

    def test_diff_output_is_clipped(self):
        assert len(golden.clip_diffs([f"d{i}" for i in range(100)])) == 26

    def test_missing_document_names_the_blessing_command(self):
        with pytest.raises(FileNotFoundError, match="--update"):
            golden.load("serverless", directory=golden.GOLDEN_DIR / "nope")


def test_update_writes_checkable_documents(tmp_path):
    golden.update(["mmog"], directory=tmp_path)
    assert golden.check("mmog", directory=tmp_path) == []
