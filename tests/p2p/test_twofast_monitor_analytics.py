"""Tests for 2fast, the BTWorld monitor, and ecosystem analytics."""

import math

import numpy as np
import pytest

from repro.p2p import (
    BTWorldMonitor,
    ContentDescriptor,
    PEER_CLASSES,
    Peer,
    SpamTracker,
    Tracker,
    bandwidth_asymmetry,
    bias_study,
    detect_aliased_media,
    detect_flashcrowds,
    giant_swarms,
    run_2fast_experiment,
)
from repro.p2p.analytics import aliasing_dilution
from repro.p2p.twofast import collector_rate_mbps
from repro.sim import Environment, RandomStreams


class TestTwoFast:
    def test_helpers_speed_up_asymmetric_download(self):
        result = run_2fast_experiment(content_size_mb=200,
                                      peer_class_name="adsl",
                                      max_helpers=8)
        assert result.speedup(4) > 2.0
        # Monotone non-increasing download times.
        for k in range(1, 9):
            assert result.download_times[k] <= result.download_times[k - 1]

    def test_speedup_capped_by_download_link(self):
        result = run_2fast_experiment(content_size_mb=200,
                                      peer_class_name="adsl",
                                      max_helpers=16)
        adsl = PEER_CLASSES["adsl"]
        assert result.max_speedup <= adsl.asymmetry + 1.0

    def test_saturation_point_near_asymmetry_ratio(self):
        result = run_2fast_experiment(content_size_mb=500,
                                      peer_class_name="adsl",
                                      max_helpers=16)
        # ADSL asymmetry is 8: ~7 helpers saturate the download link.
        assert 5 <= result.saturation_helpers <= 9

    def test_symmetric_peers_gain_nothing(self):
        result = run_2fast_experiment(content_size_mb=100,
                                      peer_class_name="symmetric",
                                      max_helpers=4)
        assert result.max_speedup == pytest.approx(1.0, abs=0.1)

    def test_collector_rate_validation(self):
        with pytest.raises(ValueError):
            collector_rate_mbps(PEER_CLASSES["adsl"], helpers=-1)

    def test_invalid_content_size(self):
        with pytest.raises(ValueError):
            run_2fast_experiment(content_size_mb=0)


class TestBTWorldMonitor:
    def _ecosystem(self, rng, n_honest=4, n_spam=1):
        trackers = [Tracker(f"t{i}") for i in range(n_honest)]
        trackers += [SpamTracker(f"spam{i}", rng) for i in range(n_spam)]
        peer = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        for t in trackers:
            t.announce("movie/x264", peer)
        return trackers

    def test_monitor_samples_at_interval(self):
        rng = RandomStreams(seed=5).get("m")
        env = Environment()
        trackers = self._ecosystem(rng)
        monitor = BTWorldMonitor(env, trackers, interval_s=100)
        env.run(until=1000)
        # 10 rounds × 5 trackers × 1 torrent.
        assert monitor.total_samples() == 50
        assert len(monitor.archive) == 50

    def test_coverage_limits_observed_trackers(self):
        rng = RandomStreams(seed=6).get("m")
        env = Environment()
        trackers = self._ecosystem(rng, n_honest=10, n_spam=0)
        monitor = BTWorldMonitor(env, trackers, interval_s=100,
                                 coverage=0.3, rng=rng)
        assert len(monitor.observed) == 3

    def test_spam_filter_excludes_spam_trackers(self):
        rng = RandomStreams(seed=7).get("m")
        env = Environment()
        trackers = self._ecosystem(rng, n_honest=2, n_spam=2)
        clean = BTWorldMonitor(env, trackers, interval_s=100,
                               filter_spam=True)
        env.run(until=300)
        entities = {r.entity for r in clean.archive}
        assert all(not e.startswith("spam") for e in entities)

    def test_spam_inflates_observed_sizes(self):
        rng = RandomStreams(seed=8).get("m")
        env = Environment()
        trackers = self._ecosystem(rng, n_honest=3, n_spam=2)
        monitor = BTWorldMonitor(env, trackers, interval_s=100)
        env.run(until=500)
        honest_sizes = [s.swarm_size for s in monitor.samples
                        if s.swarm_size <= 10]
        spam_sizes = [s.swarm_size for s in monitor.samples
                      if s.swarm_size > 10]
        assert spam_sizes and honest_sizes
        assert min(spam_sizes) > max(honest_sizes)

    def test_invalid_params(self):
        env = Environment()
        with pytest.raises(ValueError):
            BTWorldMonitor(env, [Tracker("t")], interval_s=0)
        with pytest.raises(ValueError):
            BTWorldMonitor(env, [Tracker("t")], coverage=0)


class TestBiasStudy:
    def test_slow_sampling_misses_short_peaks(self):
        # A 10-minute flashcrowd peak in an otherwise flat signal.
        times = np.arange(0, 86400, 60.0)
        sizes = np.where((times >= 30000) & (times < 30600), 1000.0, 100.0)
        reports = bias_study(times, sizes, intervals_s=[60, 3600 * 6],
                             coverages=[1.0])
        fast = next(r for r in reports if r.interval_s == 60)
        slow = next(r for r in reports if r.interval_s == 3600 * 6)
        assert fast.peak_bias == pytest.approx(0.0)
        assert slow.peak_bias < -0.5  # missed the peak

    def test_partial_coverage_underestimates(self):
        times = np.arange(0, 1000, 10.0)
        sizes = np.full_like(times, 200.0)
        reports = bias_study(times, sizes, intervals_s=[10],
                             coverages=[1.0, 0.5, 0.1])
        biases = {r.coverage: r.peak_bias for r in reports}
        assert biases[1.0] == pytest.approx(0.0)
        assert biases[0.5] == pytest.approx(-0.5)
        assert biases[0.1] == pytest.approx(-0.9)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            bias_study([], [], [10], [1.0])


class TestAnalytics:
    def test_aliased_media_detection(self):
        descriptors = [
            ContentDescriptor("movie-a", "x264-720p", 700),
            ContentDescriptor("movie-a", "xvid", 700),
            ContentDescriptor("movie-a", "x264-1080p", 1400),
            ContentDescriptor("movie-b", "x264-720p", 700),
        ]
        groups = detect_aliased_media(descriptors, [100, 50, 30, 200])
        assert groups[0].content_key == "movie-a"
        assert groups[0].alias_count == 3
        assert groups[0].is_aliased
        assert groups[0].total_peers == 180
        assert not groups[1].is_aliased

    def test_aliasing_dilution_below_one(self):
        descriptors = [
            ContentDescriptor("a", "f1", 1), ContentDescriptor("a", "f2", 1),
            ContentDescriptor("b", "f1", 1),
        ]
        groups = detect_aliased_media(descriptors, [60, 60, 200])
        assert aliasing_dilution(groups) < 1.0

    def test_alias_mismatched_inputs(self):
        with pytest.raises(ValueError):
            detect_aliased_media([ContentDescriptor("a", "f", 1)], [1, 2])

    def test_bandwidth_asymmetry_of_adsl_population(self):
        peers = [Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
                 for _ in range(80)]
        peers += [Peer(peer_class=PEER_CLASSES["symmetric"], arrival_time=0)
                  for _ in range(20)]
        stats = bandwidth_asymmetry(peers)
        assert stats["capacity_ratio"] > 3.0
        assert stats["asymmetric_fraction"] == pytest.approx(0.8)

    def test_bandwidth_asymmetry_empty_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_asymmetry([])

    def test_flashcrowd_detection(self):
        rng = RandomStreams(seed=9).get("fc")
        # Baseline: ~1 arrival/100s; burst: 200 arrivals in 600 s.
        baseline = list(np.cumsum(rng.exponential(100, size=400)))
        burst_start = 20_000
        burst = list(burst_start + np.sort(rng.uniform(0, 600, size=200)))
        episodes = detect_flashcrowds(baseline + burst, window_s=600,
                                      threshold=5)
        assert len(episodes) >= 1
        hit = [e for e in episodes if e.start <= burst_start < e.end]
        assert hit, "flashcrowd episode not localized at the burst"
        assert hit[0].magnitude > 5

    def test_no_flashcrowd_in_poisson(self):
        rng = RandomStreams(seed=10).get("fc")
        times = list(np.cumsum(rng.exponential(100, size=800)))
        assert detect_flashcrowds(times, window_s=600, threshold=8) == []

    def test_too_few_arrivals(self):
        assert detect_flashcrowds([1, 2, 3]) == []

    def test_giant_swarms_heavy_tail(self):
        rng = RandomStreams(seed=11).get("gs")
        sizes = rng.pareto(1.2, size=5000) * 10 + 1
        stats = giant_swarms(sizes.astype(int))
        assert stats["n_giants"] >= 1
        assert stats["giant_peer_share"] > 0.05
        assert stats["max_size"] > stats["median_size"] * 10

    def test_giant_swarms_empty_rejected(self):
        with pytest.raises(ValueError):
            giant_swarms([])
