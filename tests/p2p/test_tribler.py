"""Tests for the Tribler-style social overlay ([69])."""

import pytest

from repro.p2p.peer import PEER_CLASSES
from repro.p2p.tribler import (
    SocialOverlay,
    SocialPeer,
    build_overlay,
    social_circle_study,
)
from repro.sim import RandomStreams


def overlay_with_friends(n_friends=4, online=True, busy=False):
    overlay = SocialOverlay()
    overlay.add_member(SocialPeer("c", PEER_CLASSES["adsl"]))
    for i in range(n_friends):
        overlay.add_member(SocialPeer(f"f{i}", PEER_CLASSES["adsl"],
                                      online=online, busy=busy))
        overlay.befriend("c", f"f{i}")
    return overlay


class TestSocialOverlay:
    def test_membership_and_friendship(self):
        overlay = overlay_with_friends(3)
        assert len(overlay.friends_of("c")) == 3
        with pytest.raises(ValueError):
            overlay.add_member(SocialPeer("c", PEER_CLASSES["adsl"]))
        with pytest.raises(KeyError):
            overlay.befriend("c", "ghost")
        with pytest.raises(ValueError):
            overlay.befriend("c", "c")

    def test_recruits_only_idle_online_friends(self):
        overlay = overlay_with_friends(4)
        overlay.members["f0"].online = False
        overlay.members["f1"].busy = True
        helpers = overlay.recruit_helpers("c")
        assert {h.name for h in helpers} == {"f2", "f3"}

    def test_recruits_best_uplinks_first(self):
        overlay = overlay_with_friends(2)
        overlay.add_member(SocialPeer("uni", PEER_CLASSES["university"]))
        overlay.befriend("c", "uni")
        helpers = overlay.recruit_helpers("c", max_helpers=1)
        assert helpers[0].name == "uni"

    def test_speedup_grows_with_helpers(self):
        lonely = overlay_with_friends(0)
        social = overlay_with_friends(4)
        assert social.social_speedup("c") > lonely.social_speedup("c")
        assert lonely.social_speedup("c") == pytest.approx(1.0)

    def test_speedup_capped_by_download_link(self):
        overlay = overlay_with_friends(32)
        rate = overlay.download_rate_mbps("c", max_helpers=32)
        assert rate <= PEER_CLASSES["adsl"].download_kbps / 1024.0 + 1e-9


class TestBuildOverlay:
    def test_structure(self):
        rng = RandomStreams(seed=61).get("tribler")
        overlay = build_overlay(rng, n_members=60, mean_friends=6)
        assert len(overlay.members) == 60
        degrees = [len(overlay.friends_of(m)) for m in overlay.members]
        assert sum(degrees) / len(degrees) >= 4

    def test_availability_mix(self):
        rng = RandomStreams(seed=62).get("tribler")
        overlay = build_overlay(rng, n_members=200,
                                online_fraction=0.5, busy_fraction=0.5)
        online = sum(1 for m in overlay.members.values() if m.online)
        assert 60 < online < 140

    def test_validation(self):
        rng = RandomStreams(seed=63).get("tribler")
        with pytest.raises(ValueError):
            build_overlay(rng, n_members=2)


class TestSocialCircleStudy:
    def test_speedup_monotone_in_circle_size(self):
        rng = RandomStreams(seed=64).get("study")
        rows = social_circle_study(rng, circle_sizes=(0, 4, 16),
                                   online_fraction=1.0,
                                   busy_fraction=0.0)
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 3.0

    def test_availability_limits_the_gain(self):
        always = social_circle_study(
            RandomStreams(seed=65).get("a"), circle_sizes=(8,),
            online_fraction=1.0, busy_fraction=0.0)[0]
        flaky = social_circle_study(
            RandomStreams(seed=65).get("b"), circle_sizes=(8,),
            online_fraction=0.3, busy_fraction=0.5)[0]
        assert flaky["available_helpers"] < always["available_helpers"]
        assert flaky["speedup"] <= always["speedup"]
