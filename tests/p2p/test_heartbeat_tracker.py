"""Heartbeat-based tracker liveness (believed state, not ground truth)."""

import pytest

from repro.p2p import (
    HeartbeatTracker,
    PEER_CLASSES,
    Peer,
    reannounce_process,
)
from repro.sim import Environment, RandomStreams


def make_peer(**kwargs):
    return Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0.0, **kwargs)


def test_announce_registers_and_returns_believed_live():
    env = Environment()
    tracker = HeartbeatTracker("hb", env, liveness_timeout_s=10.0)
    a, b = make_peer(), make_peer()

    def scenario(env):
        assert tracker.announce("t1", a) == []
        assert tracker.announce("t1", b) == [a]
        assert tracker.believed_live("t1", a.peer_id)
        yield env.timeout(0)

    env.process(scenario(env))
    env.run()


def test_crashed_peer_lingers_until_timeout():
    """The stale-entry window: the price of not being omniscient."""
    env = Environment()
    tracker = HeartbeatTracker("hb", env, liveness_timeout_s=10.0)
    ghost, live = make_peer(), make_peer()

    def scenario(env):
        tracker.announce("t1", ghost)
        # ghost crashes impolitely (no depart) right away.
        ghost.departed_at = env.now
        yield env.timeout(5.0)
        # Within the timeout the tracker still hands the ghost out,
        # even though ground truth (.active) knows it is gone.
        assert not ghost.active
        assert ghost in tracker.announce("t1", live)
        assert tracker.scrape("t1", env.now).swarm_size == 2
        yield env.timeout(6.0)
        # Past the timeout: believed dead, GC'd at scrape; the peer that
        # announced more recently is still counted.
        assert not tracker.believed_live("t1", ghost.peer_id)
        stats = tracker.scrape("t1", env.now)
        assert stats.swarm_size == 1
        assert tracker.expired == 1

    env.process(scenario(env))
    env.run()


def test_polite_depart_removes_immediately():
    env = Environment()
    tracker = HeartbeatTracker("hb", env, liveness_timeout_s=100.0)
    a, b = make_peer(), make_peer()
    tracker.announce("t1", a)
    tracker.announce("t1", b)
    tracker.depart("t1", a)
    assert not tracker.believed_live("t1", a.peer_id)
    assert tracker.scrape("t1", 0.0).swarm_size == 1


def test_reannounce_keeps_peer_believed_live():
    env = Environment()
    streams = RandomStreams(11)
    tracker = HeartbeatTracker("hb", env, liveness_timeout_s=30.0)
    peer = make_peer()
    env.process(reannounce_process(env, tracker, "t1", peer, 10.0,
                                   rng=streams.get("announce")))

    def checker(env):
        yield env.timeout(100.0)
        assert tracker.believed_live("t1", peer.peer_id)
        # Now it crashes impolitely; the loop stops heartbeating.
        peer.departed_at = env.now
        yield env.timeout(45.0)
        assert not tracker.believed_live("t1", peer.peer_id)

    env.process(checker(env))
    env.run(until=200.0)
    assert tracker.announce_count > 5


def test_scrape_counts_seeders_and_leechers():
    env = Environment()
    tracker = HeartbeatTracker("hb", env, liveness_timeout_s=100.0)
    seed, leech = make_peer(is_seed=True), make_peer()
    tracker.announce("t1", seed)
    tracker.announce("t1", leech)
    stats = tracker.scrape("t1", 0.0)
    assert (stats.seeders, stats.leechers) == (1, 1)


def test_timeout_validation():
    env = Environment()
    with pytest.raises(ValueError):
        HeartbeatTracker("hb", env, liveness_timeout_s=0.0)
