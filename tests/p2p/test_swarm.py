"""Tests for peers, trackers, and the swarm simulation."""

import pytest

from repro.p2p import (
    ContentDescriptor,
    PEER_CLASSES,
    Peer,
    SpamTracker,
    Swarm,
    SwarmConfig,
    Tracker,
    run_swarm,
)
from repro.sim import Environment, RandomStreams
from repro.workload.arrivals import PoissonArrivals, FlashcrowdArrivals


def content(size=100.0):
    return ContentDescriptor(content_key="movie-x", format="x264-720p",
                             size_mb=size)


@pytest.fixture
def rng():
    return RandomStreams(seed=17).get("p2p")


class TestPeerClasses:
    def test_adsl_is_asymmetric(self):
        assert PEER_CLASSES["adsl"].asymmetry == 8.0
        assert PEER_CLASSES["symmetric"].asymmetry == 1.0

    def test_peer_sharing_ratio(self):
        p = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        assert p.sharing_ratio == 0.0
        p.downloaded_mb, p.uploaded_mb = 100, 50
        assert p.sharing_ratio == 0.5

    def test_torrent_id(self):
        assert content().torrent_id == "movie-x/x264-720p"


class TestTracker:
    def test_announce_returns_other_active_peers(self, rng):
        tracker = Tracker("tpb")
        p1 = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        p2 = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        assert tracker.announce("t1", p1) == []
        others = tracker.announce("t1", p2)
        assert others == [p1]

    def test_departed_peers_not_returned(self):
        tracker = Tracker("tpb")
        p1 = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        p2 = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        tracker.announce("t1", p1)
        p1.departed_at = 10.0
        assert tracker.announce("t1", p2) == []

    def test_scrape_counts_seeds_and_leechers(self):
        tracker = Tracker("tpb")
        seed = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0,
                    is_seed=True)
        leecher = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        tracker.announce("t1", seed)
        tracker.announce("t1", leecher)
        stats = tracker.scrape("t1", time=5.0)
        assert (stats.seeders, stats.leechers) == (1, 1)
        assert stats.swarm_size == 2

    def test_max_peers_cap(self, rng):
        tracker = Tracker("tpb")
        peers = [Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
                 for _ in range(60)]
        for p in peers:
            tracker.announce("t1", p)
        newcomer = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        assert len(tracker.announce("t1", newcomer, rng)) == 50

    def test_spam_tracker_fabricates_stats(self, rng):
        spam = SpamTracker("evil", rng, inflation=10)
        stats = spam.scrape("anything", time=0)
        assert stats.swarm_size >= 1000  # fabricated, inflated
        assert spam.is_spam
        assert not Tracker("honest").is_spam

    def test_spam_tracker_returns_no_peers_but_logs(self, rng):
        spam = SpamTracker("evil", rng)
        p = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
        assert spam.announce("t1", p) == []
        assert spam.announce_count == 1


class TestSwarmConfig:
    def test_peer_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SwarmConfig(content=content(), peer_mix=(("adsl", 0.5),))

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            SwarmConfig(content=content(), efficiency=0)


class TestSwarmSimulation:
    def test_leechers_complete_and_become_seeds(self, rng):
        config = SwarmConfig(content=content(50), initial_seeds=2,
                             horizon_s=3600 * 8, seed_linger_s=600)
        arrivals = PoissonArrivals(rate=1 / 300.0, rng=rng)
        result = run_swarm(config, Tracker("t"), rng, arrivals)
        assert result.completed, "no peer ever completed"
        assert all(p.is_seed for p in result.completed)
        assert all(t > 0 for t in result.download_times)

    def test_seeds_linger_then_depart(self, rng):
        config = SwarmConfig(content=content(20), initial_seeds=2,
                             horizon_s=3600 * 6, seed_linger_s=300)
        arrivals = PoissonArrivals(rate=1 / 600.0, rng=rng)
        result = run_swarm(config, Tracker("t"), rng, arrivals)
        departed = [p for p in result.peers if p.departed_at is not None]
        assert departed, "no seed departed despite short linger"
        for p in departed:
            assert p.departed_at - p.completed_at >= p.seed_linger_s - 1e-9

    def test_upload_limited_by_asymmetry(self):
        """All-ADSL swarms are upload-limited: mean download rate stays well
        below the download link capacity."""
        streams = RandomStreams(seed=23)
        config = SwarmConfig(content=content(100),
                             peer_mix=(("adsl", 1.0),),
                             initial_seeds=1, seed_class="adsl",
                             horizon_s=3600 * 10, seed_linger_s=60.0)
        arrivals = PoissonArrivals(rate=1 / 120.0, rng=streams.get("arr"))
        result = run_swarm(config, Tracker("t"), streams.get("swarm"),
                           arrivals)
        assert result.completed
        # Link-limited time would be size / download capacity.
        link_limited = 100 / (PEER_CLASSES["adsl"].download_kbps / 1024)
        assert result.mean_download_time > 2 * link_limited

    def test_symmetric_peers_download_faster_than_adsl(self):
        streams = RandomStreams(seed=29)
        results = {}
        for mix_name, mix in [("adsl", (("adsl", 1.0),)),
                              ("symmetric", (("symmetric", 1.0),))]:
            config = SwarmConfig(content=content(80), peer_mix=mix,
                                 initial_seeds=1, seed_class=mix_name,
                                 horizon_s=3600 * 10, seed_linger_s=120.0)
            arrivals = PoissonArrivals(rate=1 / 180.0,
                                       rng=streams.get(f"a-{mix_name}"))
            results[mix_name] = run_swarm(
                config, Tracker("t"), streams.get(f"s-{mix_name}"), arrivals)
        assert results["symmetric"].mean_download_time < (
            results["adsl"].mean_download_time)

    def test_monitor_series_recorded(self, rng):
        config = SwarmConfig(content=content(30), horizon_s=3600)
        arrivals = PoissonArrivals(rate=1 / 60.0, rng=rng)
        result = run_swarm(config, Tracker("t"), rng, arrivals)
        assert "swarm_size" in result.monitor
        assert result.peak_swarm_size() >= config.initial_seeds

    def test_add_peer_manual(self, rng):
        env = Environment()
        config = SwarmConfig(content=content(10), horizon_s=100)
        swarm = Swarm(env, config, Tracker("t"), rng)
        peer = swarm.add_peer(PEER_CLASSES["cable"])
        assert peer in swarm.active_peers()
        assert not peer.is_seed

    def test_flashcrowd_degrades_download_times(self):
        """Peers arriving during a flashcrowd wait longer — the negative
        phenomenon [66] documents."""
        streams = RandomStreams(seed=37)
        burst_at = 3600.0
        config = SwarmConfig(content=content(60),
                             peer_mix=(("adsl", 1.0),),
                             initial_seeds=2, seed_class="adsl",
                             horizon_s=3600 * 12, seed_linger_s=300.0)
        arrivals = FlashcrowdArrivals(
            base_rate=1 / 400.0, rng=streams.get("arr"),
            burst_times=[burst_at], burst_factor=60, burst_decay_s=1200)
        result = run_swarm(config, Tracker("t"), streams.get("swarm"),
                           arrivals)
        from repro.p2p.analytics import mean_download_slowdown_during
        slowdown = mean_download_slowdown_during(
            result, burst_at, burst_at + 2400)
        assert slowdown > 1.1, f"flashcrowd slowdown only {slowdown}"
