"""Tests for churn and message-loss faults in the swarm simulation."""

import pytest

from repro.p2p import ContentDescriptor, SwarmConfig, Tracker, run_swarm
from repro.sim import RandomStreams
from repro.workload.arrivals import PoissonArrivals


def _config(**kwargs):
    return SwarmConfig(
        content=ContentDescriptor("movie-x", "x264-720p", size_mb=200.0),
        initial_seeds=2, seed_class="university",
        round_s=10.0, horizon_s=2 * 3600.0, **kwargs)


def _run(config, seed=17):
    streams = RandomStreams(seed=seed)
    arrivals = PoissonArrivals(rate=1 / 120.0, rng=streams.get("arrivals"))
    return run_swarm(config, Tracker("t"), streams.get("swarm"), arrivals)


class TestMessageLoss:
    def test_loss_slows_downloads_and_books_rerequests(self):
        clean = _run(_config())
        lossy = _run(_config(loss_rate=0.3))
        assert lossy.re_requested_mb > 0
        assert "re_requested_mb" in lossy.monitor.series
        # Re-requested pieces cost time: completed downloads are slower.
        assert clean.completed and lossy.completed
        assert lossy.mean_download_time > clean.mean_download_time

    def test_clean_swarm_has_no_rerequests(self):
        clean = _run(_config())
        assert clean.re_requested_mb == 0.0

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            _config(loss_rate=1.0)


class TestChurn:
    def test_churn_aborts_leechers(self):
        churny = _run(_config(mean_session_s=600.0))
        assert churny.churned_count > 0
        aborted = [p for p in churny.peers if p.aborted]
        assert all(p.departed_at is not None and not p.is_seed
                   for p in aborted)

    def test_churn_lowers_completion_rate(self):
        stable = _run(_config())
        churny = _run(_config(mean_session_s=400.0))
        assert churny.completion_rate < stable.completion_rate

    def test_no_churn_by_default(self):
        stable = _run(_config())
        assert stable.churned_count == 0

    def test_invalid_session_rejected(self):
        with pytest.raises(ValueError):
            _config(mean_session_s=0.0)
