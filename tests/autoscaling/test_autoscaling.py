"""Tests for autoscalers, elasticity metrics, experiment, and ranking."""

import copy

import numpy as np
import pytest

from repro.autoscaling import (
    AUTOSCALERS,
    Adapt,
    ConPaaS,
    ExperimentConfig,
    Hist,
    Plan,
    React,
    Reg,
    Token,
    elasticity_metrics,
    fractional_scores,
    grade_autoscalers,
    make_autoscaler,
    pairwise_wins,
    run_autoscaling_experiment,
)
from repro.autoscaling.autoscalers import WorkflowView
from repro.sim import RandomStreams
from repro.workload import generate_workflow_workload


def compressed_workflows(seed=5, n=8, factor=0.02):
    rng = RandomStreams(seed=seed).get("as")
    wfs = generate_workflow_workload(rng, n_workflows=n,
                                     horizon_s=30 * 86400)
    first = min(w.submit_time for w in wfs)
    for w in wfs:
        new_submit = first + (w.submit_time - first) * factor
        w.submit_time = new_submit
        for t in w.tasks:
            t.submit_time = new_submit
    return wfs


class TestAutoscalerDecisions:
    def test_react_follows_demand(self):
        assert React().decide([5, 10, 20], 7) == 20
        assert React().decide([], 7) == 0.0

    def test_adapt_moves_partially(self):
        scaler = Adapt(gain=0.5, deadband=0.0)
        assert scaler.decide([20], 10) == 15.0

    def test_adapt_deadband_suppresses_small_changes(self):
        scaler = Adapt(gain=1.0, deadband=0.2)
        assert scaler.decide([10.5], 10) == 10  # within 20% band

    def test_hist_uses_same_phase_history(self):
        scaler = Hist(period_steps=4, percentile=100)
        # History of 8 steps: phase-0 values are at idx 0 and 4.
        history = [100, 1, 1, 1, 50, 1, 1, 1]
        # n=8, phase=0 -> values [100, 50] -> p100 = 100.
        assert scaler.decide(history, 0) == 100.0

    def test_reg_extrapolates_trend(self):
        scaler = Reg(window=4, horizon=2)
        assert scaler.decide([0, 10, 20, 30], 0) == pytest.approx(50.0)

    def test_conpaas_percentile(self):
        scaler = ConPaaS(window=10, percentile=50)
        assert scaler.decide(list(range(10)), 0) == pytest.approx(4.5)

    def test_workflow_aware_require_view(self):
        with pytest.raises(ValueError):
            Plan().decide([1], 1, None)
        with pytest.raises(ValueError):
            Token().decide([1], 1, None)

    def test_plan_counts_lookahead_fully(self):
        view = WorkflowView(running_cores=4, eligible_cores=2,
                            next_level_cores=6)
        assert Plan().decide([], 0, view) == 12.0
        assert Token(token_depth=0.5).decide([], 0, view) == 9.0

    def test_factory(self):
        for name in AUTOSCALERS:
            assert make_autoscaler(name).name == name
        with pytest.raises(KeyError):
            make_autoscaler("skynet")

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Adapt(gain=0)
        with pytest.raises(ValueError):
            Hist(period_steps=0)
        with pytest.raises(ValueError):
            Reg(window=1)
        with pytest.raises(ValueError):
            Token(token_depth=2)


class TestElasticityMetrics:
    def test_perfect_supply_scores_zero(self):
        demand = [5, 10, 15, 10]
        metrics = elasticity_metrics(demand, demand)
        assert metrics["accuracy_under"] == 0.0
        assert metrics["accuracy_over"] == 0.0
        assert metrics["timeshare_under"] == 0.0
        assert metrics["avg_utilization"] == 1.0

    def test_underprovisioning_detected(self):
        metrics = elasticity_metrics([10, 10], [5, 5])
        assert metrics["accuracy_under"] == pytest.approx(0.5)
        assert metrics["timeshare_under"] == 1.0
        assert metrics["under_volume"] == 10.0

    def test_overprovisioning_detected(self):
        metrics = elasticity_metrics([10, 10], [20, 20])
        assert metrics["accuracy_over"] == pytest.approx(1.0)
        assert metrics["timeshare_over"] == 1.0
        assert metrics["avg_utilization"] == 0.5

    def test_instability_counts_opposite_moves(self):
        # Demand rises while supply falls at every step.
        metrics = elasticity_metrics([1, 2, 3, 4], [9, 8, 7, 6])
        assert metrics["instability"] == 1.0

    def test_jitter_counts_adaptations(self):
        metrics = elasticity_metrics([1, 1, 1, 1], [1, 2, 2, 3])
        assert metrics["jitter"] == pytest.approx(2 / 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            elasticity_metrics([1, 2], [1])

    def test_all_ten_metrics_present(self):
        from repro.autoscaling import ELASTICITY_METRIC_NAMES
        metrics = elasticity_metrics([1, 2], [2, 1])
        assert set(metrics) == set(ELASTICITY_METRIC_NAMES)
        assert len(ELASTICITY_METRIC_NAMES) == 10


class TestExperiment:
    @pytest.fixture(scope="class")
    def workflows(self):
        return compressed_workflows()

    def _run(self, workflows, name, **cfg):
        config = ExperimentConfig(**cfg) if cfg else ExperimentConfig()
        return run_autoscaling_experiment(
            copy.deepcopy(workflows), make_autoscaler(name), config)

    def test_all_autoscalers_complete(self, workflows):
        for name in AUTOSCALERS:
            result = self._run(workflows, name)
            assert result.n_workflows == len(workflows)
            assert result.resource_seconds > 0

    def test_workflow_aware_underprovision_less(self, workflows):
        """[126]'s headline: workflow-aware autoscalers nearly eliminate
        under-provisioning by anticipating unlocking tasks."""
        react = self._run(workflows, "react")
        plan = self._run(workflows, "plan")
        assert plan.metrics["accuracy_under"] < (
            react.metrics["accuracy_under"])

    def test_plan_overprovisions_more_than_token(self, workflows):
        plan = self._run(workflows, "plan")
        token = self._run(workflows, "token")
        assert token.metrics["accuracy_over"] <= (
            plan.metrics["accuracy_over"])

    def test_provisioning_delay_hurts_react(self, workflows):
        fast = self._run(workflows, "react", provisioning_delay_steps=0)
        slow = self._run(workflows, "react", provisioning_delay_steps=8)
        assert slow.metrics["under_volume"] > fast.metrics["under_volume"]

    def test_costs_ordered(self, workflows):
        result = self._run(workflows, "react")
        assert result.cost_hourly >= result.cost_continuous > 0

    def test_deadlines_computed_per_workflow(self, workflows):
        result = self._run(workflows, "react")
        assert set(result.deadlines) == {w.job_id for w in workflows}
        assert 0 <= result.sla_violation_rate <= 1

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            run_autoscaling_experiment([], React())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(step_s=0)
        with pytest.raises(ValueError):
            ExperimentConfig(provisioning_delay_steps=-1)


class TestRanking:
    @pytest.fixture(scope="class")
    def results(self):
        workflows = compressed_workflows()
        out = {}
        for name in ("react", "plan", "hist"):
            out[name] = run_autoscaling_experiment(
                copy.deepcopy(workflows), make_autoscaler(name),
                ExperimentConfig())
        return out

    def test_pairwise_wins_counts(self, results):
        wins = pairwise_wins(results)
        assert set(wins) == set(results)
        # Every pair contests 10 metrics; ties possible but bounded.
        assert sum(wins.values()) <= 10 * 3  # 3 pairs

    def test_pairwise_needs_two(self, results):
        with pytest.raises(ValueError):
            pairwise_wins({"react": results["react"]})

    def test_fractional_scores_bounded(self, results):
        scores = fractional_scores(results)
        for value in scores.values():
            assert 0 < value <= 1.0

    def test_best_on_all_metrics_scores_one(self, results):
        solo = fractional_scores({"react": results["react"]})
        assert solo["react"] == pytest.approx(1.0)

    def test_grades_weighted(self, results):
        grades = grade_autoscalers(results)
        assert all(0 <= g <= 1 for g in grades.values())
        with pytest.raises(ValueError):
            grade_autoscalers(results, elasticity_weight=0.9,
                              sla_weight=0.9, cost_weight=0.9)

    def test_grading_rewards_cheap_compliant(self, results):
        grades = grade_autoscalers(results)
        # Hist badly overprovisions here -> should not out-grade react.
        assert grades["react"] >= grades["hist"]
