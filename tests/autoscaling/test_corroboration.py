"""Tests for independent corroboration ([128], [130])."""

import pytest

from repro.autoscaling import make_autoscaler
from repro.autoscaling.corroboration import (
    ROBUST_METRICS,
    CorroborationReport,
    corroborate,
)
from repro.sim import RandomStreams
from repro.workload import generate_workflow_workload


def workflows(seed=71, n=6):
    rng = RandomStreams(seed=seed).get("corr")
    wfs = generate_workflow_workload(rng, n_workflows=n,
                                     horizon_s=30 * 86400)
    first = min(w.submit_time for w in wfs)
    for w in wfs:
        new_submit = first + (w.submit_time - first) * 0.02
        w.submit_time = new_submit
        for t in w.tasks:
            t.submit_time = new_submit
    return wfs


class TestCorroboration:
    def test_robust_metrics_corroborate_across_discretizations(self):
        """Independently discretized evaluations of the same system agree
        on the discretization-independent metrics."""
        report = corroborate(workflows(), lambda: make_autoscaler("react"),
                             step_sizes=(15.0, 30.0, 60.0),
                             tolerance=0.5, metrics=ROBUST_METRICS)
        assert report.corroborated, report.disagreeing_metrics

    def test_volume_metrics_flagged_as_discrepant(self):
        """Raw volumes scale with the discretization — corroboration
        catches exactly this kind of definition mismatch (the paper's
        in-vitro/in-silico discrepancies)."""
        report = corroborate(workflows(), lambda: make_autoscaler("react"),
                             step_sizes=(15.0, 120.0),
                             tolerance=0.25,
                             metrics=("under_volume", "over_volume",
                                      "jitter"))
        assert not report.corroborated
        assert report.disagreeing_metrics

    def test_discrepancy_is_relative_spread(self):
        report = CorroborationReport(
            autoscaler="x", step_sizes=(1.0, 2.0),
            values={"m": (1.0, 1.5)}, tolerance=0.25)
        assert report.discrepancy("m") == pytest.approx(0.5 / 1.5)
        assert report.disagreeing_metrics == ["m"]

    def test_needs_two_evaluations(self):
        with pytest.raises(ValueError):
            corroborate(workflows(), lambda: make_autoscaler("react"),
                        step_sizes=(30.0,))

    def test_factory_type_checked(self):
        with pytest.raises(TypeError):
            corroborate(workflows(), lambda: "not an autoscaler",
                        step_sizes=(15.0, 30.0))

    def test_fresh_autoscaler_per_run(self):
        created = []

        def factory():
            scaler = make_autoscaler("adapt")
            created.append(scaler)
            return scaler

        corroborate(workflows(), factory, step_sizes=(30.0, 60.0),
                    metrics=ROBUST_METRICS)
        assert len(created) == 2
        assert created[0] is not created[1]
