"""Tests for the simulation environment and run loop."""

import pytest

from repro.sim import Environment, Event, StopSimulation, time_eq


def test_clock_starts_at_zero():
    env = Environment()
    assert time_eq(env.now, 0.0)


def test_clock_custom_initial_time():
    env = Environment(initial_time=100.0)
    assert time_eq(env.now, 100.0)


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10)
    assert time_eq(env.now, 10)


def test_run_until_past_time_raises():
    env = Environment(initial_time=5)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_timeout_fires_at_delay():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(3)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [3]


def test_zero_delay_timeout_fires_at_now():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_dispatch_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 5, "b"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 9, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert time_eq(env.now, 2)


def test_run_until_untriggerable_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 42


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_raises():
    from repro.sim.environment import EmptySchedule
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_handled_process_failure_does_not_propagate():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter(env, target):
        try:
            yield target
        except ValueError as err:
            caught.append(str(err))

    target = env.process(bad(env))
    env.process(waiter(env, target))
    env.run()
    assert caught == ["boom"]


def test_nested_process_spawning():
    env = Environment()
    results = []

    def child(env, n):
        yield env.timeout(n)
        return n * 2

    def parent(env):
        value = yield env.process(child(env, 3))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [6]


def test_yield_non_event_crashes_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_many_processes_deterministic():
    def run_once():
        env = Environment()
        order = []

        def proc(env, i):
            yield env.timeout(i % 7)
            order.append(i)
            yield env.timeout((i * 3) % 5)
            order.append(-i)

        for i in range(50):
            env.process(proc(env, i))
        env.run()
        return order

    assert run_once() == run_once()
