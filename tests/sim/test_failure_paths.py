"""Failure-path coverage for the event kernel.

Robustness work leans hard on Event.fail, exception propagation into
waiting processes, and unhandled simulated exceptions surfacing from
Environment.run — so those paths get dedicated coverage here.
"""

import traceback

import pytest

from repro.sim import AllOf, AnyOf, Environment


class TestEventFail:
    def test_fail_propagates_into_waiting_process(self):
        env = Environment()
        ev = env.event()
        caught = {}

        def waiter(env):
            try:
                yield ev
            except ValueError as err:
                caught["err"] = err
                caught["t"] = env.now

        def failer(env):
            yield env.timeout(5)
            ev.fail(ValueError("boom"))

        env.process(waiter(env))
        env.process(failer(env))
        env.run()
        assert isinstance(caught["err"], ValueError)
        assert caught["t"] == 5

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_after_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("late"))

    def test_unhandled_failed_event_surfaces_from_run(self):
        env = Environment()
        env.event().fail(ValueError("nobody listening"))
        with pytest.raises(ValueError, match="nobody listening"):
            env.run()


class TestProcessExceptions:
    def test_unhandled_process_exception_surfaces_with_traceback(self):
        env = Environment()

        def crasher(env):
            yield env.timeout(1)
            raise KeyError("lost state")

        env.process(crasher(env))
        with pytest.raises(KeyError) as excinfo:
            env.run()
        # The traceback must point back into the crashing generator,
        # not just the kernel's dispatch loop.
        tb = "".join(traceback.format_exception(excinfo.value))
        assert "crasher" in tb
        assert "lost state" in str(excinfo.value)

    def test_joining_a_failed_process_reraises(self):
        env = Environment()
        caught = {}

        def child(env):
            yield env.timeout(1)
            raise RuntimeError("child died")

        def parent(env):
            try:
                yield env.process(child(env))
            except RuntimeError as err:
                caught["err"] = str(err)

        env.process(parent(env))
        env.run()
        assert caught == {"err": "child died"}

    def test_run_until_failed_process_raises(self):
        env = Environment()

        def doomed(env):
            yield env.timeout(2)
            raise OSError("disk gone")

        proc = env.process(doomed(env))
        with pytest.raises(OSError, match="disk gone"):
            env.run(until=proc)

    def test_exception_in_immediate_process_start(self):
        env = Environment()

        def crash_on_start(env):
            raise ZeroDivisionError("bad init")
            yield  # pragma: no cover - makes this a generator

        env.process(crash_on_start(env))
        with pytest.raises(ZeroDivisionError):
            env.run()


class TestConditionFailures:
    def test_allof_fails_when_any_member_fails(self):
        env = Environment()
        caught = {}

        def ok(env):
            yield env.timeout(10)

        def bad(env):
            yield env.timeout(1)
            raise ValueError("member failed")

        def waiter(env):
            try:
                yield AllOf(env, [env.process(ok(env)),
                                  env.process(bad(env))])
            except ValueError as err:
                caught["err"] = str(err)
                caught["t"] = env.now

        env.process(waiter(env))
        env.run()
        assert caught == {"err": "member failed", "t": 1}

    def test_anyof_fails_when_first_event_fails(self):
        env = Environment()
        caught = {}

        def bad(env):
            yield env.timeout(1)
            raise ValueError("fast failure")

        def waiter(env):
            try:
                yield AnyOf(env, [env.timeout(100),
                                  env.process(bad(env))])
            except ValueError as err:
                caught["err"] = str(err)

        env.process(waiter(env))
        env.run()
        assert caught == {"err": "fast failure"}
