"""Tests for resources, containers, and stores."""

import pytest

from repro.sim import (
    BoundedQueue,
    Container,
    Environment,
    FilterStore,
    Interrupt,
    PreemptiveResource,
    Preempted,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []

    def user(env, res, tag):
        with res.request() as req:
            yield req
            active.append((tag, env.now))
            yield env.timeout(10)

    for tag in range(3):
        env.process(user(env, res, tag))
    env.run()
    # Two start at t=0; the third only after a release at t=10.
    assert active[:2] == [(0, 0), (1, 0)]
    assert active[2] == (2, 10)


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, tag, arrival):
        yield env.timeout(arrival)
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(5)

    for tag, arrival in enumerate([0, 1, 2, 3]):
        env.process(user(env, res, tag, arrival))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)
    got_it = []

    def crasher(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1)
            raise ValueError("die")

    def waiter(env, res):
        with res.request() as req:
            yield req
            got_it.append(env.now)

    def supervisor(env):
        crash_proc = env.process(crasher(env, res))
        env.process(waiter(env, res))
        try:
            yield crash_proc
        except ValueError:
            pass

    env.process(supervisor(env))
    env.run()
    assert got_it == [1]


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def impatient(env, res):
        req = res.request()
        result = yield req | env.timeout(5)
        if req not in result:
            req.cancel()
            return "gave up"
        return "got it"

    env.process(holder(env, res))
    p = env.process(impatient(env, res))
    assert env.run(until=p) == "gave up"
    assert len(res.queue) == 0


def test_priority_resource_orders_queue():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def user(env, res, tag, priority):
        yield env.timeout(1)
        with res.request(priority=priority) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 5))
    env.process(user(env, res, "high", 1))
    env.process(user(env, res, "mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_preemptive_resource_evicts_weaker_user():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    record = []

    def weak(env, res):
        with res.request(priority=10) as req:
            try:
                yield req
                record.append(("weak acquired", env.now))
                yield env.timeout(100)
                record.append("weak finished")
            except Interrupt as intr:
                assert isinstance(intr.cause, Preempted)
                record.append(("weak preempted", env.now))

    def strong(env, res):
        yield env.timeout(5)
        with res.request(priority=1) as req:
            yield req
            record.append(("strong acquired", env.now))
            yield env.timeout(1)

    env.process(weak(env, res))
    env.process(strong(env, res))
    env.run()
    assert ("weak acquired", 0) in record
    assert ("weak preempted", 5) in record
    assert ("strong acquired", 5) in record
    assert "weak finished" not in record


def test_preemptive_resource_equal_priority_not_preempted():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    record = []

    def first(env, res):
        with res.request(priority=5) as req:
            yield req
            yield env.timeout(10)
            record.append("first finished")

    def second(env, res):
        yield env.timeout(2)
        with res.request(priority=5) as req:
            yield req
            record.append(("second acquired", env.now))

    env.process(first(env, res))
    env.process(second(env, res))
    env.run()
    assert record == ["first finished", ("second acquired", 10)]


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got = []

    def consumer(env, tank):
        yield tank.get(30)
        got.append(env.now)

    def producer(env, tank):
        for _ in range(3):
            yield env.timeout(5)
            yield tank.put(10)

    env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert got == [15]
    assert tank.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer(env, tank):
        yield tank.put(5)
        times.append(env.now)

    def consumer(env, tank):
        yield env.timeout(7)
        yield tank.get(5)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert times == [7]


def test_container_rejects_nonpositive_amounts():
    env = Environment()
    tank = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)


def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)


def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in "abc":
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["a", "b", "c"]


def test_store_get_blocks_when_empty():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env, store):
        yield store.get()
        times.append(env.now)

    def producer(env, store):
        yield env.timeout(9)
        yield store.put("x")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [9]


def test_store_put_blocks_at_capacity():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer(env, store):
        yield store.put(1)
        yield store.put(2)
        done.append(env.now)

    def consumer(env, store):
        yield env.timeout(4)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert done == [4]


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env, store):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(env, store):
        for item in [1, 3, 4, 5]:
            yield store.put(item)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [4]
    assert store.items == [1, 3, 5]


def test_priority_store_yields_smallest():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env, store):
        for item in [5, 1, 3]:
            yield store.put(item)

    def consumer(env, store):
        yield env.timeout(1)
        for _ in range(3):
            got.append((yield store.get()))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [1, 3, 5]


def test_resource_count_property():
    env = Environment()
    res = Resource(env, capacity=3)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    for _ in range(2):
        env.process(user(env, res))

    def checker(env, res):
        yield env.timeout(1)
        assert res.count == 2
        assert res.capacity == 3
        yield env.timeout(10)
        assert res.count == 0

    env.process(checker(env, res))
    env.run()


# -- BoundedQueue ----------------------------------------------------------

def test_bounded_queue_reject_policy():
    env = Environment()
    q = BoundedQueue(env, capacity=2, policy="reject")
    assert q.offer("a") and q.offer("b")
    assert q.full
    assert not q.offer("c")
    assert (q.offered, q.accepted, q.rejected, q.shed) == (3, 2, 1, 0)
    assert len(q) == 2


def test_bounded_queue_shed_oldest_policy():
    env = Environment()
    shed_log = []
    q = BoundedQueue(env, capacity=2, policy="shed-oldest",
                     on_shed=lambda item, waited: shed_log.append(item))
    assert q.offer("a") and q.offer("b") and q.offer("c")
    assert shed_log == ["a"]
    assert q.shed == 1
    assert q.pop()[0] == "b"
    assert q.pop()[0] == "c"
    assert q.pop() is None


def test_bounded_queue_reports_wait_times():
    env = Environment()
    q = BoundedQueue(env, capacity=4)

    def scenario(env):
        q.offer("a")
        yield env.timeout(3.0)
        q.offer("b")
        yield env.timeout(2.0)
        assert q.head_delay() == pytest.approx(5.0)
        item, waited = q.pop()
        assert (item, waited) == ("a", pytest.approx(5.0))
        item, waited = q.pop()
        assert (item, waited) == ("b", pytest.approx(2.0))

    env.process(scenario(env))
    env.run()


def test_bounded_queue_shed_head_counts_and_fires_hook():
    env = Environment()
    shed_log = []
    q = BoundedQueue(env, capacity=2,
                     on_shed=lambda item, waited: shed_log.append(item))
    q.offer("a")
    assert q.shed_head() == ("a", 0.0)
    assert q.shed == 1
    assert shed_log == ["a"]
    assert q.shed_head() is None


def test_bounded_queue_get_waits_for_offer():
    env = Environment()
    q = BoundedQueue(env, capacity=2)
    got = []

    def consumer(env):
        item, waited = yield q.get()
        got.append((item, waited, env.now))

    def producer(env):
        yield env.timeout(4.0)
        assert q.offer("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    # Handed straight to the waiting getter: zero queueing delay.
    assert got == [("x", 0.0, 4.0)]
    assert q.accepted == 1 and len(q) == 0


def test_bounded_queue_get_immediate_when_nonempty():
    env = Environment()
    q = BoundedQueue(env, capacity=2)
    q.offer("x")

    def consumer(env):
        item, waited = yield q.get()
        assert item == "x" and waited == 0.0

    env.process(consumer(env))
    env.run()


def test_bounded_queue_validation():
    env = Environment()
    with pytest.raises(ValueError):
        BoundedQueue(env, capacity=0)
    with pytest.raises(ValueError):
        BoundedQueue(env, capacity=1, policy="drop-newest")
