"""Tests for event primitives: succeed/fail, conditions, interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env, ev):
        got.append((yield ev))

    def trigger(env, ev):
        yield env.timeout(5)
        ev.succeed("payload")

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except KeyError as err:
            caught.append(err)

    env.process(waiter(env, ev))

    def trigger(env, ev):
        yield env.timeout(1)
        ev.fail(KeyError("gone"))

    env.process(trigger(env, ev))
    env.run()
    assert len(caught) == 1


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_all_of_waits_for_every_event():
    env = Environment()
    done_at = []

    def waiter(env):
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(7, value="b")
        result = yield AllOf(env, [t1, t2])
        done_at.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(waiter(env))
    env.run()
    assert done_at == [7]


def test_any_of_fires_on_first():
    env = Environment()
    done_at = []

    def waiter(env):
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(7, value="slow")
        result = yield AnyOf(env, [t1, t2])
        done_at.append(env.now)
        assert "fast" in result.values()

    env.process(waiter(env))
    env.run()
    assert done_at == [2]


def test_and_or_operators():
    env = Environment()
    times = []

    def waiter(env):
        yield env.timeout(1) & env.timeout(4)
        times.append(env.now)
        yield env.timeout(1) | env.timeout(10)
        times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert times == [4, 5]


def test_empty_all_of_triggers_immediately():
    env = Environment()
    results = []

    def waiter(env):
        result = yield AllOf(env, [])
        results.append(result)

    env.process(waiter(env))
    env.run()
    assert results == [{}]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    record = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            record.append("slept full")
        except Interrupt as intr:
            record.append(("interrupted", env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert record == [("interrupted", 3, "wake up")]


def test_interrupted_process_can_continue():
    env = Environment()
    record = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        record.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert record == [8]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    def late(env, victim):
        yield env.timeout(5)
        with pytest.raises(RuntimeError):
            victim.interrupt()

    victim = env.process(quick(env))
    env.process(late(env, victim))
    env.run()


def test_self_interrupt_rejected():
    env = Environment()

    def selfish(env):
        proc = env.active_process
        with pytest.raises(RuntimeError):
            proc.interrupt()
        yield env.timeout(1)

    env.process(selfish(env))
    env.run()


def test_stale_timeout_after_interrupt_is_ignored():
    """After an interrupt, the abandoned timeout must not resume the process."""
    env = Environment()
    record = []

    def sleeper(env):
        try:
            yield env.timeout(10)
            record.append("full sleep")
        except Interrupt:
            record.append("interrupted")
        # Wait past the stale timeout's fire time.
        yield env.timeout(20)
        record.append("resumed")

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert record == ["interrupted", "resumed"]


def test_process_return_value_via_join():
    env = Environment()

    def worker(env):
        yield env.timeout(4)
        return {"answer": 42}

    def joiner(env, worker_proc):
        result = yield worker_proc
        return result["answer"]

    w = env.process(worker(env))
    j = env.process(joiner(env, w))
    assert env.run(until=j) == 42


def test_process_is_alive_lifecycle():
    env = Environment()

    def worker(env):
        yield env.timeout(5)

    p = env.process(worker(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_cause_none_by_default():
    intr = Interrupt()
    assert intr.cause is None
    intr2 = Interrupt("reason")
    assert intr2.cause == "reason"
