"""Property-based tests for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1000,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_time_is_monotone(delays):
    """The clock never runs backwards regardless of timeout mix."""
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.1, max_value=10, allow_nan=False),
                   min_size=1, max_size=25),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    """At no instant do more than `capacity` users hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = [0]

    def user(env, res, hold):
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, res, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0  # everything released at the end


@given(
    puts=st.lists(st.floats(min_value=0.1, max_value=5, allow_nan=False),
                  min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_container_conserves_mass(puts):
    """Total put == level + total got; level stays within bounds."""
    env = Environment()
    tank = Container(env, capacity=sum(puts) + 1)
    got = []

    def producer(env, tank, amount):
        yield tank.put(amount)

    def consumer(env, tank, amount):
        yield tank.get(amount)
        got.append(amount)

    for amount in puts:
        env.process(producer(env, tank, amount))
    # Consume half of them.
    for amount in puts[: len(puts) // 2]:
        env.process(consumer(env, tank, amount))
    env.run()
    assert tank.level >= -1e-9
    assert abs(sum(puts) - (tank.level + sum(got))) < 1e-9


@given(items=st.lists(st.integers(), min_size=0, max_size=40))
@settings(max_examples=50, deadline=None)
def test_store_preserves_all_items_in_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in items:
            yield store.put(item)

    def consumer(env, store):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == items


@given(
    capacity=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(["reject", "shed-oldest"]),
    arrivals=st.lists(st.floats(min_value=0.0, max_value=50,
                                allow_nan=False), min_size=1, max_size=30),
    drain_every=st.floats(min_value=0.5, max_value=20, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_bounded_queue_never_exceeds_capacity(capacity, policy, arrivals,
                                              drain_every):
    """Occupancy stays <= capacity and the offer accounting balances."""
    from repro.sim import BoundedQueue

    env = Environment()
    queue = BoundedQueue(env, capacity=capacity, policy=policy)
    max_len = [0]
    popped = [0]

    def producer(env, queue, at, item):
        yield env.timeout(at)
        queue.offer(item)
        max_len[0] = max(max_len[0], len(queue))

    def consumer(env, queue):
        while True:
            yield env.timeout(drain_every)
            if queue.pop() is not None:
                popped[0] += 1

    for i, at in enumerate(arrivals):
        env.process(producer(env, queue, at, i))
    env.process(consumer(env, queue))
    env.run(until=max(arrivals) + 1.0)
    assert max_len[0] <= capacity
    assert queue.offered == len(arrivals)
    assert queue.accepted + queue.rejected == queue.offered
    assert queue.accepted == popped[0] + queue.shed + len(queue)


@given(
    steps=st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),
                  st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=1, max_size=20),
    tail=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_time_average_matches_brute_force_integral(steps, tail):
    """time_average == a per-unit-interval Riemann sum of the step signal.

    Sample times are integers, so evaluating the right-continuous signal
    on every unit interval and averaging is an exact, independent
    computation of the same time-weighted mean.
    """
    from repro.sim.monitor import TimeSeries

    series = TimeSeries("x")
    t = 0
    for gap, value in steps:
        t += gap
        series.record(float(t), value)
    end = t + tail

    def value_at(u):
        held = None
        for when, value in zip(series.times, series.values):
            if when <= u:
                held = value
        return held

    brute = sum(value_at(u) for u in range(int(series.times[0]), end))
    brute /= end - series.times[0]
    assert abs(series.time_average(until=float(end)) - brute) < 1e-9


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_event_ordering_stable_under_same_seed(seed):
    """Same seed, same code -> the exact same (time, process) event order,
    even with plenty of simultaneous events."""
    from repro.sim import RandomStreams

    def run(seed):
        env = Environment()
        rng = RandomStreams(seed).get("order")
        order = []

        def proc(env, ident):
            for _ in range(5):
                # Integer delays force plenty of time collisions, so this
                # exercises the (time, priority, insertion) tie-break.
                yield env.timeout(float(rng.integers(0, 3)))
                order.append((env.now, ident))

        for ident in range(8):
            env.process(proc(env, ident))
        env.run()
        return order

    first = run(seed)
    assert first == run(seed)
    assert [t for t, _ in first] == sorted(t for t, _ in first)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_simulation_determinism_under_seed(seed):
    """Identical seeds produce identical trajectories."""
    from repro.sim import RandomStreams

    def run(seed):
        env = Environment()
        rng = RandomStreams(seed).get("svc")
        history = []

        def proc(env):
            for _ in range(10):
                yield env.timeout(float(rng.exponential(2.0)))
                history.append(round(env.now, 9))

        env.process(proc(env))
        env.run()
        return history

    assert run(seed) == run(seed)
