"""Semantics of :class:`repro.sim.Ticker`, the timeout fast path.

Tickers are the kernel's batched/lazy timeout mechanism: pure-delay
processes whose ticks are dispatched from packed heap entries without
creating per-tick :class:`Timeout` events. These tests pin down the
contract the speed rearchitecture must preserve — tick times bit-identical
to the equivalent timeout chain, dispatch accounting, spawn-order
tie-breaking, completion/crash propagation, and correct interleaving with
the instrumented dispatch tier (tracers, ``step()``, ``run(until=...)``).
"""

from __future__ import annotations

import pytest

from repro.sim import Environment, Ticker


def test_yield_float_ticks_at_cumulative_times():
    env = Environment()
    times = []

    def body():
        for d in (1.0, 2.5, 0.5):
            yield d
            times.append(env.now)

    env.ticker(body())
    env.run()
    assert times == [1.0, 3.5, 4.0]
    assert env.now == 4.0


def test_integer_delays_accepted():
    env = Environment()
    times = []

    def body():
        for d in (1, 2):
            yield d
            times.append(env.now)

    env.ticker(body())
    env.run()
    assert times == [1.0, 3.0]


def test_zero_delay_tick_runs_at_current_time():
    env = Environment()
    times = []

    def body():
        yield 0.0
        times.append(env.now)
        yield 1.0
        times.append(env.now)

    env.ticker(body())
    env.run()
    assert times == [0.0, 1.0]


def test_batch_yield_ticks_n_times_at_fixed_period():
    env = Environment()
    resumed_at = []

    def body():
        yield (2.0, 4)
        resumed_at.append(env.now)

    env.ticker(body())
    env.run()
    # Generator resumes only after the n-th tick, at t = 4 * 2.0.
    assert resumed_at == [8.0]
    assert env.now == 8.0


def test_batch_of_one_equals_plain_yield():
    env_a, env_b = Environment(), Environment()

    def batch():
        yield (3.0, 1)

    def plain():
        yield 3.0

    env_a.ticker(batch())
    env_b.ticker(plain())
    env_a.run()
    env_b.run()
    assert env_a.now == env_b.now == 3.0
    assert env_a.dispatch_count == env_b.dispatch_count


def test_tick_times_bit_identical_to_timeout_chain():
    # Tick time is previous + d, exactly the float the timeout chain
    # produces — no accumulated multiplication, no epsilon drift.
    delays = [0.1, 0.7, 1e-9, 3.30001, 0.1]

    env_t = Environment()
    timeout_times = []

    def chain():
        for d in delays:
            yield env_t.timeout(d)
            timeout_times.append(env_t.now)

    env_t.process(chain())
    env_t.run()

    env_k = Environment()
    tick_times = []

    def ticks():
        for d in delays:
            yield d
            tick_times.append(env_k.now)

    env_k.ticker(ticks())
    env_k.run()

    assert tick_times == timeout_times  # exact float equality, on purpose


def test_batch_tick_times_bit_identical_to_repeated_addition():
    env = Environment()
    seen = []

    def observer():
        t = 0.0
        for _ in range(5):
            t = t + 0.1
            seen.append(t)
            yield env.timeout(0.1)

    def body():
        yield (0.1, 5)

    env.process(observer())
    tick = env.ticker(body())
    env.run(until=tick.completed)
    # The batch path computes each tick as previous + period, matching
    # the observer's repeated addition (NOT 5 * 0.1).
    assert env.now == seen[-1]


def test_dispatch_count_parity_with_timeout_chain():
    # start + n ticks + completion — same dispatch count as the process
    # version (process start + n timeouts + process end event).
    n = 7

    env_k = Environment()

    def ticks():
        for _ in range(n):
            yield 1.0

    env_k.ticker(ticks())
    env_k.run()

    env_t = Environment()

    def chain():
        for _ in range(n):
            yield env_t.timeout(1.0)

    env_t.process(chain())
    env_t.run()

    assert env_k.dispatch_count == n + 2
    assert env_k.dispatch_count == env_t.dispatch_count


def test_iterator_input_ticks_without_generator():
    env = Environment()
    t = env.ticker(iter([1.0, 2.0, 3.0]))
    env.run()
    assert env.now == 6.0
    assert t.done
    assert t.completed.value is None  # plain iterator ends with None


def test_iterator_input_supports_batches():
    env = Environment()
    env.ticker(iter([(0.5, 4), 1.0]))
    env.run()
    assert env.now == 3.0


def test_non_iterator_rejected():
    env = Environment()
    with pytest.raises(TypeError, match="not a generator or iterator"):
        env.ticker([1.0, 2.0])  # a list is iterable but not an iterator


def test_completion_value_joinable():
    env = Environment()
    got = []

    def body():
        yield 2.0
        return "lease-expired"

    tick = env.ticker(body())

    def waiter():
        value = yield tick.completed
        got.append((env.now, value))

    env.process(waiter())
    env.run()
    assert got == [(2.0, "lease-expired")]
    assert tick.done


def test_run_until_completed_event():
    env = Environment()

    def body():
        yield 1.0
        yield 1.0
        return 42

    tick = env.ticker(body())
    assert env.run(until=tick.completed) == 42
    assert env.now == 2.0


def test_unwaited_crash_raises_from_run():
    env = Environment()

    def body():
        yield 1.0
        raise RuntimeError("tick exploded")

    env.ticker(body())
    with pytest.raises(RuntimeError, match="tick exploded"):
        env.run()


def test_waited_crash_delivered_to_waiter():
    env = Environment()
    caught = []

    def body():
        yield 1.0
        raise ValueError("boom")

    tick = env.ticker(body())

    def waiter():
        try:
            yield tick.completed
        except ValueError as err:
            caught.append(str(err))

    env.process(waiter())
    env.run()
    assert caught == ["boom"]


@pytest.mark.parametrize("bad", ["soon", -1.0, (1.0, 0), (1.0, -3),
                                 (1.0, 2.5), (1.0, 2, 3), None])
def test_invalid_yield_crashes_ticker(bad):
    env = Environment()

    def body():
        yield bad

    env.ticker(body())
    with pytest.raises(RuntimeError):
        env.run()


def test_invalid_yield_mid_stream_preserves_clock():
    env = Environment()

    def body():
        yield 2.0
        yield -5.0

    env.ticker(body())
    with pytest.raises(RuntimeError):
        env.run()
    assert env.now == 2.0  # crash happens at the tick that resumed it


def test_spawn_order_breaks_same_time_ties():
    env = Environment()
    order = []

    def tick(name):
        yield 1.0
        order.append(name)

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    env.ticker(tick("t1"))
    env.process(proc("p1"))
    env.ticker(tick("t2"))
    env.run()
    # t1 and t2 keep their spawn-time eids; p1's timeout entry is only
    # allocated when the process body runs (after t2's start), so both
    # tickers win the t=1.0 tie.
    assert order == ["t1", "t2", "p1"]


def test_ticker_keeps_spawn_rank_for_whole_lifetime():
    # All ticks reuse the eid allocated at spawn, so a ticker spawned
    # first wins every same-time tie — even against timeouts scheduled
    # much later.
    env = Environment()
    order = []

    def tick():
        for _ in range(3):
            yield 1.0
            order.append(("tick", env.now))

    def proc():
        for _ in range(3):
            yield env.timeout(1.0)
            order.append(("proc", env.now))

    env.ticker(tick())
    env.process(proc())
    env.run()
    assert order == [("tick", 1.0), ("proc", 1.0),
                     ("tick", 2.0), ("proc", 2.0),
                     ("tick", 3.0), ("proc", 3.0)]


def test_resume_spawning_urgent_work_is_displaced_correctly():
    # A ticker whose resume schedules work at the current instant: the
    # new urgent entry must dispatch before the ticker's next tick even
    # though the ticker's entry sat at the heap root during the resume.
    env = Environment()
    order = []

    def tick():
        yield 1.0
        order.append("tick@1")
        child = env.process(sprint())
        yield 1.0
        order.append("tick@2")
        assert child.triggered

    def sprint():
        order.append("sprint-start")
        yield env.timeout(0.5)
        order.append("sprint-end")

    env.ticker(tick())
    env.run()
    assert order == ["tick@1", "sprint-start", "sprint-end", "tick@2"]


def test_step_drives_ticks_one_at_a_time():
    env = Environment()
    times = []

    def body():
        for _ in range(3):
            yield 1.0
            times.append(env.now)

    env.ticker(body())
    while env.peek() != float("inf"):
        env.step()
    assert times == [1.0, 2.0, 3.0]
    assert env.dispatch_count == 5  # start + 3 ticks + completion


def test_tracer_sees_interned_tick_kind():
    env = Environment()
    kinds = []
    env.add_tracer(lambda t, eid, kind: kinds.append(kind))

    def body():
        yield (1.0, 2)

    env.ticker(body())
    env.run()
    assert kinds.count("Tick") == 3  # start + 2 batch ticks
    # The kind string is the class-level interned constant, not a copy.
    assert all(k is Ticker._kind for k in kinds if k == "Tick")


def test_run_until_time_stops_mid_batch_and_resumes():
    env = Environment()

    def body():
        yield (1.0, 10)
        return "done"

    tick = env.ticker(body())
    env.run(until=4.5)
    assert env.now == 4.5
    assert not tick.done
    env.run()
    assert env.now == 10.0
    assert tick.completed.value == "done"


def test_mid_run_add_tracer_from_process_switches_tiers():
    # Installing a tracer mid-run must take effect for subsequent
    # dispatches (the fast loop re-checks instrumentation after resuming
    # user code); removing it must restore the fast path without
    # perturbing tick times.
    env = Environment()
    seen = []
    tracer = lambda t, eid, kind: seen.append((t, kind))  # noqa: E731

    def body():
        for _ in range(6):
            yield 1.0

    def toggler():
        yield env.timeout(2.5)
        env.add_tracer(tracer)
        yield env.timeout(2.0)
        env.remove_tracer(tracer)

    env.ticker(body())
    env.process(toggler())
    env.run()
    assert env.now == 6.0
    tick_times = [t for t, kind in seen if kind == "Tick"]
    assert tick_times == [3.0, 4.0]  # only ticks inside the traced window


def test_two_tickers_interleave_deterministically():
    env = Environment()
    log = []

    def body(name, period):
        for _ in range(4):
            yield period
            log.append((name, env.now))

    env.ticker(body("a", 2.0))
    env.ticker(body("b", 3.0))
    env.run()
    assert log == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("a", 6.0),
                   ("b", 6.0), ("a", 8.0), ("b", 9.0), ("b", 12.0)]


def test_ticker_repr_and_done():
    env = Environment()

    def heartbeat():
        yield 1.0

    tick = env.ticker(heartbeat())
    assert "heartbeat" in repr(tick)
    assert isinstance(tick, Ticker)
    assert not tick.done
    env.run()
    assert tick.done
