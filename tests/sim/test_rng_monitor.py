"""Tests for RNG streams and instrumentation."""

import math

import numpy as np
import pytest

from repro.sim import Counter, Environment, Monitor, RandomStreams, TimeSeries, summarize


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_factories(self):
        a = RandomStreams(seed=7).get("arrivals").random(5)
        b = RandomStreams(seed=7).get("arrivals").random(5)
        assert np.allclose(a, b)

    def test_streams_independent_of_creation_order(self):
        s1 = RandomStreams(seed=7)
        s1.get("x")
        x_then = s1.get("y").random(3)
        s2 = RandomStreams(seed=7)
        y_first = s2.get("y").random(3)
        assert np.allclose(x_then, y_first)

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        assert not np.allclose(
            streams.get("a").random(10), streams.get("b").random(10))

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("a").random(10)
        b = RandomStreams(seed=2).get("a").random(10)
        assert not np.allclose(a, b)

    def test_spawn_children_reproducible(self):
        a = RandomStreams(seed=3).spawn("child").get("s").random(4)
        b = RandomStreams(seed=3).spawn("child").get("s").random(4)
        assert np.allclose(a, b)

    def test_contains(self):
        streams = RandomStreams()
        assert "a" not in streams
        streams.get("a")
        assert "a" in streams


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("util")
        ts.record(0, 1.0)
        ts.record(5, 2.0)
        assert len(ts) == 2
        assert ts.last() == 2.0

    def test_empty_last_is_none(self):
        assert TimeSeries("x").last() is None

    def test_time_average_step_signal(self):
        ts = TimeSeries("load")
        ts.record(0, 0.0)
        ts.record(10, 1.0)
        # 0 for [0,10), 1 for [10,20) -> average 0.5 over [0,20)
        assert ts.time_average(until=20) == pytest.approx(0.5)

    def test_time_average_empty_is_nan(self):
        assert math.isnan(TimeSeries("x").time_average())

    def test_resample_grid(self):
        ts = TimeSeries("v")
        ts.record(0, 1.0)
        ts.record(2, 3.0)
        grid, vals = ts.resample(step=1.0, until=4)
        assert list(grid) == [0, 1, 2, 3, 4]
        assert list(vals) == [1, 1, 3, 3, 3]


class TestMonitorCounter:
    def test_monitor_records_at_env_time(self):
        env = Environment()
        mon = Monitor(env)

        def proc(env, mon):
            yield env.timeout(4)
            mon.record("queue", 7)

        env.process(proc(env, mon))
        env.run()
        assert mon["queue"].times == [4]
        assert mon["queue"].values == [7]

    def test_monitor_without_env_needs_explicit_time(self):
        mon = Monitor()
        with pytest.raises(ValueError, match="ordinal_time"):
            mon.record("x", 1)
        mon.record("x", 1, time=3)
        assert mon["x"].times == [3]

    def test_ordinal_time_opt_in_timestamps_by_sample_index(self):
        mon = Monitor(ordinal_time=True)
        for value in (5.0, 7.0, 9.0):
            mon.record("x", value)
        assert mon["x"].times == [0.0, 1.0, 2.0]
        # An explicit time still wins over the ordinal.
        mon.record("x", 11.0, time=100.0)
        assert mon["x"].times[-1] == 100.0

    def test_env_time_beats_ordinal_opt_in(self):
        env = Environment()
        mon = Monitor(env, ordinal_time=True)
        mon.record("x", 1.0)
        assert mon["x"].times == [0.0]
        env._now = 5.0
        mon.record("x", 2.0)
        assert mon["x"].times == [0.0, 5.0]

    def test_counter_breakdown(self):
        c = Counter("jobs")
        c.incr("done")
        c.incr("done")
        c.incr("failed")
        assert c.total == 3
        assert c.by_key == {"done": 2, "failed": 1}

    def test_monitor_count_interface(self):
        mon = Monitor()
        mon.count("events", key="a")
        mon.count("events", key="a", amount=2)
        assert mon.counters["events"].total == 3
        assert "events" in mon


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"count": 0}

    def test_basic_statistics(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats["count"] == 5
        assert stats["mean"] == 3
        assert stats["median"] == 3
        assert stats["min"] == 1
        assert stats["max"] == 5
        assert stats["q1"] == 2
        assert stats["q3"] == 4

    def test_whiskers_clipped_to_data(self):
        stats = summarize([1, 2, 3, 4, 100])
        # 100 is an outlier beyond q3 + 1.5 IQR; whisker must clip below it.
        assert stats["whisker_high"] < 100
        assert stats["whisker_low"] == 1

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats["mean"] == 7.0
        assert stats["std"] == 0.0

    def test_none_and_nan_samples_are_dropped(self):
        stats = summarize([1.0, None, math.nan, 3.0])
        assert stats["count"] == 2
        assert stats["mean"] == 2.0

    def test_all_none_or_nan_is_empty(self):
        assert summarize([None, math.nan]) == {"count": 0}
