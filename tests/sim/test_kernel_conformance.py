"""Kernel conformance suite: the semantics the speed work must preserve.

These tests pin the *observable contract* of the DES kernel — dispatch
ordering, clock behavior, ``run`` termination modes, interrupt
semantics, and condition completion order — independently of how the
hot path is implemented. They were written against the pre-rearchitecture
kernel and must stay green through every perf refactor: if one of these
fails, the refactor changed behavior, not just speed.

Organized by contract area:

- ``TestDispatchOrder`` — same-time FIFO, priority ties, cross-time order
- ``TestClock`` — monotonicity, ``peek``, ``EmptySchedule`` edges
- ``TestRunModes`` — ``run()``, ``run(until=t)``, ``run(until=event)``
  equivalence and error cases
- ``TestCancellation`` — interrupts, stale wakeups, terminated processes
- ``TestConditions`` — ``all_of``/``any_of`` completion order and values
- ``TestDeterminism`` — bit-identical replay of a mixed workload
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Timeout
from repro.sim.environment import EmptySchedule
from repro.sim.events import _NORMAL, _URGENT


class TestDispatchOrder:
    def test_same_time_same_priority_is_fifo(self):
        """Events scheduled at one instant dispatch in insertion order."""
        env = Environment()
        order = []
        events = [env.event() for _ in range(8)]
        for i, ev in enumerate(events):
            ev.callbacks.append(lambda _e, i=i: order.append(i))
        # Trigger in insertion order; all land at t=0.
        for ev in events:
            ev.succeed()
        env.run()
        assert order == list(range(8))

    def test_urgent_beats_normal_at_same_time(self):
        env = Environment()
        order = []
        normal = env.event()
        normal.callbacks.append(lambda _e: order.append("normal"))
        urgent = env.event()
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        # Schedule the normal event first, then the urgent one: priority
        # must still win over insertion order at the same timestamp.
        env._schedule(normal, priority=_NORMAL)
        normal._value = None
        env._schedule(urgent, priority=_URGENT)
        urgent._value = None
        env.run()
        assert order == ["urgent", "normal"]

    def test_priority_ties_fall_back_to_insertion_order(self):
        env = Environment()
        order = []
        for i in range(6):
            ev = env.event()
            ev.callbacks.append(lambda _e, i=i: order.append(i))
            env._schedule(ev, priority=_URGENT)
            ev._value = None
        env.run()
        assert order == list(range(6))

    def test_time_order_dominates_priority(self):
        """An urgent event later in time never jumps an earlier normal one."""
        env = Environment()
        order = []

        def late_urgent(env):
            yield env.timeout(2)
            victim.interrupt("late")  # urgent, but at t=2

        def early(env):
            yield env.timeout(1)
            order.append(("early", env.now))
            yield env.timeout(5)

        def victim_proc(env):
            try:
                yield env.timeout(10)
            except Interrupt as intr:
                order.append((intr.cause, env.now))

        victim = env.process(victim_proc(env))
        env.process(early(env))
        env.process(late_urgent(env))
        env.run()
        assert order == [("early", 1), ("late", 2)]

    def test_interrupt_preempts_pending_same_time_normal_events(self):
        """An interrupt scheduled at t jumps ahead of normal events still
        queued at t — but never ahead of ones already dispatched."""
        env = Environment()
        order = []

        def sleeper(env):
            try:
                yield env.timeout(10)
            except Interrupt:
                order.append("interrupted")

        def bystander(env):
            yield env.timeout(5)
            order.append("bystander")

        def interrupter(env, victim):
            yield env.timeout(5)
            victim.interrupt()

        victim = env.process(sleeper(env))
        # The interrupter's t=5 timeout has a lower event id than the
        # bystander's, so it dispatches first; the urgent interrupt it
        # schedules then beats the bystander's still-queued normal event.
        env.process(interrupter(env, victim))
        env.process(bystander(env))
        env.run()
        assert order == ["interrupted", "bystander"]

    def test_interrupt_cannot_preempt_already_dispatched_events(self):
        """Flip the creation order: once the bystander's timeout has been
        dispatched, the urgent interrupt lands after it."""
        env = Environment()
        order = []

        def sleeper(env):
            try:
                yield env.timeout(10)
            except Interrupt:
                order.append("interrupted")

        def bystander(env):
            yield env.timeout(5)
            order.append("bystander")

        def interrupter(env, victim):
            yield env.timeout(5)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(bystander(env))
        env.process(interrupter(env, victim))
        env.run()
        assert order == ["bystander", "interrupted"]


class TestClock:
    def test_clock_only_moves_at_dispatch(self):
        env = Environment()
        env.timeout(5)
        assert env.now == 0.0
        env.step()
        assert env.now == 5.0

    def test_clock_is_monotone_over_mixed_workload(self):
        env = Environment()
        seen = []

        def proc(env, d):
            yield env.timeout(d)
            seen.append(env.now)
            yield env.timeout(0)
            seen.append(env.now)

        for d in (5, 1, 3, 1, 0, 8):
            env.process(proc(env, d))
        env.run()
        assert seen == sorted(seen)

    def test_peek_returns_next_event_time_without_popping(self):
        env = Environment()
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3.0
        assert env.peek() == 3.0  # idempotent
        assert env.now == 0.0  # did not advance

    def test_peek_empty_is_inf_and_step_raises(self):
        env = Environment()
        assert env.peek() == float("inf")
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_sees_urgent_and_normal_alike(self):
        env = Environment()
        ev = env.event()
        env._schedule(ev, priority=_URGENT, delay=2.0)
        assert env.peek() == 2.0

    def test_dispatch_count_is_exact(self):
        env = Environment()
        for _ in range(5):
            env.timeout(1)
        env.run()
        assert env.dispatch_count == 5

    def test_initial_time_offsets_everything(self):
        env = Environment(initial_time=100.0)
        fired = []

        def proc(env):
            yield env.timeout(2.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [102.5]


class TestRunModes:
    @staticmethod
    def _workload(env, log):
        def proc(env, d, tag):
            yield env.timeout(d)
            log.append((tag, env.now))

        for i, d in enumerate((1, 2, 2, 4, 7)):
            env.process(proc(env, d, i))

    def test_until_time_and_until_event_agree_on_prefix(self):
        """Running to t=4 and running to the event firing at t=4 observe
        the identical dispatch prefix."""
        log_t, log_e = [], []

        env = Environment()
        self._workload(env, log_t)
        env.run(until=4)
        # until=t runs events strictly before t, then pins the clock at t.
        assert env.now == 4.0

        env2 = Environment()
        self._workload(env2, log_e)

        def marker(env):
            yield env.timeout(4)
            return "mark"

        assert env2.run(until=env2.process(marker(env2))) == "mark"
        assert env2.now == 4.0
        # until=t stops *before* t=4 events; until=event runs through the
        # marker, which was scheduled after the 4s workload timeout.
        assert log_t == [(0, 1.0), (1, 2.0), (2, 2.0)]
        assert log_e == log_t + [(3, 4.0)]

    def test_until_time_with_no_event_at_t_still_sets_now(self):
        env = Environment()
        env.timeout(1)
        env.run(until=9.5)
        assert env.now == 9.5

    def test_until_in_the_past_raises(self):
        env = Environment(initial_time=5)
        with pytest.raises(ValueError):
            env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=4.999)

    def test_until_event_already_processed_returns_its_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return 42

        p = env.process(proc(env))
        env.run()
        assert env.run(until=p) == 42

    def test_until_event_already_failed_raises_its_error(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("boom")

        def shield(env, target):
            try:
                yield target
            except ValueError:
                pass

        p = env.process(bad(env))
        env.process(shield(env, p))
        env.run()
        with pytest.raises(ValueError, match="boom"):
            env.run(until=p)

    def test_until_event_failure_mid_run_raises(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("mid-run")

        with pytest.raises(RuntimeError, match="mid-run"):
            env.run(until=env.process(bad(env)))

    def test_queue_dry_before_until_event_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError, match="ran dry"):
            env.run(until=env.event())

    def test_run_without_until_drains_queue(self):
        env = Environment()
        log = []
        self._workload(env, log)
        env.run()
        assert len(log) == 5
        assert env.peek() == float("inf")

    def test_run_resumes_after_until(self):
        """Consecutive run(until=...) calls continue the same schedule."""
        env = Environment()
        log = []
        self._workload(env, log)
        env.run(until=3)
        mid = list(log)
        env.run()
        assert log[:len(mid)] == mid
        assert [tag for tag, _ in log] == [0, 1, 2, 3, 4]


class TestCancellation:
    def test_interrupt_delivers_cause_at_current_time(self):
        env = Environment()
        record = []

        def sleeper(env):
            try:
                yield env.timeout(50)
            except Interrupt as intr:
                record.append((env.now, intr.cause))

        def killer(env, victim):
            yield env.timeout(3)
            victim.interrupt("cancel")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert record == [(3.0, "cancel")]

    def test_stale_target_does_not_resume_twice(self):
        """The timeout the victim was waiting on still fires later; it
        must not wake the already-moved-on process a second time."""
        env = Environment()
        wakeups = []

        def sleeper(env):
            try:
                yield env.timeout(10)
                wakeups.append("timeout")
            except Interrupt:
                wakeups.append("interrupt")
            yield env.timeout(100)
            wakeups.append("second-sleep")

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert wakeups == ["interrupt", "second-sleep"]

    def test_interrupting_terminated_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError, match="terminated"):
            p.interrupt()

    def test_self_interrupt_raises(self):
        env = Environment()
        errors = []

        def narcissist(env):
            try:
                env.active_process.interrupt()
            except RuntimeError as err:
                errors.append(str(err))
            yield env.timeout(1)

        env.process(narcissist(env))
        env.run()
        assert errors and "cannot interrupt itself" in errors[0]

    def test_uncaught_interrupt_kills_the_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(10)

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt("die")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        with pytest.raises(Interrupt):
            env.run()
        assert not victim.is_alive


class TestConditions:
    def test_all_of_fires_when_last_completes(self):
        env = Environment()
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(5, "b"), env.timeout(3, "c")
        done_at = []
        cond = env.all_of([t1, t2, t3])
        cond.callbacks.append(lambda _e: done_at.append(env.now))
        env.run()
        assert done_at == [5.0]
        assert cond.value == {t1: "a", t2: "b", t3: "c"}

    def test_all_of_value_preserves_constituent_order(self):
        env = Environment()
        # Completion order (3, 1, 2) differs from constituent order.
        ts = [env.timeout(3, "x"), env.timeout(1, "y"), env.timeout(2, "z")]
        cond = env.all_of(ts)
        env.run()
        assert list(cond.value.keys()) == ts
        assert list(cond.value.values()) == ["x", "y", "z"]

    def test_any_of_fires_at_first_completion(self):
        env = Environment()

        def worker(env, delay, tag):
            yield env.timeout(delay)
            return tag

        slow = env.process(worker(env, 9, "slow"))
        fast = env.process(worker(env, 2, "fast"))
        cond = env.any_of([slow, fast])
        done_at = []
        cond.callbacks.append(lambda _e: done_at.append(env.now))
        env.run()
        assert done_at == [2.0]
        # Only the fast process had completed when the condition fired.
        assert cond.value == {fast: "fast"}

    def test_any_of_collects_everything_triggered_at_fire_time(self):
        """Timeouts are *triggered at creation* (their value is known up
        front), so an any_of over timeouts collects all of them even
        though it fires at the earliest one. This is a long-standing
        kernel quirk the refactor must not change."""
        env = Environment()
        slow, fast = env.timeout(9, "slow"), env.timeout(2, "fast")
        assert slow.triggered and fast.triggered
        cond = env.any_of([slow, fast])
        done_at = []
        cond.callbacks.append(lambda _e: done_at.append(env.now))
        env.run()
        assert done_at == [2.0]
        assert cond.value == {slow: "slow", fast: "fast"}

    def test_any_of_same_time_tie_collects_both_completions(self):
        """Two processes completing at one instant: the condition fires
        on the first-scheduled completion, and by the time its dispatch
        runs both completions have triggered, so both are collected."""
        env = Environment()

        def worker(env, tag):
            yield env.timeout(4)
            return tag

        first = env.process(worker(env, "first"))
        second = env.process(worker(env, "second"))
        cond = env.any_of([second, first])
        env.run()
        assert cond.value == {first: "first", second: "second"}

    def test_empty_conditions_succeed_immediately(self):
        env = Environment()
        assert env.all_of([]).value == {}
        assert env.any_of([]).value == {}

    def test_all_of_fails_fast_on_first_failure(self):
        env = Environment()
        caught = []

        def bad(env):
            yield env.timeout(2)
            raise ValueError("broken")

        def waiter(env, cond):
            try:
                yield cond
            except ValueError as err:
                caught.append((env.now, str(err)))

        cond = env.all_of([env.timeout(10), env.process(bad(env))])
        env.process(waiter(env, cond))
        env.run()
        assert caught == [(2.0, "broken")]

    def test_operator_composition_matches_factories(self):
        env = Environment()
        a, b = env.timeout(1, "a"), env.timeout(2, "b")
        both = a & b
        either = env.timeout(3, "c") | env.timeout(4, "d")
        assert isinstance(both, AllOf)
        assert isinstance(either, AnyOf)
        env.run()
        assert both.value == {a: "a", b: "b"}

    def test_cross_environment_events_rejected(self):
        env, other = Environment(), Environment()
        with pytest.raises(ValueError, match="different environments"):
            env.all_of([env.timeout(1), other.timeout(1)])


class TestEventLifecycle:
    def test_succeed_twice_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError, match="already triggered"):
            ev.succeed(2)

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-0.001)

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc(env):
            got.append((yield env.timeout(2, value="payload")))

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_value_and_ok_before_trigger_raise(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(RuntimeError):
            ev.value
        with pytest.raises(RuntimeError):
            ev.ok


class TestDeterminism:
    @staticmethod
    def _mixed_run():
        env = Environment()
        log = []

        def worker(env, i):
            yield env.timeout(i % 5)
            log.append(("w", i, env.now))
            if i % 3 == 0:
                child = env.process(TestDeterminism._child(env, i, log))
                yield child
            yield env.timeout((i * 7) % 4)
            log.append(("done", i, env.now))

        for i in range(40):
            env.process(worker(env, i))
        env.run()
        return log, env.dispatch_count

    @staticmethod
    def _child(env, i, log):
        yield env.timeout(0.5)
        log.append(("c", i, env.now))

    def test_replay_is_bit_identical(self):
        first = self._mixed_run()
        second = self._mixed_run()
        assert first == second

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_fifo_holds_for_arbitrary_same_time_batches(self, seed):
        """Property: any batch of same-delay timeouts resumes processes
        in spawn order, whatever the delay value."""
        delay = (seed % 97) / 7.0
        env = Environment()
        order = []

        def proc(env, i):
            yield env.timeout(delay)
            order.append(i)

        for i in range(10):
            env.process(proc(env, i))
        env.run()
        assert order == list(range(10))
