"""Round-trip regression tests for the instrumentation live-flag.

The rearchitected run loop dispatches through a zero-overhead fast path
whenever no tracer, profiler, debug mode, or scheduling hook is installed,
and routes through the instrumented :meth:`Environment.step` otherwise.
The switch is the one-cell ``_live`` flag that every hook mutator must
keep current. These tests pin the round-trip property: installing any
hook flips the environment to the instrumented tier, and removing it
restores the fast path *exactly* — same flag, same tracer list, no
leftover instrumentation tax — including when the toggle happens mid-run.
"""

from __future__ import annotations

from repro.observability import SimProfiler
from repro.sim import Environment


def drain(env, horizon=5.0):
    def body():
        while True:
            yield 1.0

    env.ticker(body())
    env.run(until=horizon)


def test_fresh_environment_is_uninstrumented():
    env = Environment()
    assert env._instrumented is False
    assert env._tracers == []
    assert env.tracer is None
    assert env.profiler is None


def test_add_remove_tracer_round_trip():
    env = Environment()
    fn = lambda t, eid, kind: None  # noqa: E731
    env.add_tracer(fn)
    assert env._instrumented is True
    assert env._tracers == [fn]
    env.remove_tracer(fn)
    assert env._instrumented is False
    assert env._tracers == []


def test_multiple_tracers_stay_instrumented_until_last_removed():
    env = Environment()
    a = lambda t, eid, kind: None  # noqa: E731
    b = lambda t, eid, kind: None  # noqa: E731
    env.add_tracer(a)
    env.add_tracer(b)
    env.remove_tracer(a)
    assert env._instrumented is True
    assert env._tracers == [b]
    env.remove_tracer(b)
    assert env._instrumented is False


def test_tracer_property_setter_round_trip():
    env = Environment()
    fn = lambda t, eid, kind: None  # noqa: E731
    env.tracer = fn
    assert env._instrumented is True
    assert env.tracer is fn
    env.tracer = None
    assert env._instrumented is False
    assert env._tracers == []


def test_profiler_setter_round_trip():
    env = Environment()
    env.profiler = SimProfiler()
    assert env._instrumented is True
    env.profiler = None
    assert env._instrumented is False


def test_debug_setter_round_trip():
    env = Environment()
    env.debug = True
    assert env._instrumented is True
    env.debug = False
    assert env._instrumented is False


def test_schedule_hook_round_trip():
    env = Environment()
    env._on_schedule = lambda event: None
    assert env._instrumented is True
    env._on_schedule = None
    assert env._instrumented is False


def test_debug_constructor_flag_instruments():
    assert Environment(debug=True)._instrumented is True


def test_traced_block_round_trip():
    events = []
    with Environment.traced(lambda t, eid, kind: events.append(kind)):
        env = Environment()
        assert env._instrumented is True
        drain(env)
    assert events  # the block's environments fed the tracer
    # Environments created after the block are back on the fast path.
    after = Environment()
    assert after._instrumented is False
    assert Environment._default_tracers == ()


def test_nested_traced_blocks_stack_and_unwind():
    outer, inner = [], []
    with Environment.traced(lambda t, eid, kind: outer.append(kind)):
        with Environment.traced(lambda t, eid, kind: inner.append(kind)):
            env = Environment()
            assert len(env._tracers) == 2
            drain(env)
        assert len(Environment._default_tracers) == 1
    assert Environment._default_tracers == ()
    assert outer == inner  # both hooks saw the same dispatch stream


def test_profiled_block_round_trip():
    with Environment.profiled(SimProfiler()) as prof:
        env = Environment()
        assert env.profiler is prof
        assert env._instrumented is True
        drain(env)
    assert Environment._default_profiler is None
    assert Environment()._instrumented is False
    assert prof.dispatches > 0


def test_live_flag_identity_is_stable():
    # run() pre-binds the _live cell once; mutators must update the cell
    # in place, never rebind it, or a running loop would consult a stale
    # flag forever.
    env = Environment()
    cell = env._live
    env.add_tracer(lambda t, eid, kind: None)
    env.debug = True
    env.profiler = SimProfiler()
    env.tracer = None
    env.profiler = None
    env.debug = False
    assert env._live is cell
    assert env._instrumented is False


def test_mid_run_round_trip_restores_fast_path():
    # Toggle instrumentation twice inside one run(): the traced windows
    # must capture exactly their dispatches and the untraced gaps none,
    # while tick times stay unperturbed.
    env = Environment()
    seen = []
    fn = lambda t, eid, kind: seen.append(t)  # noqa: E731
    times = []

    def work():
        for _ in range(8):
            yield 1.0
            times.append(env.now)

    def toggler():
        yield env.timeout(1.5)
        env.add_tracer(fn)
        yield env.timeout(2.0)
        env.remove_tracer(fn)
        assert env._instrumented is False
        yield env.timeout(2.0)
        env.add_tracer(fn)
        yield env.timeout(1.0)
        env.remove_tracer(fn)

    env.ticker(work())
    env.process(toggler())
    env.run()
    assert times == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
    assert env._instrumented is False
    assert env._tracers == []
    # Traced windows were (1.5, 3.5] and (5.5, 6.5]: ticks at 2, 3 and 6,
    # plus the toggler's own timeouts at 3.5 and 6.5.
    assert [t for t in seen if t == int(t)] == [2.0, 3.0, 6.0]


def test_mid_run_profiler_round_trip():
    env = Environment()
    prof = SimProfiler()

    def work():
        for _ in range(6):
            yield 1.0

    def toggler():
        yield env.timeout(2.5)
        env.profiler = prof
        yield env.timeout(2.0)
        env.profiler = None

    env.ticker(work())
    env.process(toggler())
    env.run()
    assert env._instrumented is False
    # Profiled window (2.5, 4.5]: ticks at 3, 4 and the toggler resume.
    assert prof.dispatches == 3
