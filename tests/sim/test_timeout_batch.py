"""Conformance tests for :meth:`Environment.timeout_batch`.

``timeout_batch`` is the bulk-scheduling entry point added by the kernel
speed rearchitecture: when the batch rivals the queue in size it appends
all entries and heapifies once instead of sifting one by one. Whatever
branch it takes, the observable contract is fixed — dispatch order, eids,
values, and hook callbacks identical to the equivalent sequence of
``env.timeout(d)`` calls.
"""

from __future__ import annotations

import pytest

from repro.sim import Environment, Timeout


def record_run(env):
    log = []

    def waiter(ev):
        value = yield ev
        log.append((env.now, value))

    return log, waiter


def test_dispatch_order_identical_to_sequential_timeouts():
    delays = [3.0, 1.0, 2.0, 1.0, 0.0, 2.5]

    env_a = Environment()
    log_a, waiter_a = record_run(env_a)
    for i, ev in enumerate(env_a.timeout_batch(delays, value="v")):
        env_a.process(waiter_a(ev))
    env_a.run()

    env_b = Environment()
    log_b, waiter_b = record_run(env_b)
    for d in delays:
        env_b.process(waiter_b(env_b.timeout(d, value="v")))
    env_b.run()

    assert log_a == log_b
    assert env_a.now == env_b.now


def test_equal_delays_dispatch_in_iteration_order():
    # FIFO tie-break: eids are allocated in iteration order, so
    # same-time timeouts fire in the order the delays were given.
    env = Environment()
    order = []
    events = env.timeout_batch([1.0, 1.0, 1.0], value=None)
    for i, ev in enumerate(events):
        ev.callbacks.append(lambda e, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2]


def test_small_batch_takes_push_branch():
    # Queue much larger than the batch: entries are sifted in one by one.
    env = Environment()
    env.timeout_batch([float(i) for i in range(40)])  # build a big queue
    before = len(env._queue)
    events = env.timeout_batch([0.5, 0.25])
    assert len(env._queue) == before + 2
    fired = []
    for ev in events:
        ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=1.0)
    assert fired == [0.25, 0.5]


def test_large_batch_takes_heapify_branch():
    # Batch rivals the (initially empty) queue: extend + heapify once.
    env = Environment()
    fired = []
    for ev in env.timeout_batch([2.0, 1.0, 3.0]):
        ev.callbacks.append(lambda e: fired.append(env.now))
    env.run()
    assert fired == [1.0, 2.0, 3.0]


def test_values_carried_per_event():
    env = Environment()
    events = env.timeout_batch([1.0, 2.0], value="payload")
    env.run()
    assert [ev.value for ev in events] == ["payload", "payload"]
    assert all(isinstance(ev, Timeout) for ev in events)


def test_negative_delay_raises_before_scheduling():
    env = Environment()
    with pytest.raises(ValueError, match="negative delay"):
        env.timeout_batch([1.0, -0.5, 2.0])
    # Nothing from the failed batch leaked into the queue.
    assert env._queue == []


def test_empty_batch_is_a_noop():
    env = Environment()
    assert env.timeout_batch([]) == []
    assert env._queue == []
    env.run()
    assert env.now == 0.0


def test_schedule_hook_called_once_per_event():
    env = Environment()
    hooked = []
    env._on_schedule = hooked.append
    events = env.timeout_batch([1.0, 2.0, 3.0])
    assert hooked == events


def test_generator_input_accepted():
    env = Environment()
    events = env.timeout_batch(0.5 * i for i in range(1, 4))
    env.run()
    assert env.now == 1.5
    assert len(events) == 3
