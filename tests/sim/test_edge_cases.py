"""Edge-case tests for kernel and cluster paths not covered elsewhere."""

import pytest

from repro.cluster import Cloud, VMState
from repro.cluster.cost import CostModel
from repro.sim import (
    AnyOf,
    Environment,
    PriorityResource,
    Resource,
)


class TestEventTrigger:
    def test_trigger_copies_another_events_state(self):
        env = Environment()
        source = env.event()
        mirror = env.event()
        results = []

        def waiter(env, ev):
            results.append((yield ev))

        env.process(waiter(env, mirror))

        def driver(env):
            yield env.timeout(1)
            source.succeed("payload")
            yield env.timeout(1)
            mirror.trigger(source)

        env.process(driver(env))
        env.run()
        assert results == ["payload"]


class TestConditionFailure:
    def test_all_of_fails_when_member_fails(self):
        env = Environment()
        caught = []

        def failing(env):
            yield env.timeout(1)
            raise ValueError("member died")

        def waiter(env, proc):
            try:
                yield proc & env.timeout(100)
            except ValueError as err:
                caught.append(str(err))

        proc = env.process(failing(env))
        env.process(waiter(env, proc))
        env.run()
        assert caught == ["member died"]

    def test_any_of_fails_fast_on_failure(self):
        env = Environment()
        caught = []

        def failing(env):
            yield env.timeout(1)
            raise KeyError("boom")

        def waiter(env, proc):
            try:
                yield AnyOf(env, [proc, env.timeout(100)])
            except KeyError:
                caught.append(env.now)

        proc = env.process(failing(env))
        env.process(waiter(env, proc))
        env.run()
        assert caught == [1]


class TestPriorityResourceRelease:
    def test_cancel_queued_priority_request(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(10)

        def quitter(env):
            req = res.request(priority=1)
            result = yield req | env.timeout(2)
            if req not in result:
                res.release(req)  # withdraw from the priority queue
                order.append("gave-up")

        def patient(env):
            yield env.timeout(1)
            with res.request(priority=2) as req:
                yield req
                order.append(("got-it", env.now))

        env.process(holder(env))
        env.process(quitter(env))
        env.process(patient(env))
        env.run()
        assert "gave-up" in order
        assert ("got-it", 10) in order


class TestCloudEdgeCases:
    def test_terminate_while_booting(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=100,
                      deprovisioning_delay_s=0)

        def scenario(env, cloud):
            req = cloud.provision()
            yield env.timeout(10)
            cloud.terminate(req.vm)  # killed mid-boot
            vm = yield req.event
            assert vm.state is VMState.TERMINATED

        env.run(until=env.process(scenario(env, cloud)))
        assert len(cloud.billed_intervals) == 1
        start, stop = cloud.billed_intervals[0]
        assert stop - start == pytest.approx(10.0)

    def test_terminate_busy_vm_rejected(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=1)

        def scenario(env, cloud):
            req = cloud.provision()
            vm = yield req.event
            vm.machine.allocate(1)
            with pytest.raises(RuntimeError):
                cloud.terminate(vm)
            vm.machine.release(1)
            cloud.terminate(vm)

        env.run(until=env.process(scenario(env, cloud)))


class TestCostModelEdgeCases:
    def test_zero_granularity_is_continuous(self):
        model = CostModel("continuous", price_per_hour=3600.0,
                          billing_granularity_s=0.0)
        assert model.charge(1.0) == pytest.approx(1.0)
        assert model.charge(0.5) == pytest.approx(0.5)

    def test_minimum_charge_dominates_short_runs(self):
        model = CostModel("min60", price_per_hour=3600.0,
                          billing_granularity_s=0.0,
                          minimum_charge_s=60.0)
        assert model.charge(1.0) == pytest.approx(60.0)
        assert model.charge(120.0) == pytest.approx(120.0)


class TestResourceQueueIntrospection:
    def test_queue_contents_visible(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def waiter(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))

        def checker(env):
            yield env.timeout(2)
            assert len(res.queue) == 1
            assert res.count == 1

        env.process(checker(env))
        env.run()
