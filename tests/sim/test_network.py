"""Tests for the fault-aware message fabric (`repro.sim.Network`)."""

import pytest

from repro.sim import Environment, Monitor, Network


class Blocker:
    """Test model: blocks a fixed (src, dst) pair."""

    def __init__(self, src, dst):
        self.pair = (src, dst)

    def blocks(self, src, dst):
        return (src, dst) == self.pair


class Dropper:
    """Test model: drops every message of one kind."""

    def __init__(self, kind):
        self.kind = kind

    def drops(self, src, dst, kind):
        return kind == self.kind


class Delayer:
    """Test model: constant extra latency on every path."""

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def extra_latency_s(self, src, dst):
        return self.delay_s


def make_net(*nodes):
    env = Environment()
    net = Network(env)
    net.add_nodes(nodes)
    return env, net


class TestTopology:
    def test_add_node_is_idempotent(self):
        _, net = make_net("a")
        net.add_node("a")
        assert net.nodes == ["a"]

    def test_nodes_keep_registration_order(self):
        _, net = make_net("b", "a", "c")
        assert net.nodes == ["b", "a", "c"]

    def test_unknown_node_raises(self):
        _, net = make_net("a")
        with pytest.raises(KeyError):
            net.send("a", "ghost", deliver=lambda: None)
        with pytest.raises(KeyError):
            net.allows("ghost", "a")

    def test_remove_node(self):
        _, net = make_net("a", "b")
        net.remove_node("b")
        assert net.nodes == ["a"]


class TestSend:
    def test_zero_latency_delivers_synchronously(self):
        _, net = make_net("a", "b")
        seen = []
        verdict = net.send("a", "b", deliver=lambda: seen.append(1))
        assert verdict == "delivered"
        assert seen == [1]

    def test_blocked_message_never_delivers(self):
        _, net = make_net("a", "b")
        net.attach(Blocker("a", "b"))
        seen = []
        assert net.send("a", "b", deliver=lambda: seen.append(1)) == "blocked"
        assert seen == []
        # The reverse direction is unaffected.
        assert net.send("b", "a", deliver=lambda: seen.append(2)) \
            == "delivered"
        assert seen == [2]

    def test_dropped_message_never_delivers(self):
        _, net = make_net("a", "b")
        net.attach(Dropper("data"))
        seen = []
        assert net.send("a", "b", deliver=lambda: seen.append(1),
                        kind="data") == "dropped"
        assert net.send("a", "b", deliver=lambda: seen.append(2),
                        kind="heartbeat") == "delivered"
        assert seen == [2]

    def test_block_beats_drop(self):
        _, net = make_net("a", "b")
        net.attach(Dropper("data"))
        net.attach(Blocker("a", "b"))
        assert net.send("a", "b", deliver=lambda: None,
                        kind="data") == "blocked"
        assert net.dropped == 0

    def test_latency_defers_delivery(self):
        env, net = make_net("a", "b")
        net.attach(Delayer(2.5))
        seen = []
        assert net.send("a", "b", deliver=lambda: seen.append(env.now)) \
            == "in_flight"
        assert net.in_flight == 1
        env.run()
        assert seen == [2.5]
        assert net.in_flight == 0
        assert net.delivered == 1

    def test_latencies_are_additive(self):
        _, net = make_net("a", "b")
        net.attach(Delayer(1.0))
        net.attach(Delayer(0.5))
        assert net.latency_s("a", "b") == pytest.approx(1.5)


class TestConservation:
    def test_ledger_balances_through_mixed_outcomes(self):
        env, net = make_net("a", "b", "c")
        net.attach(Blocker("a", "b"))
        net.attach(Dropper("data"))
        net.attach(Delayer(1.0))
        net.send("a", "b", deliver=lambda: None)            # blocked
        net.send("a", "c", deliver=lambda: None, kind="data")  # dropped
        net.send("b", "c", deliver=lambda: None)            # in flight
        net.send("c", "a", deliver=lambda: None)            # in flight
        assert net.sent == 4
        assert net.sent == (net.delivered + net.blocked + net.dropped
                            + net.in_flight)
        env.run()
        assert net.in_flight == 0
        assert net.sent == net.delivered + net.blocked + net.dropped

    def test_by_kind_breakdown(self):
        _, net = make_net("a", "b")
        net.attach(Dropper("data"))
        net.send("a", "b", deliver=lambda: None, kind="data")
        net.send("a", "b", deliver=lambda: None, kind="heartbeat")
        assert net.by_kind["data"]["sent"] == 1
        assert net.by_kind["data"]["dropped"] == 1
        assert net.by_kind["heartbeat"]["delivered"] == 1

    def test_monitor_counts_by_kind(self):
        env = Environment()
        monitor = Monitor(env, namespace="network")
        net = Network(env, monitor=monitor)
        net.add_nodes(["a", "b"])
        net.send("a", "b", deliver=lambda: None, kind="report")
        assert monitor.counters["sent"].by_key["report"] == 1
        assert monitor.counters["delivered"].by_key["report"] == 1


def test_default_latency_validation():
    with pytest.raises(ValueError):
        Network(Environment(), default_latency_s=-1.0)
