"""Tests for the bibliometric evidence (Figures 1-3)."""

import pytest

from repro.bibliometrics import (
    Paper,
    Review,
    VENUES,
    design_articles_per_block,
    generate_corpus,
    generate_review_corpus,
    keyword_presence,
    review_score_distributions,
    score_findings,
)
from repro.bibliometrics.corpus import design_share
from repro.bibliometrics.keywords import design_rank_among_keywords
from repro.bibliometrics.trends import (
    blocks_since,
    marked_increase_since,
    trend_is_increasing,
)
from repro.sim import RandomStreams


@pytest.fixture(scope="module")
def corpus():
    rng = RandomStreams(seed=1).get("corpus")
    return generate_corpus(rng)


@pytest.fixture(scope="module")
def review_corpus():
    rng = RandomStreams(seed=2).get("reviews")
    return generate_review_corpus(rng, n_papers=600)


class TestCorpus:
    def test_censoring_respects_venue_start(self, corpus):
        for paper in corpus:
            assert paper.year >= VENUES[paper.venue].first_year

    def test_icdcs_present_from_1980(self, corpus):
        years = {p.year for p in corpus if p.venue == "ICDCS"}
        assert 1980 in years
        assert 2018 in years

    def test_design_share_rises(self):
        assert design_share(1985) < design_share(2000) < design_share(2015)

    def test_marked_ramp_after_2000(self):
        pre = design_share(2000) - design_share(1990)
        post = design_share(2010) - design_share(2000)
        assert post > pre

    def test_invalid_year_range(self):
        rng = RandomStreams(seed=3).get("c")
        with pytest.raises(ValueError):
            generate_corpus(rng, first_year=2000, last_year=1990)


class TestFigure1:
    def test_presence_matrix_shape(self, corpus):
        presence = keyword_presence(corpus, by="venue")
        assert set(presence) == set(VENUES)
        for row in presence.values():
            assert "design" in row
            assert all(0 <= v <= 1 for v in row.values())

    def test_design_is_a_common_keyword(self, corpus):
        """Fig. 1's claim: design ranks among the top keywords."""
        presence = keyword_presence(corpus, by="venue")
        ranks = design_rank_among_keywords(presence)
        assert all(rank <= 4 for rank in ranks.values())

    def test_decade_grouping(self, corpus):
        presence = keyword_presence(corpus, by="decade")
        decades = sorted(presence)
        assert decades[0] == "1980s"
        # Design presence grows by decade.
        assert presence["2010s"]["design"] > presence["1980s"]["design"]

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            keyword_presence([])

    def test_invalid_grouping(self, corpus):
        with pytest.raises(ValueError):
            keyword_presence(corpus, by="country")


class TestFigure2:
    def test_blocks(self):
        blocks = blocks_since(1980, 2018)
        assert blocks[0].label == "1980-1984"
        assert blocks[-1].label == "2015-2019"
        assert len(blocks) == 8

    def test_censored_blocks_are_none(self, corpus):
        table = design_articles_per_block(corpus)
        # NSDI started 2004: all blocks before 2000-2004 censored.
        assert table["NSDI"]["1980-1984"] is None
        assert table["NSDI"]["1995-1999"] is None
        assert table["NSDI"]["2005-2009"] is not None

    def test_icdcs_counts_all_blocks(self, corpus):
        table = design_articles_per_block(corpus)
        assert all(v is not None for v in table["ICDCS"].values())

    def test_increasing_accumulation(self, corpus):
        """Fig. 2: venues experience increasing design-article counts."""
        table = design_articles_per_block(corpus)
        increasing = [venue for venue, row in table.items()
                      if trend_is_increasing(row)]
        assert "ICDCS" in increasing
        assert len(increasing) >= len(table) // 2

    def test_marked_increase_since_2000(self, corpus):
        assert marked_increase_since(corpus, 2000) > 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            design_articles_per_block([])


class TestFigure3:
    def test_review_validation(self):
        with pytest.raises(ValueError):
            Review(merit=5, quality=2, topic=2)
        with pytest.raises(ValueError):
            Review(merit=0, quality=2, topic=2)

    def test_scores_in_range(self, review_corpus):
        for paper in review_corpus:
            assert len(paper.reviews) >= 3
            for aspect in ("merit", "quality", "topic"):
                assert 1 <= paper.score(aspect) <= 4

    def test_distribution_structure(self, review_corpus):
        dists = review_score_distributions(review_corpus)
        assert set(dists) == {"merit", "quality", "topic"}
        for group_stats in dists["merit"].values():
            assert {"mean", "median", "q1", "q3",
                    "whisker_low"} <= set(group_stats)

    def test_finding1_design_slightly_better_merit(self, review_corpus):
        findings = score_findings(review_corpus)
        assert findings["finding1_design_merit_better"]
        # 'Slightly': the gap is real but small.
        gap = (findings["design_merit_mean"]
               - findings["non_design_merit_mean"])
        assert 0 < gap < 0.5

    def test_finding2_many_design_papers_below_3(self, review_corpus):
        """The surprising finding: a significant share of design papers
        at a top venue score well below 3."""
        findings = score_findings(review_corpus)
        assert findings["finding2_share_below_3"] > 0.3

    def test_topic_scores_high(self, review_corpus):
        """Fig. 3 (right): submissions match the CfP topics closely."""
        findings = score_findings(review_corpus)
        assert findings["topic_scores_high"]

    def test_accept_rate_selectivity(self, review_corpus):
        accepted = [p for p in review_corpus if p.accepted]
        rejected = [p for p in review_corpus if not p.accepted]
        assert len(accepted) == pytest.approx(0.2 * len(review_corpus),
                                              abs=1)
        import numpy as np
        assert np.mean([p.score("merit") for p in accepted]) > np.mean(
            [p.score("merit") for p in rejected])

    def test_unknown_aspect_rejected(self, review_corpus):
        with pytest.raises(KeyError):
            review_corpus[0].score("vibes")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            review_score_distributions([])
