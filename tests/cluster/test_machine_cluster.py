"""Tests for machines and cluster placement."""

import pytest

from repro.cluster import Cluster, GeoDatacenter, Machine, MachineState, MultiCluster, Site


class TestMachine:
    def test_allocation_cycle(self):
        m = Machine("m0", cores=4, memory_gb=8)
        assert m.free_cores == 4
        m.allocate(3, memory_gb=4)
        assert m.free_cores == 1
        assert m.free_memory_gb == 4
        assert m.utilization == 0.75
        m.release(3, memory_gb=4)
        assert m.free_cores == 4

    def test_over_allocation_rejected(self):
        m = Machine("m0", cores=2)
        m.allocate(2)
        with pytest.raises(RuntimeError):
            m.allocate(1)

    def test_over_release_rejected(self):
        m = Machine("m0", cores=2)
        with pytest.raises(RuntimeError):
            m.release(1)

    def test_memory_constraint(self):
        m = Machine("m0", cores=8, memory_gb=4)
        assert not m.can_fit(1, memory_gb=5)
        assert m.can_fit(1, memory_gb=4)

    def test_down_machine_has_no_capacity(self):
        m = Machine("m0", cores=4)
        m.state = MachineState.DOWN
        assert m.free_cores == 0
        assert not m.can_fit(1)

    def test_runtime_scales_with_speed(self):
        fast = Machine("fast", speed=2.0)
        slow = Machine("slow", speed=0.5)
        assert fast.runtime_of(10) == 5
        assert slow.runtime_of(10) == 20

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine("bad", cores=0)
        with pytest.raises(ValueError):
            Machine("bad", speed=0)


class TestCluster:
    def test_homogeneous_constructor(self):
        c = Cluster.homogeneous("das", 10, cores=8)
        assert len(c) == 10
        assert c.total_cores == 80
        assert c.utilization == 0.0

    def test_duplicate_machine_names_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", [Machine("a"), Machine("a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", [])

    def test_first_fit_skips_full_machines(self):
        c = Cluster("c", [Machine("a", cores=2), Machine("b", cores=4)])
        c.machines[0].allocate(2)
        m = c.first_fit(cores=2)
        assert m.name == "b"

    def test_first_fit_none_when_full(self):
        c = Cluster.homogeneous("c", 2, cores=2)
        for m in c.machines:
            m.allocate(2)
        assert c.first_fit(1) is None

    def test_best_fit_prefers_tightest(self):
        a, b = Machine("a", cores=8), Machine("b", cores=4)
        a.allocate(1)  # 7 free
        c = Cluster("c", [a, b])
        assert c.best_fit(cores=2).name == "b"

    def test_worst_fit_prefers_emptiest(self):
        a, b = Machine("a", cores=8), Machine("b", cores=4)
        c = Cluster("c", [a, b])
        assert c.worst_fit(cores=2).name == "a"

    def test_down_machines_excluded_from_totals(self):
        c = Cluster.homogeneous("c", 4, cores=4)
        c.machines[0].state = MachineState.DOWN
        assert c.total_cores == 12
        assert len(c.up_machines()) == 3

    def test_add_remove_machine(self):
        c = Cluster.homogeneous("c", 2)
        c.add_machine(Machine("extra", cores=16))
        assert len(c) == 3
        removed = c.remove_machine("extra")
        assert removed.cores == 16
        with pytest.raises(KeyError):
            c.remove_machine("extra")

    def test_remove_busy_machine_rejected(self):
        c = Cluster.homogeneous("c", 1, cores=4)
        c.machines[0].allocate(1)
        with pytest.raises(RuntimeError):
            c.remove_machine(c.machines[0].name)

    def test_add_duplicate_rejected(self):
        c = Cluster.homogeneous("c", 1)
        with pytest.raises(ValueError):
            c.add_machine(Machine(c.machines[0].name))


class TestMultiCluster:
    def test_aggregates(self):
        mc = MultiCluster("das", [
            Cluster.homogeneous("c1", 2, cores=4),
            Cluster.homogeneous("c2", 3, cores=8),
        ])
        assert mc.total_cores == 8 + 24

    def test_least_loaded(self):
        c1 = Cluster.homogeneous("c1", 1, cores=4)
        c2 = Cluster.homogeneous("c2", 1, cores=4)
        c1.machines[0].allocate(3)
        mc = MultiCluster("das", [c1, c2])
        assert mc.least_loaded_cluster().name == "c2"

    def test_first_fit_spans_clusters(self):
        c1 = Cluster.homogeneous("c1", 1, cores=2)
        c2 = Cluster.homogeneous("c2", 1, cores=8)
        c1.machines[0].allocate(2)
        mc = MultiCluster("das", [c1, c2])
        cluster, machine = mc.first_fit(cores=4)
        assert cluster.name == "c2"
        assert machine is not None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiCluster("x", [])


class TestGeoDatacenter:
    def _gdc(self):
        sites = [
            Site("ams", Cluster.homogeneous("ams", 2, cores=8), "eu-west"),
            Site("nyc", Cluster.homogeneous("nyc", 2, cores=8), "us-east"),
            Site("sgp", Cluster.homogeneous("sgp", 1, cores=8), "ap-south"),
        ]
        latency = {("ams", "nyc"): 80.0, ("ams", "sgp"): 160.0,
                   ("nyc", "sgp"): 220.0}
        return GeoDatacenter("global", sites, latency)

    def test_latency_symmetric_and_reflexive(self):
        gdc = self._gdc()
        assert gdc.latency_ms("ams", "nyc") == gdc.latency_ms("nyc", "ams")
        assert gdc.latency_ms("sgp", "sgp") == 0.0

    def test_unknown_pair_raises(self):
        gdc = self._gdc()
        with pytest.raises(KeyError):
            gdc.latency_ms("ams", "lon")

    def test_nearest_site_for_client(self):
        gdc = self._gdc()
        site = gdc.nearest_site({"ams": 120.0, "nyc": 20.0, "sgp": 300.0})
        assert site.name == "nyc"

    def test_sites_within_latency_bound(self):
        gdc = self._gdc()
        names = [s.name for s in gdc.sites_within("ams", 100.0)]
        assert names == ["ams", "nyc"]

    def test_total_cores(self):
        assert self._gdc().total_cores == 40
