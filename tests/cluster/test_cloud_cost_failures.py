"""Tests for the IaaS cloud, cost models, and failure injection."""

import pytest

from repro.cluster import Cloud, Cluster, CostModel, FailureInjector, VMState
from repro.cluster.machine import Machine
from repro.cluster.cloud import CapacityError
from repro.cluster.cost import (
    ON_DEMAND_PRICING,
    PER_SECOND_PRICING,
    RESERVED_PRICING,
    cheapest_for,
)
from repro.sim import Environment, Monitor, RandomStreams


class TestCostModel:
    def test_hourly_rounds_up(self):
        model = CostModel("h", price_per_hour=1.0)
        assert model.charge(1) == 1.0          # 1s -> 1 hour
        assert model.charge(3600) == 1.0
        assert model.charge(3601) == 2.0

    def test_per_second_minimum_charge(self):
        assert PER_SECOND_PRICING.charge(10) == pytest.approx(
            60 / 3600 * PER_SECOND_PRICING.price_per_hour)

    def test_reserved_upfront(self):
        cost = RESERVED_PRICING.charge(3600)
        assert cost == pytest.approx(
            RESERVED_PRICING.upfront + RESERVED_PRICING.price_per_hour)

    def test_multiple_instances(self):
        model = CostModel("h", price_per_hour=2.0)
        assert model.charge(3600, instances=3) == 6.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ON_DEMAND_PRICING.charge(-1)

    def test_charge_intervals(self):
        model = CostModel("h", price_per_hour=1.0)
        assert model.charge_intervals([(0, 3600), (7200, 10800)]) == 2.0

    def test_cheapest_for_short_job_prefers_ondemand(self):
        models = [ON_DEMAND_PRICING, RESERVED_PRICING]
        best, _ = cheapest_for(1800, models)
        assert best.name == "on-demand-hourly"

    def test_cheapest_for_long_job_prefers_reserved(self):
        models = [ON_DEMAND_PRICING, RESERVED_PRICING]
        best, _ = cheapest_for(20 * 3600, models)
        assert best.name == "reserved"

    def test_cheapest_empty_raises(self):
        with pytest.raises(ValueError):
            cheapest_for(10, [])


class TestCloud:
    def test_provisioning_delay_observed(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=120)
        times = {}

        def user(env, cloud):
            req = cloud.provision()
            vm = yield req.event
            times["running"] = env.now
            assert vm.state is VMState.RUNNING

        env.process(user(env, cloud))
        env.run()
        assert times["running"] == 120

    def test_capacity_enforced(self):
        env = Environment()
        cloud = Cloud(env, capacity=2)
        cloud.provision()
        cloud.provision()
        with pytest.raises(CapacityError):
            cloud.provision()

    def test_terminate_records_billing(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=60,
                      deprovisioning_delay_s=0,
                      cost_model=CostModel("h", price_per_hour=1.0))

        def scenario(env, cloud):
            req = cloud.provision()
            vm = yield req.event
            yield env.timeout(3000)
            cloud.terminate(vm)

        env.process(scenario(env, cloud))
        env.run()
        assert len(cloud.billed_intervals) == 1
        # 60s boot + 3000s use = 3060s -> 1 billed hour.
        assert cloud.total_cost() == 1.0

    def test_terminate_idempotent(self):
        env = Environment()
        cloud = Cloud(env)

        def scenario(env, cloud):
            req = cloud.provision()
            vm = yield req.event
            cloud.terminate(vm)
            cloud.terminate(vm)

        env.process(scenario(env, cloud))
        env.run()
        assert len(cloud.billed_intervals) == 1

    def test_running_cores_tracks_instances(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=10, cores_per_vm=4)

        def scenario(env, cloud):
            reqs = [cloud.provision() for _ in range(3)]
            for req in reqs:
                yield req.event
            assert cloud.running_cores() == 12

        env.process(scenario(env, cloud))
        env.run()

    def test_open_instances_accrue_cost(self):
        env = Environment()
        cloud = Cloud(env, provisioning_delay_s=0,
                      cost_model=CostModel("h", price_per_hour=1.0))

        def scenario(env, cloud):
            req = cloud.provision()
            yield req.event
            yield env.timeout(7200)

        env.process(scenario(env, cloud))
        env.run()
        assert cloud.total_cost() == 2.0


class TestFailureInjector:
    def test_failures_and_repairs_happen(self):
        env = Environment()
        cluster = Cluster.homogeneous("c", 20, cores=4)
        rng = RandomStreams(seed=1).get("failures")
        mon = Monitor(env)
        injector = FailureInjector(env, cluster, rng, mtbf_s=100.0,
                                   mttr_s=20.0, monitor=mon)
        env.run(until=2000)
        assert injector.failures > 0
        assert injector.repairs > 0
        assert 0 < injector.availability() <= 1.0
        assert mon.counters["machine_failures"].total == injector.failures

    def test_on_failure_callback_invoked(self):
        env = Environment()
        cluster = Cluster.homogeneous("c", 5)
        rng = RandomStreams(seed=2).get("failures")
        victims = []
        FailureInjector(env, cluster, rng, mtbf_s=50.0, mttr_s=10.0,
                        on_failure=victims.append)
        env.run(until=500)
        assert victims, "expected at least one failure in 10×MTBF"

    def test_invalid_params_rejected(self):
        env = Environment()
        cluster = Cluster.homogeneous("c", 1)
        rng = RandomStreams().get("f")
        with pytest.raises(ValueError):
            FailureInjector(env, cluster, rng, mtbf_s=0)

    def test_repaired_machine_is_clean(self):
        env = Environment()
        cluster = Cluster.homogeneous("c", 3, cores=4)
        rng = RandomStreams(seed=3).get("failures")
        injector = FailureInjector(env, cluster, rng, mtbf_s=30.0, mttr_s=5.0)
        env.run(until=1000)
        for machine in cluster.up_machines():
            assert machine.used_cores == 0
        assert injector.repairs > 0

    def test_crash_wipes_allocations_at_failure_time(self):
        """Allocations vanish when the machine goes DOWN, not on repair."""
        env = Environment()
        cluster = Cluster.homogeneous("c", 1, cores=4)
        machine = cluster.machines[0]
        machine.allocate(3, 8.0)
        rng = RandomStreams(seed=8).get("failures")
        seen = {}
        FailureInjector(env, cluster, rng, mtbf_s=20.0, mttr_s=1e9,
                        on_failure=lambda m: seen.setdefault(
                            "used_at_failure", m.used_cores))
        env.run(until=500)
        assert seen["used_at_failure"] == 0

    def test_empirical_availability_matches_mtbf_over_mtbf_plus_mttr(self):
        """The injector's realized availability ≈ MTBF / (MTBF + MTTR)."""
        env = Environment()
        cluster = Cluster.homogeneous("c", 30, cores=4)
        rng = RandomStreams(seed=11).get("failures")
        injector = FailureInjector(env, cluster, rng,
                                   mtbf_s=100.0, mttr_s=25.0)
        env.run(until=4000)
        assert injector.expected_availability == pytest.approx(0.8)
        assert injector.empirical_availability() == pytest.approx(
            injector.expected_availability, abs=0.05)


class TestPostCrashRelease:
    """Regression: a release() for a task that died mid-crash must not
    double-free or drive the machine's counters negative."""

    def test_stale_release_is_ignored(self):
        machine = Machine("m", cores=4, memory_gb=16.0)
        machine.allocate(2, 4.0)
        incarnation = machine.incarnation
        machine.fail()
        assert machine.used_cores == 0
        machine.repair()
        machine.allocate(3, 8.0)  # a new tenant after repair
        # The pre-crash task's release is stale: recognized and dropped.
        assert machine.release(2, 4.0, incarnation=incarnation) is False
        assert machine.used_cores == 3
        assert machine.used_memory_gb == 8.0

    def test_current_incarnation_release_is_accounted(self):
        machine = Machine("m", cores=4)
        machine.allocate(2, 4.0)
        assert machine.release(2, 4.0,
                               incarnation=machine.incarnation) is True
        assert machine.used_cores == 0

    def test_legacy_release_after_crash_clamps_instead_of_raising(self):
        machine = Machine("m", cores=4)
        machine.allocate(2, 4.0)
        machine.fail()
        machine.repair()
        # Incarnation-unaware caller racing the crash: tolerated.
        assert machine.release(2, 4.0) is False
        assert machine.used_cores == 0
        assert machine.used_memory_gb == 0.0

    def test_genuine_over_release_still_raises(self):
        machine = Machine("m", cores=4)
        machine.allocate(1)
        with pytest.raises(RuntimeError):
            machine.release(2)
