"""Lease election: boot, failover, stickiness, and the safety law."""

import pytest

from repro.faults.partition import NetworkPartitionModel, PartitionEpisode
from repro.replication import LeaseElection
from repro.resilience import PhiAccrualDetector
from repro.sim import Environment, Network, RandomStreams

NODES = ("a", "b", "c")

#: Far beyond any horizon these tests run to.
FOREVER = 10_000.0


def make_election(env, network, seed=7, **kw):
    detector = PhiAccrualDetector(env, threshold=4.0, poll_interval_s=0.25,
                                  name="lease")
    return LeaseElection(env, network, NODES, detector,
                         RandomStreams(seed), **kw)


def one_way_world(episodes):
    env = Environment()
    network = Network(env)
    for node in NODES:
        network.add_node(node)
    network.attach(NetworkPartitionModel(
        env, groups={"iso": [ep.isolate for ep in episodes]},
        episodes=[PartitionEpisode(ep.start_s, ep.end_s, "iso", ep.direction)
                  for ep in episodes]))
    return env, network


def test_boot_leader_no_election():
    env = Environment()
    network = Network(env)
    election = make_election(env, network)
    env.run(until=20.0)
    assert all(election.leader_of(n) == "a" for n in NODES)
    assert election.believes_leader("a")
    assert election.elections == 0
    assert election.promotions == 1
    assert election.leaders_by_term == {1: "a"}


def test_failover_on_leader_silence():
    env, network = one_way_world(
        [PartitionEpisode(5.0, FOREVER, "a", "both")])
    election = make_election(env, network)
    env.run(until=40.0)
    winner = election.leader_of("b")
    assert winner in ("b", "c")
    assert election.leader_of("c") == winner
    assert election.term_of(winner) >= 2
    # The old leader lost its majority-ack window and abdicated.
    assert not election.believes_leader("a")
    assert sum(election.believes_leader(n) for n in NODES) == 1
    # The safety law's identity held throughout.
    assert election.promotions == len(election.leaders_by_term)


def test_determinism_across_runs():
    outcomes = []
    for _ in range(2):
        env, network = one_way_world(
            [PartitionEpisode(5.0, FOREVER, "a", "both")])
        election = make_election(env, network)
        env.run(until=40.0)
        outcomes.append((election.leader_of("b"), election.elections,
                         dict(election.leaders_by_term)))
    assert outcomes[0] == outcomes[1]


def test_pathological_leader_needs_depose():
    env, network = one_way_world(
        [PartitionEpisode(5.0, FOREVER, "a", "both")])
    election = make_election(env, network)
    election.self_demote["a"] = False
    env.run(until=40.0)
    # Split brain: the minority leader never steps down on its own...
    assert election.believes_leader("a")
    assert sum(election.believes_leader(n) for n in NODES) == 2
    # ...but terms stay unique — safety never depended on self-demotion.
    assert election.promotions == len(election.leaders_by_term)
    # External invalidation (fencing) is what stops it.
    election.depose("a")
    assert not election.believes_leader("a")
    assert election.leader_of("a") is None
    assert election.demotions >= 1


def test_futile_campaigns_never_inflate_the_term():
    """The livelock regression: a standby that cannot hear denials must
    not climb its own term, or it would reject the live leader's
    renewals after the heal."""
    env, network = one_way_world(
        [PartitionEpisode(5.0, 60.0, "c", "inbound")])
    election = make_election(env, network)
    env.run(until=50.0)
    # Mid-episode: c campaigns in vain (its vote requests go out, every
    # reply is severed inbound), while a leads on undisturbed.
    assert election.believes_leader("a")
    assert election.elections > 0
    assert election.votes_denied > 0
    env.run(until=80.0)
    # Post-heal: c adopted the live lease instead of livelocking.
    assert election.leader_of("c") == "a"
    assert not election.believes_leader("c")
    assert election.term_of("c") == election.term_of("a")
    assert election.promotions == 1


def test_grant_floor_is_monotone():
    env, network = one_way_world(
        [PartitionEpisode(5.0, FOREVER, "a", "both")])
    election = make_election(env, network)
    floors = {n: election._granted[n] for n in NODES}

    def audit(env):
        while True:
            yield env.timeout(0.1)
            for n in NODES:
                assert election._granted[n] >= floors[n], n
                floors[n] = election._granted[n]

    env.process(audit(env))
    env.run(until=40.0)
    assert any(floors[n] >= 2 for n in NODES)


def test_validation_errors():
    env = Environment()
    network = Network(env)
    detector = PhiAccrualDetector(env, name="lease")
    streams = RandomStreams(0)
    with pytest.raises(ValueError, match="at least two"):
        LeaseElection(env, network, ["solo"], detector, streams)
    with pytest.raises(ValueError, match="lease_ttl_s"):
        LeaseElection(env, network, ["a", "b"], detector, streams,
                      lease_ttl_s=1.0, renew_interval_s=1.0)
