"""Fencing-gate semantics: floors, tokens, and the two admit checks."""

from repro.replication import FencingGate


def test_boot_state():
    gate = FencingGate()
    assert gate.term == 0
    assert gate.floor_of("m0") == 0
    assert gate.dispatch_token() == 0


def test_advance_is_monotone():
    gate = FencingGate()
    gate.advance(3)
    gate.advance(1)  # a late, lower advance never lowers the term
    assert gate.term == 3
    assert gate.dispatch_token() == 3


def test_raise_floor_is_monotone_and_counted():
    gate = FencingGate()
    gate.raise_floor("m0", 2)
    gate.raise_floor("m0", 1)  # stale fence message: ignored
    assert gate.floor_of("m0") == 2
    assert gate.fence_raises == 1


def test_admit_dispatch_rejects_below_floor():
    gate = FencingGate()
    gate.raise_floor("m0", 2)
    assert not gate.admit_dispatch("m0", 1)
    assert gate.rejected == 1
    assert gate.admit_dispatch("m0", 2)
    assert gate.accepted == 1
    # The floor is per-machine: an unfenced machine still takes term 1.
    assert gate.admit_dispatch("m1", 1)


def test_admitted_dispatch_teaches_the_floor():
    gate = FencingGate()
    assert gate.admit_dispatch("m0", 3)
    assert gate.floor_of("m0") == 3
    assert gate.report_token("m0") == 3
    assert not gate.admit_dispatch("m0", 2)


def test_admit_report_refuses_stale_and_teaches():
    gate = FencingGate()
    gate.advance(2)
    # The machine never witnessed the fence: its report token is 0.
    assert not gate.admit_report("m0", gate.report_token("m0"))
    assert gate.fenced_reports == 1
    # The refusal taught the machine the live term; the retry is taken.
    assert gate.report_token("m0") == 2
    assert gate.admit_report("m0", gate.report_token("m0"))
