"""The composed control plane: takeover, fencing, and the stale writer."""

import pytest

from repro.cluster import Cluster
from repro.faults.partition import NetworkPartitionModel, PartitionEpisode
from repro.recovery import Journal
from repro.replication import ReplicatedControlPlane
from repro.scheduling import ClusterSimulator, FCFSPolicy
from repro.sim import Environment, Network, RandomStreams
from repro.workload.task import Task

NODES = ("cp-0", "cp-1", "cp-2")


def make_world(partition_span=None, self_demote=None):
    env = Environment()
    streams = RandomStreams(7)
    cluster = Cluster.homogeneous("cp", 3, cores=4)
    network = Network(env)
    for node in NODES:
        network.add_node(node)
    if partition_span is not None:
        episodes = [PartitionEpisode(partition_span[0], partition_span[1],
                                     "old-leader", "both")]
        if len(partition_span) > 2:
            # A one-way tail: the old leader's inbound stays severed, so
            # it cannot hear the new lease — only fencing can teach it.
            episodes.append(PartitionEpisode(
                partition_span[1], partition_span[2], "old-leader",
                "inbound"))
        network.attach(NetworkPartitionModel(
            env, groups={"old-leader": ["cp-0"]}, episodes=episodes))
    journal = Journal(env, append_cost_s=0.0)
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           network=network, node_name="cp-0",
                           scheduler_restart_cost_s=5.0)
    control = ReplicatedControlPlane(
        env, sim, network, NODES, streams,
        lease_ttl_s=4.0, renew_interval_s=1.0, takeover_cost_s=0.5,
        self_demote=self_demote)
    return env, sim, control


def test_quiet_world_never_fails_over():
    env, sim, control = make_world()
    sim.submit_task(Task(work=10.0))
    sim.close_submissions()
    env.run(until=sim._scheduler)
    env.run(until=30.0)
    assert control.failovers == 0
    assert sim.node_name == "cp-0"
    assert control.gate.rejected == 0
    assert len(sim.finished) == 1


def test_failover_promotes_a_warm_standby():
    env, sim, control = make_world(partition_span=(10.0, 10_000.0))
    for _ in range(3):
        sim.submit_task(Task(work=5.0))
    sim.close_submissions()
    env.run(until=40.0)
    assert control.failovers == 1
    new_leader = sim.node_name
    assert new_leader in ("cp-1", "cp-2")
    # The takeover started from the shipped prefix, not a replay: the
    # journal was fully shipped before the cut.
    assert control.unshipped_at_promotion == 0
    assert control.journal_records_at_failover > 0
    assert control.promoted_at
    term = max(control.promoted_at)
    assert control.gate.term == term >= 2
    # Every machine was fenced at the new term before the first dispatch.
    for machine in sim.cluster.machines:
        assert control.gate.floor_of(machine.name) >= term
    # The believed map the promotion used matched the journal's story.
    assert control._believed[new_leader]


def test_stale_writer_is_fenced_then_deposed():
    env, sim, control = make_world(partition_span=(10.0, 60.0, 10_000.0),
                                   self_demote={"cp-0": False})
    sim.submit_task(Task(work=5.0))
    sim.close_submissions()
    env.run(until=58.0)
    assert control.failovers == 1
    # Mid-partition the old leader still believes; its probes are
    # blocked, so nothing has been rejected yet.
    assert control.election.believes_leader("cp-0")
    env.run(until=80.0)
    # Post-heal its dispatches reach the fence, are rejected, counted
    # one-for-one, and the rejections depose it.
    assert control.stale_dispatches >= 1
    assert control.gate.rejected == control.stale_dispatches
    assert not control.election.believes_leader("cp-0")
    assert "cp-0" in control.deposed_at
    assert control.deposed_at["cp-0"] >= 60.0


def test_validation_errors():
    env = Environment()
    streams = RandomStreams(0)
    cluster = Cluster.homogeneous("cp", 1, cores=4)
    network = Network(env)
    journal = Journal(env)
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           network=network, node_name="elsewhere")
    with pytest.raises(ValueError, match="initial leader"):
        ReplicatedControlPlane(env, sim, network, NODES, streams)
    sim2 = ClusterSimulator(env, cluster, FCFSPolicy(),
                            network=network, node_name="cp-0")
    with pytest.raises(ValueError, match="journal"):
        ReplicatedControlPlane(env, sim2, network, NODES, streams)
