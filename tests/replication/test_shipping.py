"""Journal shipping: in-order apply, cumulative acks, loss recovery."""

from repro.recovery import Journal
from repro.replication import JournalReplicator
from repro.sim import Environment, Network


class ScriptedDrop:
    """Drop the next ``n`` journal messages to ``dst`` (then deliver)."""

    def __init__(self, dst):
        self.dst = dst
        self.remaining = 0

    def drops(self, src, dst, kind):
        if kind == "journal" and dst == self.dst and self.remaining > 0:
            self.remaining -= 1
            return True
        return False


def make_world(standbys=("S1",)):
    env = Environment()
    network = Network(env)
    network.add_node("L")
    for s in standbys:
        network.add_node(s)
    journal = Journal(env, append_cost_s=0.0)
    rep = JournalReplicator(env, network, journal, "L", list(standbys),
                            ship_interval_s=0.5, batch=16)
    return env, network, journal, rep


def test_ship_apply_ack_in_order():
    env, network, journal, rep = make_world()
    applied = []
    rep.on_apply = lambda s, r: applied.append((s, r.seq))
    for i in range(5):
        journal.append("submit", {"task_id": i})
    env.run(until=2.0)
    assert rep.applied_seq("S1") == 4
    assert rep.acked["S1"] == 4
    assert applied == [("S1", i) for i in range(5)]
    assert [r.seq for r in rep.replicas["S1"]] == list(range(5))
    assert rep.out_of_order == 0 and rep.duplicates == 0
    # Nothing left to ship: a fully acked standby costs no traffic.
    shipped = rep.shipped_records
    env.run(until=4.0)
    assert rep.shipped_records == shipped
    assert rep.lag_of("S1") == 0


def test_dropped_record_gaps_are_discarded_then_reshipped():
    env, network, journal, rep = make_world()
    drop = network.attach(ScriptedDrop("S1"))
    journal.append("submit", {"task_id": 0})
    journal.append("dispatch", {"task_id": 0})
    drop.remaining = 1  # eat seq 0 in flight; seq 1 arrives as a gap
    env.run(until=0.6)
    assert rep.out_of_order == 1
    assert rep.applied_seq("S1") == -1  # the gap never applied
    assert rep.acked["S1"] == -1       # and a gap is never acked
    env.run(until=2.0)
    # Next ticks re-ship from the cumulative ack: both land, in order.
    assert rep.applied_seq("S1") == 1
    assert rep.acked["S1"] == 1
    assert rep.resends >= 1
    assert [r.seq for r in rep.replicas["S1"]] == [0, 1]
    assert rep.duplicates == 0


def test_lost_ack_reships_and_deduplicates():
    env, network, journal, rep = make_world()

    class AckEater:
        eating = True

        def drops(self, src, dst, kind):
            return kind == "journal_ack" and self.eating

    eater = network.attach(AckEater())
    journal.append("submit", {"task_id": 0})
    env.run(until=1.1)
    # Applied but never acked: the leader keeps re-shipping.
    assert rep.applied_seq("S1") == 0
    assert rep.acked["S1"] == -1
    assert rep.resends >= 1
    eater.eating = False
    env.run(until=2.5)
    assert rep.acked["S1"] == 0
    # The re-shipped copies were recognized, not re-applied.
    assert rep.duplicates >= 1
    assert [r.seq for r in rep.replicas["S1"]] == [0]


def test_set_leader_swaps_the_shipping_direction():
    env, network, journal, rep = make_world(standbys=("S1", "S2"))
    journal.append("submit", {"task_id": 0})
    env.run(until=1.1)
    assert rep.acked["S1"] == 0 and rep.acked["S2"] == 0
    rep.set_leader("S1")
    assert rep.leader == "S1"
    assert sorted(rep.standbys) == ["L", "S2"]
    journal.append("dispatch", {"task_id": 0})
    env.run(until=2.5)
    # The new leader ships to everyone else, old leader included.
    assert rep.applied_seq("S2") == 1
    assert rep.acked["S2"] == 1
