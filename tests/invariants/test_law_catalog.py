"""The law catalog table in ``docs/invariants.md`` cannot silently rot.

Mirror of the metric-catalog test: the doc's law table is parsed and
compared against the laws ``standard_laws`` actually produces when every
component is present.
"""

import re
from pathlib import Path

from repro.invariants import standard_laws

DOC = Path(__file__).resolve().parents[2] / "docs" / "invariants.md"


class _Bag:
    """Duck-typed stand-in with whatever attributes a law reads."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


def catalog_laws():
    """Every law standard_laws emits with all components bound."""
    network = _Bag(sent=0, delivered=0, blocked=0, dropped=0, in_flight=0)
    scheduler = _Bag(submitted=0, finished=[], failed=[], ready=[],
                     running={}, _limbo=[], _orphaned=[], _unreported=[],
                     _procs={}, _pending_reports={})

    class _Registry:
        def get(self, name):
            return None

    platform = _Bag(invocations=[], monitor=_Bag(registry=_Registry()))
    door = _Bag(offered=0, admitted=0, shed=0)
    job = _Bag(finished_at=None, started_at=0.0, work_s=0.0,
               checkpoint_time_s=0.0, lost_work_s=0.0, recovery_time_s=0.0,
               downtime_s=0.0)
    control_plane = _Bag(gate=_Bag(rejected=0), stale_dispatches=0,
                         election=_Bag(promotions=0, leaders_by_term={}))
    return standard_laws(network=network, scheduler=scheduler,
                         platform=platform, front_door=door, jobs=[job],
                         control_plane=control_plane)


def documented_laws() -> set[str]:
    """Law names from the catalog table (`` `a.b` | layer | ...`` rows)."""
    names = set()
    for line in DOC.read_text().splitlines():
        m = re.match(r"\| `([a-z0-9_.]+)` \| [a-zA-Z]", line)
        if m:
            names.add(m.group(1))
    return names


def test_catalog_table_parses_nonempty():
    docs = documented_laws()
    assert len(docs) >= 6, f"law table parse found only {sorted(docs)}"


def test_every_standard_law_is_documented():
    missing = {law.name for law in catalog_laws()} - documented_laws()
    assert not missing, (
        f"laws missing from docs/invariants.md catalog table: "
        f"{sorted(missing)}")


def test_law_names_are_layer_namespaced():
    for law in catalog_laws():
        assert re.fullmatch(r"[a-z0-9_]+(\.[a-z0-9_]+)+", law.name), law.name


def test_every_law_has_a_description():
    for law in catalog_laws():
        assert law.description, f"law {law.name!r} has no description"
