"""Tests for the continuous invariant engine."""

import pytest

from repro.invariants import ConservationLaw, InvariantEngine, \
    InvariantViolation, Term
from repro.sim import Environment, Monitor


def fixed_law(name, lhs_value, rhs_value):
    return ConservationLaw(
        name, lhs=[Term("lhs", lambda: lhs_value)],
        rhs=[Term("rhs", lambda: rhs_value)])


def live_law(name, books):
    return ConservationLaw(
        name, lhs=[Term("in", lambda: books["in"])],
        rhs=[Term("out", lambda: books["out"])])


class TestRegistration:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvariantEngine(Environment(), check_interval_s=0.0)

    def test_duplicate_law_name_rejected(self):
        engine = InvariantEngine(Environment(),
                                 laws=[fixed_law("a.law", 1, 1)])
        with pytest.raises(ValueError):
            engine.register(fixed_law("a.law", 2, 2))

    def test_law_lookup(self):
        law = fixed_law("a.law", 1, 1)
        engine = InvariantEngine(Environment(), laws=[law])
        assert engine.law("a.law") is law
        with pytest.raises(KeyError):
            engine.law("missing")


class TestHaltMode:
    def test_violation_kills_the_run_at_the_bad_instant(self):
        env = Environment()
        books = {"in": 0, "out": 0}
        InvariantEngine(env, laws=[live_law("books", books)],
                        check_interval_s=1.0)

        def corrupt():
            yield env.timeout(3.5)
            books["in"] += 1        # mint work out of thin air

        env.process(corrupt())
        with pytest.raises(InvariantViolation):
            env.run(until=10.0)
        # The audit cadence bounds when the corruption is caught.
        assert env.now == 4.0

    def test_clean_run_completes(self):
        env = Environment()
        engine = InvariantEngine(env, laws=[fixed_law("ok", 2, 2)],
                                 check_interval_s=1.0)
        env.run(until=5.5)
        assert engine.checks == 5
        assert engine.violations == 0


class TestSurveyMode:
    def test_violations_collected_not_raised(self):
        env = Environment()
        engine = InvariantEngine(
            env, laws=[fixed_law("bad.one", 1, 2),
                       fixed_law("good", 3, 3),
                       fixed_law("bad.two", 5, 0)],
            check_interval_s=1.0, halt=False)
        env.run(until=2.5)          # two audit passes
        assert engine.violations == 4
        assert [v.law.name for v in engine.violation_log] \
            == ["bad.one", "bad.two", "bad.one", "bad.two"]

    def test_check_now_returns_all_violations(self):
        env = Environment()
        engine = InvariantEngine(env, laws=[fixed_law("bad", 1, 2)],
                                 halt=False)
        found = engine.check_now()
        assert len(found) == 1
        assert found[0].delta == -1.0

    def test_engine_seed_stamps_violations(self):
        env = Environment()
        engine = InvariantEngine(env, laws=[fixed_law("bad", 1, 2)],
                                 check_interval_s=1.0, halt=False,
                                 seed=99)
        env.run(until=2.5)
        assert engine.violations == 2
        for violation in engine.violation_log:
            assert violation.seed == 99
            assert "seed=99" in str(violation)

    def test_engine_without_seed_leaves_violations_unstamped(self):
        env = Environment()
        engine = InvariantEngine(env, laws=[fixed_law("bad", 1, 2)],
                                 halt=False)
        [violation] = engine.check_now()
        assert violation.seed is None
        assert "seed" not in str(violation)


def test_monitor_counts_checks_and_violations_by_law():
    env = Environment()
    monitor = Monitor(env, namespace="invariants")
    engine = InvariantEngine(
        env, laws=[fixed_law("good", 1, 1), fixed_law("bad", 1, 0)],
        monitor=monitor, halt=False)
    engine.check_now()
    assert monitor.counters["checks"].by_key == {"good": 1, "bad": 1}
    assert monitor.counters["violations"].by_key == {"bad": 1}


def test_guarded_laws_do_not_fire_until_applicable():
    env = Environment()
    job = {"finished": False}
    law = ConservationLaw(
        "at.the.end", lhs=[Term("a", lambda: 1)],
        rhs=[Term("b", lambda: 0)], when=lambda: job["finished"])
    engine = InvariantEngine(env, laws=[law], halt=False)
    assert engine.check_now() == []
    job["finished"] = True
    assert len(engine.check_now()) == 1
