"""Property tests: laws hold under fault grids; corruptions are caught.

Two halves, matching the two promises the invariant layer makes:

1. Across a seed x fault-configuration grid, every registered law holds
   at every audit instant (the system's books really balance).
2. Any deliberate corruption of any single term is caught, with the
   violation's labeled delta equal to the corruption (the oracle really
   detects, and localizes, imbalance).
"""

import pytest

from repro.faults import (
    GrayFailureModel,
    NetworkPartitionModel,
    PartitionEpisode,
)
from repro.invariants import (
    ConservationLaw,
    InvariantEngine,
    InvariantViolation,
    counter_term,
    network_conservation,
)
from repro.observability import MetricsRegistry
from repro.sim import Environment, Network, RandomStreams

SEEDS = (0, 1, 2)


# -- 1. laws hold across seed x fault-config grids -------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("direction", ["both", "outbound", "inbound"])
@pytest.mark.parametrize("drop_rate", [0.0, 0.5])
def test_network_conservation_holds_under_partition_and_gray(
        seed, direction, drop_rate):
    """Random traffic through every fault combination balances the ledger."""
    env = Environment()
    streams = RandomStreams(seed)
    net = Network(env, default_latency_s=0.05)
    nodes = [f"n{i}" for i in range(6)]
    net.add_nodes(nodes)
    net.attach(NetworkPartitionModel(
        env, groups={"minority": nodes[-2:]},
        episodes=[PartitionEpisode(5.0, 20.0, "minority",
                                   direction=direction),
                  PartitionEpisode(30.0, 35.0, "minority")]))
    net.attach(GrayFailureModel(
        env, streams.get("gray"), drop_rate=drop_rate, extra_latency_s=0.1,
        episodes={"n0": [(10.0, 25.0)]}))
    engine = InvariantEngine(env, laws=[network_conservation(net)],
                             check_interval_s=0.5)

    def traffic(rng):
        for _ in range(300):
            yield env.timeout(float(rng.exponential(0.1)))
            i, j = rng.choice(len(nodes), size=2, replace=False)
            kind = ("data", "report", "heartbeat")[int(rng.integers(3))]
            net.send(nodes[int(i)], nodes[int(j)],
                     deliver=lambda: None, kind=kind)

    env.process(traffic(streams.get("traffic")))
    env.run(until=60.0)        # InvariantViolation would propagate here
    engine.check_now()
    assert engine.checks > 0
    assert engine.violations == 0
    assert net.in_flight == 0
    assert net.sent == 300
    assert net.blocked > 0                       # the partition actually bit


@pytest.mark.parametrize("seed", (7, 19))
@pytest.mark.parametrize("direction,gray_drop", [("both", 0.15),
                                                 ("outbound", 0.4)])
def test_composed_scenario_laws_hold_across_fault_grid(
        seed, direction, gray_drop):
    """The full composed stack balances under varied partition/gray knobs."""
    from repro.faults.chaos import run_partition_scenario
    result = run_partition_scenario(
        seed=seed, n_tasks=16, task_rate_per_s=1.0,
        n_invocations=20, invoke_rate_per_s=2.0,
        partition_direction=direction, gray_drop_rate=gray_drop)
    assert result["invariant_checks"] > 0
    assert result["invariant_violations"] == 0
    assert result["lost"] == 0
    assert result["admitted"] == result["completed"]


# -- 2. corruptions are always caught with the correct labeled delta -------

def balanced_pipeline():
    """A registry-backed law over a balanced offered == served + shed."""
    registry = MetricsRegistry()
    registry.incr("front.offered", 10)
    registry.incr("back.served", 7)
    registry.incr("back.shed", 3)
    law = ConservationLaw(
        "pipeline.conservation",
        lhs=[counter_term(registry, "front.offered", "offered")],
        rhs=[counter_term(registry, "back.served", "served"),
             counter_term(registry, "back.shed", "shed")])
    return registry, law


@pytest.mark.parametrize("metric,amount,expected_delta", [
    ("front.offered", 1, 1.0),      # phantom arrival
    ("front.offered", 5, 5.0),
    ("back.served", 2, -2.0),       # double-counted completion
    ("back.shed", 1, -1.0),
])
def test_corrupted_counter_caught_with_exact_delta(metric, amount,
                                                   expected_delta):
    registry, law = balanced_pipeline()
    law.check()                      # balanced before the corruption
    registry.incr(metric, amount)
    with pytest.raises(InvariantViolation) as excinfo:
        law.check(time=42.0)
    v = excinfo.value
    assert v.delta == expected_delta
    assert f"(delta {expected_delta:+g})" in str(v)
    # The corrupted term's post-corruption value is in the labeled report.
    labeled = dict(v.lhs_values + v.rhs_values)
    short = {"front.offered": "offered", "back.served": "served",
             "back.shed": "shed"}[metric]
    assert labeled[short] == registry.get(metric).total


def every_term_perturbation():
    """(law-name, term-label, corrupt-fn, expected-delta) for the catalog.

    Each case builds a balanced duck-typed world, then corrupts exactly
    one term of one standard law and predicts the signed delta.
    """
    from repro.invariants import (
        front_door_conservation,
        checkpoint_accounting,
        scheduler_conservation,
        scheduler_reconciliation,
    )

    class _Bag:
        def __init__(self, **attrs):
            self.__dict__.update(attrs)

    cases = []

    def net_case(attr, sign):
        net = _Bag(sent=10, delivered=6, blocked=2, dropped=1, in_flight=1)
        return ("network.conservation", attr,
                network_conservation(net),
                lambda n=net, a=attr: setattr(n, a, getattr(n, a) + 3),
                3.0 * sign)

    for attr, sign in [("sent", 1), ("delivered", -1), ("blocked", -1),
                       ("dropped", -1), ("in_flight", -1)]:
        cases.append(net_case(attr, sign))

    def sched():
        return _Bag(submitted=6, finished=[1, 2], failed=[3], ready=[4],
                    running={5: "m"}, _limbo=[6], _orphaned=[],
                    _unreported=[], _procs={5: "p"}, _pending_reports={})

    s = sched()
    cases.append(("scheduler.conservation", "submitted",
                  scheduler_conservation(s),
                  lambda s=s: setattr(s, "submitted", s.submitted + 1), 1.0))
    s = sched()
    cases.append(("scheduler.conservation", "finished",
                  scheduler_conservation(s),
                  lambda s=s: s.finished.append(9), -1.0))
    s = sched()
    cases.append(("scheduler.reconciliation", "believed_running",
                  scheduler_reconciliation(s),
                  lambda s=s: s.running.update({9: "m"}), 1.0))
    s = sched()
    cases.append(("scheduler.reconciliation", "pending_reports",
                  scheduler_reconciliation(s),
                  lambda s=s: s._pending_reports.update({9: ()}), -1.0))

    door = _Bag(offered=8, admitted=5, shed=3)
    cases.append(("frontdoor.conservation", "shed",
                  front_door_conservation(door),
                  lambda d=door: setattr(d, "shed", d.shed + 2), -2.0))

    job = _Bag(started_at=0.0, finished_at=100.0, work_s=80.0,
               checkpoint_time_s=5.0, lost_work_s=6.0, recovery_time_s=4.0,
               downtime_s=5.0)
    cases.append(("checkpoint.accounting", "lost_work",
                  checkpoint_accounting(job),
                  lambda j=job: setattr(j, "lost_work_s", 6.5), -0.5))
    return cases


@pytest.mark.parametrize(
    "law_name,term,law,corrupt,expected_delta",
    every_term_perturbation(),
    ids=[f"{name}:{term}" for name, term, *_ in every_term_perturbation()])
def test_every_catalog_term_corruption_is_caught(law_name, term, law,
                                                 corrupt, expected_delta):
    law.check()                      # the world starts balanced
    corrupt()
    with pytest.raises(InvariantViolation) as excinfo:
        law.check(time=7.0)
    v = excinfo.value
    assert v.law.name == law_name
    assert v.delta == pytest.approx(expected_delta)
    assert term in dict(v.lhs_values + v.rhs_values)
    assert law_name in str(v) and "delta" in str(v)


def test_survey_engine_localizes_a_cross_layer_corruption():
    """Corrupting one layer breaks exactly that layer's law, no others."""
    env = Environment()
    net = Network(env)
    net.add_nodes(["a", "b"])
    net.send("a", "b", deliver=lambda: None)
    door = type("Door", (), {"offered": 4, "admitted": 4, "shed": 0})()
    from repro.invariants import standard_laws
    engine = InvariantEngine(env, laws=standard_laws(network=net,
                                                     front_door=door),
                             halt=False)
    assert engine.check_now() == []
    net.delivered += 1               # corrupt the network books only
    broken = engine.check_now()
    assert [v.law.name for v in broken] == ["network.conservation"]
    assert broken[0].delta == -1.0
