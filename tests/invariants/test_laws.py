"""Tests for conservation-law terms, evaluation, and violation reports."""

import pytest

from repro.invariants import (
    ConservationLaw,
    InvariantViolation,
    Term,
    counter_term,
)
from repro.observability import MetricsRegistry


def law_of(lhs_vals, rhs_vals, **kwargs):
    """A law over fixed labeled values, e.g. ({"a": 3}, {"b": 3})."""
    return ConservationLaw(
        name=kwargs.pop("name", "test.law"),
        lhs=[Term(k, lambda v=v: v) for k, v in lhs_vals.items()],
        rhs=[Term(k, lambda v=v: v) for k, v in rhs_vals.items()],
        **kwargs)


class TestTerm:
    def test_value_coerces_to_float(self):
        assert Term("n", lambda: 3).value() == 3.0
        assert isinstance(Term("n", lambda: 3).value(), float)

    def test_counter_term_reads_registry_total(self):
        registry = MetricsRegistry()
        term = counter_term(registry, "domain.widgets", "widgets")
        assert term.label == "widgets"
        assert term.value() == 0.0          # metric not emitted yet
        registry.incr("domain.widgets", 5)
        assert term.value() == 5.0

    def test_counter_term_default_label_is_metric_name(self):
        assert counter_term(MetricsRegistry(), "a.b").label == "a.b"


class TestConservationLaw:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConservationLaw("empty", lhs=[], rhs=[Term("x", lambda: 0)])
        with pytest.raises(ValueError):
            ConservationLaw("empty", lhs=[Term("x", lambda: 0)], rhs=[])
        with pytest.raises(ValueError):
            law_of({"a": 1}, {"b": 1}, tol=-0.1)

    def test_balanced_law_passes_and_counts(self):
        law = law_of({"a": 3, "b": 4}, {"c": 7})
        law.check(time=1.0)
        law.check(time=2.0)
        assert law.checks == 2
        assert law.violations == 0

    def test_within_tolerance_passes(self):
        law_of({"a": 1.0}, {"b": 1.0 + 1e-9}).check()
        law_of({"a": 1.0}, {"b": 1.05}, tol=0.1).check()

    def test_imbalance_raises_with_labeled_delta(self):
        law = law_of({"a": 3, "b": 4}, {"c": 6}, name="books")
        with pytest.raises(InvariantViolation) as excinfo:
            law.check(time=12.5)
        v = excinfo.value
        assert law.violations == 1
        assert v.law is law
        assert v.time == 12.5
        assert v.lhs_values == [("a", 3.0), ("b", 4.0)]
        assert v.rhs_values == [("c", 6.0)]
        assert v.lhs_total == 7.0 and v.rhs_total == 6.0
        assert v.delta == 1.0
        assert str(v) == ("invariant 'books' violated at t=12.5: "
                          "[a=3 + b=4] = 7 != [c=6] = 6 (delta +1)")

    def test_negative_delta_is_signed(self):
        with pytest.raises(InvariantViolation) as excinfo:
            law_of({"a": 5}, {"b": 8}).check()
        assert excinfo.value.delta == -3.0
        assert "(delta -3)" in str(excinfo.value)

    def test_violation_is_an_assertion_error(self):
        # So plain `pytest.raises(AssertionError)` and unittest-style
        # harnesses treat a conservation failure as a test failure.
        assert issubclass(InvariantViolation, AssertionError)

    def test_guard_skips_inapplicable_law(self):
        gate = {"open": False}
        law = law_of({"a": 1}, {"b": 99}, when=lambda: gate["open"])
        law.check()                  # guarded: no evaluation, no raise
        assert law.checks == 0
        gate["open"] = True
        with pytest.raises(InvariantViolation):
            law.check()

    def test_violation_carries_sim_time_and_seed(self):
        law = law_of({"a": 3}, {"b": 1}, name="books")
        with pytest.raises(InvariantViolation) as excinfo:
            law.check(time=42.5, seed=1337)
        v = excinfo.value
        assert v.time == 42.5
        assert v.seed == 1337
        assert str(v) == ("invariant 'books' violated at t=42.5 "
                          "seed=1337: [a=3] = 3 != [b=1] = 1 (delta +2)")

    def test_violation_without_seed_omits_it(self):
        with pytest.raises(InvariantViolation) as excinfo:
            law_of({"a": 3}, {"b": 1}).check(time=5.0)
        v = excinfo.value
        assert v.seed is None
        assert "seed" not in str(v)
        assert "t=5" in str(v)

    def test_terms_read_live_state(self):
        books = {"in": 0, "out": 0}
        law = ConservationLaw(
            "live", lhs=[Term("in", lambda: books["in"])],
            rhs=[Term("out", lambda: books["out"])])
        law.check()
        books["in"] = 2
        books["out"] = 2
        law.check()
        books["out"] = 1
        with pytest.raises(InvariantViolation):
            law.check()
