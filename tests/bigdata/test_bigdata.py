"""Tests for the MapReduce engine, vicissitude, and Fawkes."""

import numpy as np
import pytest

from repro.bigdata import (
    FawkesAllocator,
    MRCluster,
    MRJob,
    MRPhase,
    MRSimulator,
    StaticAllocator,
    detect_vicissitude,
    run_fawkes_experiment,
    run_vicissitude_experiment,
)
from repro.bigdata.mapreduce import (
    PHASE_PROFILES,
    PhaseDemand,
    generate_mr_jobs,
    solo_makespans,
)


def job(name="j", map_work=100, shuffle_work=80, reduce_work=50,
        submit=0.0, parallelism=8):
    return MRJob(name=name, map_work=map_work, shuffle_work=shuffle_work,
                 reduce_work=reduce_work, submit_time=submit,
                 parallelism=parallelism)


class TestMRJob:
    def test_phase_sequence(self):
        assert MRPhase.PENDING.next_phase() is MRPhase.MAP
        assert MRPhase.MAP.next_phase() is MRPhase.SHUFFLE
        assert MRPhase.REDUCE.next_phase() is MRPhase.DONE

    def test_invalid_work_rejected(self):
        with pytest.raises(ValueError):
            job(map_work=0)

    def test_phase_profiles_dominants(self):
        assert PHASE_PROFILES[MRPhase.MAP].dominant == "cpu"
        assert PHASE_PROFILES[MRPhase.SHUFFLE].dominant == "network"
        assert PHASE_PROFILES[MRPhase.REDUCE].dominant == "cpu"

    def test_phase_demand_of(self):
        d = PhaseDemand(cpu=1, disk=2, network=3)
        assert d.of("disk") == 2
        assert d.dominant == "network"


class TestMRSimulator:
    def test_single_job_completes_all_phases(self):
        sim = MRSimulator(MRCluster("c"), [job()], step_s=1.0)
        sim.run()
        j = sim.jobs[0]
        assert j.done
        assert j.makespan > 0
        assert set(j.phase_times) == {"map", "shuffle", "reduce"}
        assert (j.phase_times["map"] < j.phase_times["shuffle"]
                < j.phase_times["reduce"])

    def test_uncontended_runtime_matches_analytics(self):
        """One 8-wide job on an ample cluster: each phase runs at full
        demand rate, so phase time = work / (rate × parallelism)."""
        cluster = MRCluster("c", cpu=1000, disk=1000, network=1000)
        j = job(map_work=80, shuffle_work=40, reduce_work=36,
                parallelism=8)
        sim = MRSimulator(cluster, [j], step_s=1.0)
        sim.run()
        # map: 80/(1.0*8)=10; shuffle: 40/(1.0*8)=5; reduce: 36/(0.9*8)=5.
        assert j.makespan == pytest.approx(20.0, abs=3.0)

    def test_contention_slows_jobs(self):
        cluster = MRCluster("c", cpu=8, disk=8, network=8)
        solo = solo_makespans(cluster, [job(name="a")], step_s=1.0)
        contended_jobs = [job(name="a"), job(name="b"), job(name="c")]
        sim = MRSimulator(cluster, contended_jobs, step_s=1.0)
        sim.run()
        slowdown = sim.mean_slowdown(
            {**solo,
             **solo_makespans(cluster, contended_jobs[1:], step_s=1.0)})
        assert slowdown > 1.3

    def test_utilization_bounded(self):
        sim = MRSimulator(MRCluster("c", cpu=4, disk=4, network=4),
                          [job(), job(name="k")], step_s=1.0)
        sim.run()
        for series in sim.utilization.values():
            assert all(0.0 <= u <= 1.0 + 1e-9 for u in series)

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            MRSimulator(MRCluster("c"), []).run()

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            MRSimulator(MRCluster("c"), [job()], step_s=0)

    def test_generate_jobs_shapes(self):
        rng = np.random.default_rng(1)
        jobs = generate_mr_jobs(rng, n_jobs=10)
        assert len(jobs) == 10
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)
        assert all(j.shuffle_work > 0 for j in jobs)

    def test_bottleneck_series_aligns_with_time(self):
        sim = MRSimulator(MRCluster("c", cpu=6, disk=5, network=4),
                          [job()], step_s=1.0)
        sim.run()
        series = sim.bottleneck_series()
        assert len(series) == len(sim.times)


class TestVicissitude:
    def test_contended_regime_shows_vicissitude(self):
        trace = run_vicissitude_experiment(seed=3,
                                           concurrency="contended")
        assert trace.is_vicissitude
        assert trace.distinct_bottlenecks >= 2
        assert trace.entropy_bits > 0.5

    def test_solo_regime_does_not(self):
        trace = run_vicissitude_experiment(seed=3, concurrency="solo")
        assert not trace.is_vicissitude
        assert trace.shifts <= 2

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            run_vicissitude_experiment(concurrency="quantum")

    def test_detect_on_synthetic_series(self):
        series = ["cpu"] * 5 + [None] * 2 + ["network"] * 5 + ["disk"] * 5
        trace = detect_vicissitude(series)
        assert trace.distinct_bottlenecks == 3
        assert trace.shifts == 2
        assert trace.busy_fraction == pytest.approx(15 / 17)
        assert sum(trace.time_share.values()) == pytest.approx(1.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            detect_vicissitude([])

    def test_single_bottleneck_zero_entropy(self):
        trace = detect_vicissitude(["cpu"] * 10)
        assert trace.entropy_bits == 0.0
        assert not trace.is_vicissitude


class TestFawkes:
    def test_static_weights_equal(self):
        weights = StaticAllocator().weights({"a": 100.0, "b": 0.0})
        assert weights == {"a": 0.5, "b": 0.5}

    def test_fawkes_weights_follow_demand(self):
        weights = FawkesAllocator(min_share=0.1).weights(
            {"a": 300.0, "b": 100.0})
        assert weights["a"] > weights["b"]
        assert weights["b"] >= 0.1
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_fawkes_idle_demand_falls_back_to_equal(self):
        weights = FawkesAllocator().weights({"a": 0.0, "b": 0.0})
        assert weights == {"a": 0.5, "b": 0.5}

    def test_min_share_validation(self):
        with pytest.raises(ValueError):
            FawkesAllocator(min_share=1.0)

    def test_fawkes_beats_static_on_imbalanced_tenants(self):
        """The [94] finding: dynamic balancing helps the bursty tenant
        without hurting the light one."""
        static = run_fawkes_experiment(StaticAllocator(), seed=4)
        fawkes = run_fawkes_experiment(FawkesAllocator(), seed=4)
        assert fawkes.per_tenant_slowdown["heavy"] < (
            static.per_tenant_slowdown["heavy"])
        assert fawkes.per_tenant_slowdown["light"] <= (
            static.per_tenant_slowdown["light"] * 1.2)
        assert fawkes.mean_slowdown < static.mean_slowdown
        assert fawkes.max_slowdown < static.max_slowdown
