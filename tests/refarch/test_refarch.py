"""Tests for the Figure 9 reference architectures and mappings."""

import pytest

from repro.refarch import (
    BIG_DATA_2011,
    DATACENTER_2016,
    INDUSTRY_ECOSYSTEMS,
    KNOWN_COMPONENTS,
    Layer,
    MAPREDUCE_ECOSYSTEM,
    ReferenceArchitecture,
    component,
    coverage,
    map_ecosystem,
)


class TestArchitectureModel:
    def test_2011_has_four_layers(self):
        assert len(BIG_DATA_2011.layers) == 4
        assert [l.name for l in BIG_DATA_2011.layers] == [
            "Storage Engine", "Execution Engine", "Programming Model",
            "High-Level Language"]

    def test_2016_has_five_core_plus_devops(self):
        assert len(DATACENTER_2016.core_layers) == 5
        ortho = DATACENTER_2016.orthogonal_layers
        assert len(ortho) == 1
        assert ortho[0].name == "DevOps"

    def test_2016_sublayers_present(self):
        frontend = DATACENTER_2016.layer("Front-end")
        backend = DATACENTER_2016.layer("Back-end")
        assert len(frontend.sublayers) == 3
        assert len(backend.sublayers) == 3

    def test_layer_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            BIG_DATA_2011.layer("DevOps")

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError):
            ReferenceArchitecture("x", "now", [
                Layer(1, "A", {"a"}), Layer(2, "A", {"b"})])

    def test_placement_via_sublayer(self):
        pig = KNOWN_COMPONENTS["Pig"]
        placements = DATACENTER_2016.placement_detail(pig)
        assert any(layer.name == "Front-end" and sub is not None
                   and sub.name == "High-Level Language"
                   for layer, sub in placements)

    def test_component_str(self):
        assert str(KNOWN_COMPONENTS["Hadoop"]) == "Hadoop"


class TestMapReduceMapping:
    def test_core_ecosystem_fits_both_generations(self):
        """Fig. 9: 'the core ecosystem maps well to both architectures'."""
        assert coverage(BIG_DATA_2011, MAPREDUCE_ECOSYSTEM) == 1.0
        assert coverage(DATACENTER_2016, MAPREDUCE_ECOSYSTEM) == 1.0

    def test_hadoop_is_execution_engine_in_2011(self):
        mapping = map_ecosystem(BIG_DATA_2011, MAPREDUCE_ECOSYSTEM)
        assert "Execution Engine" in mapping.placed["Hadoop"]

    def test_yarn_moves_to_resources_layer_in_2016(self):
        mapping = map_ecosystem(DATACENTER_2016, MAPREDUCE_ECOSYSTEM)
        assert mapping.placed["YARN"] == ["Resources"]

    def test_zookeeper_is_operations_service_in_2016(self):
        mapping = map_ecosystem(DATACENTER_2016, MAPREDUCE_ECOSYSTEM)
        assert "Operations Service" in mapping.placed["Zookeeper"]


class TestArchitectureEvolution:
    """The paper's argument: the 2011 architecture cannot place the newer
    systems; the 2016 one encompasses them."""

    NEW_SYSTEMS = ["MemEFS", "Pocket", "Crail", "FlashNet", "Graphalytics",
                   "Granula", "JupyterHub"]

    def test_2011_cannot_place_new_systems(self):
        for name in self.NEW_SYSTEMS:
            assert not BIG_DATA_2011.can_place(KNOWN_COMPONENTS[name]), name

    def test_2016_places_all_new_systems(self):
        for name in self.NEW_SYSTEMS:
            assert DATACENTER_2016.can_place(KNOWN_COMPONENTS[name]), name

    def test_2016_covers_all_industry_ecosystems(self):
        for eco_name, comps in INDUSTRY_ECOSYSTEMS.items():
            assert coverage(DATACENTER_2016, comps) == 1.0, eco_name

    def test_2011_coverage_strictly_lower_on_modern_stack(self):
        modern = INDUSTRY_ECOSYSTEMS["modern-datacenter"]
        assert coverage(BIG_DATA_2011, modern) < coverage(
            DATACENTER_2016, modern)

    def test_unplaced_components_are_reported(self):
        mapping = map_ecosystem(
            BIG_DATA_2011, INDUSTRY_ECOSYSTEMS["modern-datacenter"])
        assert "MemEFS" in mapping.unplaced
        assert "Hadoop" in mapping.placed

    def test_devops_tools_map_to_orthogonal_layer(self):
        mapping = map_ecosystem(
            DATACENTER_2016, [KNOWN_COMPONENTS["Graphalytics"],
                              KNOWN_COMPONENTS["Granula"]])
        assert mapping.placed["Graphalytics"] == ["DevOps"]
        assert mapping.placed["Granula"] == ["DevOps"]


class TestCustomComponents:
    def test_component_spanning_layers(self):
        spanner = component("Spanner-like", "storage-engine",
                            "coordination")
        layers = {l.name for l in DATACENTER_2016.place(spanner)}
        assert layers == {"Back-end", "Operations Service"}

    def test_unknown_concern_unplaceable(self):
        odd = component("QuantumThing", "quantum-annealing")
        assert not DATACENTER_2016.can_place(odd)
        mapping = map_ecosystem(DATACENTER_2016, [odd])
        assert mapping.coverage == 0.0

    def test_empty_ecosystem_coverage_is_one(self):
        assert coverage(DATACENTER_2016, []) == 1.0

    def test_layers_used(self):
        mapping = map_ecosystem(DATACENTER_2016, MAPREDUCE_ECOSYSTEM)
        used = mapping.layers_used()
        assert "Front-end" in used
        assert "Resources" in used
