"""Tests for the portfolio scheduler and the Table 9 experiments."""

import pytest

from repro.cluster import Cluster
from repro.scheduling import (
    ClusterSimulator,
    ENVIRONMENTS,
    FCFSPolicy,
    LJFPolicy,
    PortfolioConfig,
    PortfolioScheduler,
    SJFPolicy,
    run_table9_cell,
)
from repro.scheduling.experiments import rescale_to_load, run_portfolio, run_static
from repro.scheduling.portfolio import predict_objective
from repro.sim import Environment, RandomStreams
from repro.workload import BagOfTasks, Task


def bag(works, submit=0.0):
    tasks = []
    for w in works:
        t = Task(work=w)
        t.runtime_estimate = w
        tasks.append(t)
    return BagOfTasks(tasks, submit_time=submit)


class TestPredictObjective:
    def test_empty_queue_is_zero(self):
        assert predict_objective(FCFSPolicy(), [], [], 8, now=0) == 0.0

    def test_sjf_predicts_lower_objective_on_mixed_queue(self):
        tasks = []
        for w in [1000, 10, 10, 10]:
            t = Task(work=w, submit_time=0)
            t.runtime_estimate = w
            tasks.append(t)
        sjf = predict_objective(SJFPolicy(), tasks, [], 1, now=0)
        ljf = predict_objective(LJFPolicy(), tasks, [], 1, now=0)
        assert sjf < ljf

    def test_running_tasks_delay_start(self):
        t = Task(work=10, submit_time=0)
        t.runtime_estimate = 10
        free_now = predict_objective(FCFSPolicy(), [t], [], 1, now=0)
        busy = predict_objective(FCFSPolicy(), [t], [(100.0, 1)], 1, now=0)
        assert busy > free_now

    def test_unplaceable_penalized(self):
        t = Task(work=10, cores=64, submit_time=0)
        t.runtime_estimate = 10
        score = predict_objective(FCFSPolicy(), [t], [], 8, now=0)
        assert score >= 1000.0


class TestPortfolioScheduler:
    def _run(self, config=None, works=None):
        env = Environment()
        cluster = Cluster.homogeneous("c", 1, cores=2)
        sim = ClusterSimulator(env, cluster, FCFSPolicy())
        policies = [FCFSPolicy(), SJFPolicy(), LJFPolicy()]
        portfolio = PortfolioScheduler(env, sim, policies, config)
        jobs = [bag(works or [800, 20, 20, 20, 20], submit=0),
                bag([30, 30, 30], submit=100)]
        sim.submit_jobs(jobs)
        env.run()
        return sim, portfolio

    def test_selects_and_records(self):
        sim, portfolio = self._run()
        assert portfolio.stats.epochs >= 1
        assert portfolio.stats.selections
        assert sum(portfolio.stats.policy_use_epochs.values()) == (
            portfolio.stats.epochs)

    def test_picks_sjf_under_mixed_queue(self):
        config = PortfolioConfig(decision_interval_s=50.0)
        sim, portfolio = self._run(config)
        used = portfolio.stats.policy_use_epochs
        assert used.get("sjf", 0) >= used.get("ljf", 0)

    def test_active_set_reduces_simulation_cost(self):
        full_cfg = PortfolioConfig(decision_interval_s=25.0)
        limited_cfg = PortfolioConfig(decision_interval_s=25.0,
                                      active_set_size=1,
                                      full_refresh_epochs=100)
        _, full = self._run(full_cfg)
        _, limited = self._run(limited_cfg)
        assert limited.stats.simulated_policy_epochs < (
            full.stats.simulated_policy_epochs)
        assert limited.stats.total_sim_cost_s < full.stats.total_sim_cost_s

    def test_sim_cost_grows_with_portfolio_size(self):
        """The [114] finding: online simulation cost is proportional to
        the number of policies."""
        env = Environment()
        cluster = Cluster.homogeneous("c", 1, cores=2)

        def run_with(policies):
            env = Environment()
            sim = ClusterSimulator(env, Cluster.homogeneous("c", 1, cores=2),
                                   FCFSPolicy())
            pf = PortfolioScheduler(
                env, sim, policies,
                PortfolioConfig(decision_interval_s=50.0))
            sim.submit_jobs([bag([100] * 10)])
            env.run()
            return pf.stats

        small = run_with([FCFSPolicy()])
        large = run_with([FCFSPolicy(), SJFPolicy(), LJFPolicy()])
        assert large.total_sim_cost_s > 2 * small.total_sim_cost_s

    def test_empty_portfolio_rejected(self):
        env = Environment()
        sim = ClusterSimulator(env, Cluster.homogeneous("c", 1),
                               FCFSPolicy())
        with pytest.raises(ValueError):
            PortfolioScheduler(env, sim, [])

    def test_duplicate_policies_rejected(self):
        env = Environment()
        sim = ClusterSimulator(env, Cluster.homogeneous("c", 1),
                               FCFSPolicy())
        with pytest.raises(ValueError):
            PortfolioScheduler(env, sim, [FCFSPolicy(), FCFSPolicy()])


class TestTable9:
    def test_rescale_hits_target_load(self):
        rng = RandomStreams(seed=2).get("w")
        from repro.workload.generators import generate_domain_workload
        jobs = generate_domain_workload(rng, "synthetic", n_jobs=20,
                                        horizon_s=90 * 86400)
        cluster = Cluster.homogeneous("c", 4, cores=4)
        rescale_to_load(jobs, cluster, target_load=2.0)
        total_work = sum(t.work * t.cores for j in jobs for t in j.tasks)
        window = (max(j.submit_time for j in jobs)
                  - min(j.submit_time for j in jobs))
        load = total_work / (window * 16)
        assert load == pytest.approx(2.0, rel=0.01)

    def test_rescale_validation(self):
        cluster = Cluster.homogeneous("c", 1)
        with pytest.raises(ValueError):
            rescale_to_load([bag([1])], cluster, target_load=0)

    def test_bigdata_cell_ps_useful_and_policies_differ(self):
        """The Table 9 'bigdata' row: policies spread widely (estimates
        are bad), yet the portfolio stays near the best."""
        cell = run_table9_cell("bigdata", "CL", seed=1, n_jobs=25)
        best_name, best = cell.best_static
        _, worst = cell.worst_static
        assert worst > best * 1.3  # static policies genuinely differ
        assert cell.ps_is_useful()

    def test_synthetic_cell(self):
        cell = run_table9_cell("synthetic", "CL", seed=1, n_jobs=25)
        assert cell.ps_is_useful(tolerance=0.3)
        assert cell.portfolio_stats.epochs > 0

    def test_portfolio_beats_worst_static(self):
        cell = run_table9_cell("scientific", "G+CD", seed=2, n_jobs=20)
        _, worst = cell.worst_static
        assert cell.portfolio_result <= worst * 1.05

    def test_environments_registry(self):
        assert set(ENVIRONMENTS) == {"CL", "CD", "G+CD", "MCD", "GDC"}
        for factory in ENVIRONMENTS.values():
            cluster = factory()
            assert cluster.total_cores > 0
