"""Tests for the Ananke-style learning portfolio ([119])."""

import pytest

from repro.cluster import Cluster
from repro.scheduling import ClusterSimulator, FCFSPolicy, LJFPolicy, SJFPolicy
from repro.scheduling.learning import (
    LearningPortfolioScheduler,
    queue_pressure_state,
)
from repro.sim import Environment, RandomStreams
from repro.workload import BagOfTasks, Task


def mixed_bag(submit, n_short=6, long_work=400.0):
    tasks = [Task(work=long_work)]
    tasks += [Task(work=20.0) for _ in range(n_short)]
    for t in tasks:
        t.runtime_estimate = t.work
    return BagOfTasks(tasks, submit_time=submit)


def run_learning(epsilon=0.15, waves=20, seed=1, epoch_s=100.0):
    env = Environment()
    cluster = Cluster.homogeneous("c", 1, cores=2)
    sim = ClusterSimulator(env, cluster, FCFSPolicy())
    rng = RandomStreams(seed).get("bandit")
    scheduler = LearningPortfolioScheduler(
        env, sim, [FCFSPolicy(), SJFPolicy(), LJFPolicy()],
        epoch_s=epoch_s, epsilon=epsilon, rng=rng)
    jobs = [mixed_bag(i * 400.0) for i in range(waves)]
    sim.submit_jobs(jobs)
    env.run()
    return sim, scheduler


class TestQueuePressureState:
    def test_buckets(self):
        env = Environment()
        sim = ClusterSimulator(env, Cluster.homogeneous("c", 1),
                               FCFSPolicy())
        assert queue_pressure_state(sim) == 0
        t = [Task(work=1.0) for _ in range(5)]
        sim.ready.extend(t)
        assert queue_pressure_state(sim) == 1


class TestLearningPortfolio:
    def test_validation(self):
        env = Environment()
        sim = ClusterSimulator(env, Cluster.homogeneous("c", 1),
                               FCFSPolicy())
        with pytest.raises(ValueError):
            LearningPortfolioScheduler(env, sim, [])
        with pytest.raises(ValueError):
            LearningPortfolioScheduler(env, sim, [FCFSPolicy()],
                                       epsilon=2.0)
        with pytest.raises(ValueError):
            LearningPortfolioScheduler(env, sim, [FCFSPolicy()],
                                       learning_rate=0.0)

    def test_runs_to_completion_and_records(self):
        sim, scheduler = run_learning(waves=8)
        assert sim.all_done
        assert scheduler.stats.epochs > 0
        assert scheduler.stats.rewards, "no rewards observed"
        assert all(r <= 0 for r in scheduler.stats.rewards)

    def test_learns_sjf_under_mixed_load(self):
        """After enough waves of long+shorts, the learned best policy
        under queue pressure should be SJF (lowest realized slowdown)."""
        sim, scheduler = run_learning(waves=30, seed=3)
        pressured_states = [s for s in range(1, 4)]
        learned = {scheduler.best_policy_for(s) for s in pressured_states}
        assert "sjf" in learned

    def test_exploration_rate_roughly_epsilon(self):
        sim, scheduler = run_learning(epsilon=0.5, waves=15, seed=5)
        rate = scheduler.stats.explorations / scheduler.stats.epochs
        assert 0.25 < rate < 0.75

    def test_zero_epsilon_never_explores(self):
        sim, scheduler = run_learning(epsilon=0.0, waves=6, seed=7)
        assert scheduler.stats.explorations == 0
