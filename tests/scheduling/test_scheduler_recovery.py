"""Tests for scheduler crash-recovery: journal replay and reconciliation."""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.recovery import Journal
from repro.scheduling.policies import FCFSPolicy
from repro.scheduling.simulator import ClusterSimulator
from repro.sim import Environment, RandomStreams
from repro.workload.task import BagOfTasks, Task, TaskState, Workflow


def make_sim(env, n_machines=4, cores=4, **kwargs):
    cluster = Cluster.homogeneous("rec", n_machines, cores=cores)
    journal = Journal(env, append_cost_s=0.005,
                      replay_cost_per_record_s=0.002)
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           scheduler_restart_cost_s=1.0, **kwargs)
    return sim, cluster, journal


def outage(env, sim, at_s, down_s):
    def driver():
        yield env.timeout(at_s)
        sim.crash_scheduler()
        yield env.timeout(down_s)
        yield from sim.recover_scheduler()
    env.process(driver())


class TestJournaling:
    def test_transitions_are_journaled(self):
        env = Environment()
        sim, _, journal = make_sim(env)
        tasks = [Task(work=10.0) for _ in range(6)]
        sim.submit_jobs([BagOfTasks(tasks)])
        env.run(until=sim._scheduler)
        kinds = [r.kind for r in journal.records]
        assert kinds.count("submit") == 6
        assert kinds.count("dispatch") == 6
        assert kinds.count("complete") == 6

    def test_crash_without_journal_rejected(self):
        env = Environment()
        cluster = Cluster.homogeneous("rec", 2, cores=4)
        sim = ClusterSimulator(env, cluster, FCFSPolicy())
        with pytest.raises(RuntimeError):
            sim.crash_scheduler()

    def test_recover_without_crash_rejected(self):
        env = Environment()
        sim, _, _ = make_sim(env)
        with pytest.raises(RuntimeError):
            next(sim.recover_scheduler())


class TestOutageReconciliation:
    def test_completions_during_outage_are_never_lost(self):
        env = Environment()
        sim, _, _ = make_sim(env, n_machines=2)
        # 8 single-core 10s tasks on 8 cores: all finish at t=10,
        # squarely inside the outage [5, 25).
        tasks = [Task(work=10.0) for _ in range(8)]
        sim.submit_jobs([BagOfTasks(tasks)])
        outage(env, sim, at_s=5.0, down_s=20.0)
        env.run(until=sim._scheduler)
        assert len(sim.finished) == 8
        assert sim.recovered_completions == 8
        assert all(t.state is TaskState.DONE for t in tasks)
        metrics = sim.metrics()
        assert metrics.completed_fraction == 1.0

    def test_surviving_dispatches_are_readopted_not_redone(self):
        env = Environment()
        sim, _, _ = make_sim(env, n_machines=2)
        # 8 tasks of 100s: still running when the scheduler comes back.
        tasks = [Task(work=100.0) for _ in range(8)]
        sim.submit_jobs([BagOfTasks(tasks)])
        outage(env, sim, at_s=5.0, down_s=20.0)
        env.run(until=sim._scheduler)
        assert sim.readopted == 8
        assert sim.restarts == 0  # no work was redone
        assert len(sim.finished) == 8
        # Re-adoption means original start times survive: one execution.
        assert all(t.finish_time == pytest.approx(100.0) for t in tasks)

    def test_machine_crash_during_outage_orphans_then_requeues(self):
        env = Environment()
        sim, cluster, _ = make_sim(env, n_machines=2)
        tasks = [Task(work=100.0) for _ in range(8)]
        sim.submit_jobs([BagOfTasks(tasks)])

        def machine_killer():
            yield env.timeout(10.0)  # inside the outage
            machine = cluster.machines[0]
            machine.fail()
            sim.handle_machine_failure(machine)
            yield env.timeout(5.0)
            machine.repair()
            sim.handle_machine_repair(machine)
        env.process(machine_killer())
        outage(env, sim, at_s=5.0, down_s=20.0)
        env.run(until=sim._scheduler)
        # The 4 victims had no scheduler to requeue them mid-outage...
        assert sim.orphans_requeued == 4
        # ...but recovery requeued every one: nothing is lost.
        assert len(sim.finished) == 8
        assert len(sim.failed) == 0

    def test_dispatching_pauses_while_down(self):
        env = Environment()
        sim, _, _ = make_sim(env, n_machines=1)
        # 4-core machine, 4-core tasks: strictly sequential.
        tasks = [Task(work=10.0, cores=4) for _ in range(3)]
        sim.submit_jobs([BagOfTasks(tasks)])
        outage(env, sim, at_s=5.0, down_s=20.0)
        env.run(until=sim._scheduler)
        # Task 1 finishes at 10 (unreported until 25); tasks 2 and 3 can
        # only be dispatched after recovery.
        assert len(sim.finished) == 3
        starts = sorted(t.start_time for t in tasks)
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] >= 25.0

    def test_workflow_successors_unlock_at_recovery(self):
        env = Environment()
        sim, _, _ = make_sim(env, n_machines=2)
        a, b = Task(work=10.0), Task(work=10.0)
        wf = Workflow([a, b], edges=[(a.task_id, b.task_id)])
        sim.submit_jobs([wf])
        # a finishes at 10 during the outage; b must still run after.
        outage(env, sim, at_s=5.0, down_s=20.0)
        env.run(until=sim._scheduler)
        assert len(sim.finished) == 2
        assert b.start_time >= 25.0


class TestEndToEndUnderMachineFaults:
    @pytest.mark.parametrize("seed", [0, 7, 19, 42])
    def test_zero_lost_completions_and_all_orphans_requeued(self, seed):
        streams = RandomStreams(seed)
        env = Environment()
        sim, cluster, _ = make_sim(env, n_machines=6)
        work_rng = streams.get("work")
        tasks = [Task(work=float(work_rng.uniform(20.0, 120.0)))
                 for _ in range(60)]
        injector = FailureInjector(
            env, cluster, streams.get("machine-failures"),
            mtbf_s=150.0, mttr_s=30.0,
            on_failure=sim.handle_machine_failure)
        injector.on_repair = sim.handle_machine_repair
        sim.submit_jobs([BagOfTasks(tasks)])
        outage(env, sim, at_s=40.0, down_s=60.0)
        env.run(until=sim._scheduler)
        # The acceptance criterion: zero lost completed tasks, all
        # orphans requeued, every task eventually done.
        assert len(sim.finished) == 60
        assert len(sim.failed) == 0
        assert sim.scheduler_crashes == 1
        assert all(t.state is TaskState.DONE for t in tasks)
