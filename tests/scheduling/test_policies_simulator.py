"""Tests for scheduling policies and the cluster simulator."""

import pytest

from repro.cluster import Cluster
from repro.scheduling import (
    BackfillPolicy,
    FCFSPolicy,
    FairSharePolicy,
    LJFPolicy,
    POLICIES,
    RandomPolicy,
    SJFPolicy,
    simulate_schedule,
)
from repro.scheduling.policies import make_policy
from repro.sim import RandomStreams
from repro.workload import BagOfTasks, Task, Workflow


def bag(works, submit=0.0, cores=1, user="u"):
    tasks = []
    for w in works:
        t = Task(work=w, cores=cores)
        t.runtime_estimate = w
        tasks.append(t)
    return BagOfTasks(tasks, submit_time=submit, user=user)


class TestPolicyOrdering:
    def _queue(self):
        tasks = []
        for i, (work, submit) in enumerate([(30, 2), (10, 0), (20, 1)]):
            t = Task(work=work, submit_time=submit)
            t.runtime_estimate = work
            tasks.append(t)
        return tasks

    def test_fcfs_by_submit_time(self):
        order = FCFSPolicy().order(self._queue(), now=10)
        assert [t.submit_time for t in order] == [0, 1, 2]

    def test_sjf_by_estimate(self):
        order = SJFPolicy().order(self._queue(), now=10)
        assert [t.work for t in order] == [10, 20, 30]

    def test_ljf_reverse(self):
        order = LJFPolicy().order(self._queue(), now=10)
        assert [t.work for t in order] == [30, 20, 10]

    def test_random_is_permutation(self):
        rng = RandomStreams(seed=1).get("r")
        queue = self._queue()
        order = RandomPolicy(rng).order(queue, now=0)
        assert sorted(t.task_id for t in order) == sorted(
            t.task_id for t in queue)

    def test_fair_share_prefers_unserved_users(self):
        policy = FairSharePolicy()
        t1 = Task(work=10, submit_time=0)
        t1.user = "heavy"
        t2 = Task(work=10, submit_time=5)
        t2.user = "light"
        policy.charge("heavy", 1000.0)
        order = policy.order([t1, t2], now=10)
        assert order[0].user == "light"

    def test_backfill_orders_fcfs_but_allows_backfill(self):
        policy = BackfillPolicy()
        assert policy.allows_backfill()
        assert not FCFSPolicy().allows_backfill()

    def test_make_policy_unknown(self):
        with pytest.raises(KeyError):
            make_policy("galaxy-brain")

    def test_registry_complete(self):
        assert set(POLICIES) == {"fcfs", "sjf", "ljf", "random",
                                 "fair-share", "backfill"}


class TestSimulator:
    def test_single_bag_runs_to_completion(self):
        cluster = Cluster.homogeneous("c", 2, cores=2)
        metrics = simulate_schedule([bag([10, 10, 10, 10])], cluster,
                                    FCFSPolicy())
        assert metrics.n_tasks == 4
        assert metrics.mean_wait_s == 0.0  # 4 slots... 4 cores, all fit
        assert metrics.makespan_s == pytest.approx(10.0)

    def test_queueing_when_overloaded(self):
        cluster = Cluster.homogeneous("c", 1, cores=1)
        metrics = simulate_schedule([bag([100, 100])], cluster,
                                    FCFSPolicy())
        assert metrics.mean_wait_s == pytest.approx(50.0)  # (0 + 100) / 2
        assert metrics.makespan_s == pytest.approx(200.0)

    def test_sjf_beats_fcfs_on_mixed_sizes(self):
        def workload():
            return [bag([1000, 10, 10, 10, 10])]

        cluster1 = Cluster.homogeneous("c", 1, cores=1)
        cluster2 = Cluster.homogeneous("c", 1, cores=1)
        fcfs = simulate_schedule(workload(), cluster1, FCFSPolicy())
        sjf = simulate_schedule(workload(), cluster2, SJFPolicy())
        assert sjf.mean_bounded_slowdown < fcfs.mean_bounded_slowdown

    def test_workflow_dependencies_respected(self):
        a, b = Task(work=10), Task(work=10)
        a.runtime_estimate = b.runtime_estimate = 10
        wf = Workflow([a, b], [(a.task_id, b.task_id)], submit_time=0)
        cluster = Cluster.homogeneous("c", 4, cores=4)
        metrics = simulate_schedule([wf], cluster, FCFSPolicy())
        assert b.start_time >= a.finish_time
        assert metrics.makespan_s == pytest.approx(20.0)

    def test_machine_speed_scales_runtime(self):
        cluster = Cluster.homogeneous("c", 1, cores=1, speed=2.0)
        metrics = simulate_schedule([bag([100])], cluster, FCFSPolicy())
        assert metrics.makespan_s == pytest.approx(50.0)

    def test_backfill_fills_holes(self):
        """Head needs 4 cores (busy); a 1-core short task backfills."""
        cluster = Cluster.homogeneous("c", 1, cores=4)
        blocker = Task(work=100, cores=3)
        blocker.runtime_estimate = 100
        head = Task(work=50, cores=4)
        head.runtime_estimate = 50
        small = Task(work=20, cores=1)
        small.runtime_estimate = 20
        b1 = BagOfTasks([blocker], submit_time=0)
        b2 = BagOfTasks([head], submit_time=1)
        b3 = BagOfTasks([small], submit_time=2)
        simulate_schedule([b1, b2, b3], cluster, BackfillPolicy())
        # Small ran before head despite arriving later.
        assert small.start_time < head.start_time
        # And did not delay the head: head starts when blocker ends.
        assert head.start_time == pytest.approx(100.0)

    def test_fcfs_does_not_backfill(self):
        cluster = Cluster.homogeneous("c", 1, cores=4)
        blocker = Task(work=100, cores=3)
        head = Task(work=50, cores=4)
        small = Task(work=20, cores=1)
        for t in (blocker, head, small):
            t.runtime_estimate = t.work
        jobs = [BagOfTasks([blocker], submit_time=0),
                BagOfTasks([head], submit_time=1),
                BagOfTasks([small], submit_time=2)]
        simulate_schedule(jobs, cluster, FCFSPolicy())
        assert small.start_time >= head.start_time

    def test_unplaceable_task_raises(self):
        cluster = Cluster.homogeneous("c", 1, cores=2)
        giant = Task(work=10, cores=16)
        giant.runtime_estimate = 10
        with pytest.raises(RuntimeError, match="never be placed"):
            simulate_schedule([BagOfTasks([giant])], cluster, FCFSPolicy())

    def test_metrics_before_completion_rejected(self):
        from repro.scheduling import ClusterSimulator
        from repro.sim import Environment
        env = Environment()
        sim = ClusterSimulator(env, Cluster.homogeneous("c", 1),
                               FCFSPolicy())
        with pytest.raises(RuntimeError):
            sim.metrics()

    def test_utilization_bounded(self):
        cluster = Cluster.homogeneous("c", 2, cores=4)
        metrics = simulate_schedule(
            [bag([50] * 16)], cluster, FCFSPolicy())
        assert 0 < metrics.utilization <= 1.0

    def test_fair_share_interleaves_users(self):
        cluster = Cluster.homogeneous("c", 1, cores=1)
        heavy = bag([50] * 4, submit=0, user="heavy")
        light = bag([50], submit=1, user="light")
        simulate_schedule([heavy, light], cluster, FairSharePolicy())
        # Light user's single task runs before the heavy user's queue
        # drains completely.
        light_task = light.tasks[0]
        heavy_finishes = sorted(t.finish_time for t in heavy.tasks)
        assert light_task.start_time < heavy_finishes[-1]
