"""Property-based tests for design spaces and exploration invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignProblem,
    DesignSpace,
    Dimension,
    FreeExploration,
    RuggedLandscape,
)
from repro.sim import RandomStreams


def space_strategy():
    return st.lists(
        st.integers(min_value=2, max_value=5),
        min_size=2, max_size=6,
    ).map(lambda sizes: DesignSpace([
        Dimension(f"d{i}", tuple(f"o{j}" for j in range(n)))
        for i, n in enumerate(sizes)
    ]))


@given(space=space_strategy())
@settings(max_examples=30, deadline=None)
def test_space_size_equals_product(space):
    assert space.size == len(list(space.all_candidates()))


@given(space=space_strategy(), seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_neighbors_are_symmetric_and_distinct(space, seed):
    rng = RandomStreams(seed).get("c")
    candidate = space.random_candidate(rng)
    neighbors = space.neighbors(candidate)
    expected = sum(len(d.options) - 1 for d in space.dimensions)
    assert len(neighbors) == expected
    for n in neighbors:
        assert candidate in space.neighbors(n)  # symmetry
        assert n != candidate


@given(space=space_strategy(), seed=st.integers(0, 10**6),
       k=st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_landscape_deterministic_and_bounded(space, seed, k):
    k = min(k, len(space.dimensions) - 1)
    l1 = RuggedLandscape(space, seed=seed, k=k)
    l2 = RuggedLandscape(space, seed=seed, k=k)
    rng = RandomStreams(seed).get("cands")
    for _ in range(5):
        c = space.random_candidate(rng)
        v = l1(c)
        assert 0.0 <= v <= 1.0
        assert v == l2(c)


@given(space=space_strategy(), seed=st.integers(0, 10**6),
       budget=st.integers(1, 60),
       threshold=st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_exploration_accounting_invariants(space, seed, budget, threshold):
    """Budget is respected exactly; solutions + failures = evaluations;
    every recorded solution satisfices."""
    landscape = RuggedLandscape(space, seed=seed,
                                k=min(1, len(space.dimensions) - 1))
    problem = DesignProblem("prop", space, quality=landscape,
                            satisfice_threshold=threshold)
    rng = RandomStreams(seed).get("explore")
    result = FreeExploration(rng).explore(problem, budget=budget)
    assert result.evaluations == budget
    assert len(result.solutions) + result.failures == budget
    for candidate, quality in result.solutions:
        assert quality >= threshold
    assert problem.evaluations == budget
