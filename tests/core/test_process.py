"""Tests for the Basic Design Cycle and Overall Process (Figure 8)."""

import json

import pytest

from repro.core import (
    BasicDesignCycle,
    DesignDocument,
    OverallProcess,
    Stage,
    StoppingCriterion,
)


def always_answer(context):
    context.setdefault("n", 0)
    context["n"] += 1
    return f"answer-{context['n']}"


def never_answer(context):
    return None


class TestBasicDesignCycle:
    def test_satisfice_stops_at_first_answer(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer},
            target=StoppingCriterion.SATISFICED, budget=100)
        result = cycle.run()
        assert result.stopped_by is StoppingCriterion.SATISFICED
        assert result.answers == ["answer-1"]
        assert result.succeeded

    def test_portfolio_needs_three_answers(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer},
            target=StoppingCriterion.PORTFOLIO, budget=100)
        result = cycle.run()
        assert result.stopped_by is StoppingCriterion.PORTFOLIO
        assert len(result.answers) == 3
        assert result.iterations == 3

    def test_systematic_needs_ten(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer},
            target=StoppingCriterion.SYSTEMATIC, budget=100)
        result = cycle.run()
        assert len(result.answers) == 10

    def test_exhausted_requires_space_size(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer},
            target=StoppingCriterion.EXHAUSTED, budget=100)
        with pytest.raises(ValueError):
            cycle.run()

    def test_exhausted_with_space_size(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer},
            target=StoppingCriterion.EXHAUSTED, budget=100, space_size=5)
        result = cycle.run()
        assert result.stopped_by is StoppingCriterion.EXHAUSTED
        assert len(result.answers) == 5

    def test_budget_is_fallback_not_target(self):
        with pytest.raises(ValueError):
            BasicDesignCycle("p", handlers={},
                             target=StoppingCriterion.BUDGET)

    def test_budget_exhaustion_stops_without_success(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: never_answer}, budget=10)
        result = cycle.run()
        assert result.stopped_by is StoppingCriterion.BUDGET
        assert result.answers == []
        assert not result.succeeded
        assert result.budget_spent == 10

    def test_skip_policy_skips_stages(self):
        skipped_stages = []

        def skip_analysis(stage, iteration, context):
            if stage in (Stage.CONCEPTUAL_ANALYSIS,
                         Stage.EXPERIMENTAL_ANALYSIS):
                skipped_stages.append(stage)
                return True
            return False

        cycle = BasicDesignCycle(
            "p",
            handlers={stage: never_answer for stage in Stage},
            skip_policy=skip_analysis, budget=12)
        result = cycle.run()
        # With 8 stages and 2 always skipped, 12 executions = 2 iterations.
        assert Stage.CONCEPTUAL_ANALYSIS in skipped_stages
        assert result.budget_spent == 12
        skipped_names = {e.stage for e in result.document.skipped()}
        assert "CONCEPTUAL_ANALYSIS" in skipped_names

    def test_missing_handlers_are_implicit_skips(self):
        cycle = BasicDesignCycle(
            "p", handlers={Stage.DESIGN: always_answer}, budget=100)
        result = cycle.run()
        skipped = {e.stage for e in result.document.skipped()}
        assert "FORMULATE_REQUIREMENTS" in skipped

    def test_context_flows_between_stages(self):
        def requirements(context):
            context["reqs"] = ["low latency"]
            return None

        def design(context):
            assert context["reqs"] == ["low latency"]
            return "design-meeting-reqs"

        cycle = BasicDesignCycle(
            "p", handlers={Stage.FORMULATE_REQUIREMENTS: requirements,
                           Stage.DESIGN: design}, budget=100)
        result = cycle.run()
        assert result.answers == ["design-meeting-reqs"]

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BasicDesignCycle("p", handlers={}, budget=0)

    def test_stage_order_is_the_paper_eight(self):
        assert [s.value for s in BasicDesignCycle.STAGES] == list(
            range(1, 9))


class TestDesignDocument:
    def test_provenance_recorded(self):
        cycle = BasicDesignCycle(
            "my-problem", handlers={Stage.DESIGN: always_answer}, budget=50)
        result = cycle.run()
        doc = result.document
        assert doc.problem == "my-problem"
        assert doc.executed()
        assert doc.iterations() >= 1

    def test_json_roundtrip_fields(self, tmp_path):
        doc = DesignDocument(problem="p")
        doc.log(0, Stage.DESIGN, "executed", note="v1")
        doc.log(0, Stage.IMPLEMENTATION, "skipped")
        path = doc.save(tmp_path / "design.json")
        data = json.loads(path.read_text())
        assert data["problem"] == "p"
        assert data["events"][0]["stage"] == "DESIGN"
        assert data["events"][1]["action"] == "skipped"

    def test_string_stage_accepted(self):
        doc = DesignDocument(problem="p")
        doc.log(0, "cycle", "stopped")
        assert doc.events[0].stage == "cycle"


class TestOverallProcess:
    def test_child_cycle_expands_stage(self):
        child = BasicDesignCycle(
            "child", handlers={Stage.DESIGN: always_answer}, budget=20)
        parent = BasicDesignCycle(
            "parent", handlers={Stage.IMPLEMENTATION: never_answer},
            budget=20)
        op = OverallProcess(parent, children={Stage.IMPLEMENTATION: child})
        result = op.run()
        # Child produced an answer; the expanding handler surfaces it only
        # when the parent has no handler... parent HAS a handler (never_answer)
        # so child results live in context only.
        assert result.stopped_by in (StoppingCriterion.SATISFICED,
                                     StoppingCriterion.BUDGET)

    def test_child_answer_surfaces_without_parent_handler(self):
        child = BasicDesignCycle(
            "child", handlers={Stage.DESIGN: always_answer}, budget=20)
        parent = BasicDesignCycle("parent", handlers={}, budget=20)
        op = OverallProcess(parent, children={Stage.IMPLEMENTATION: child})
        result = op.run()
        assert result.stopped_by is StoppingCriterion.SATISFICED
        assert result.answers  # the child's answer became the parent's

    def test_non_expandable_stage_rejected(self):
        child = BasicDesignCycle("child", handlers={}, budget=5)
        parent = BasicDesignCycle("parent", handlers={}, budget=5)
        with pytest.raises(ValueError):
            OverallProcess(parent, children={Stage.DESIGN: child})

    def test_parent_handlers_restored_after_run(self):
        child = BasicDesignCycle(
            "child", handlers={Stage.DESIGN: always_answer}, budget=5)
        parent = BasicDesignCycle("parent", handlers={}, budget=5)
        op = OverallProcess(parent, children={Stage.IMPLEMENTATION: child})
        op.run()
        assert Stage.IMPLEMENTATION not in parent.handlers

    def test_child_results_collected_in_context(self):
        child = BasicDesignCycle(
            "child", handlers={Stage.DESIGN: always_answer}, budget=20)
        parent = BasicDesignCycle("parent", handlers={}, budget=9)
        op = OverallProcess(parent, children={Stage.IMPLEMENTATION: child})
        context = {}
        op.run(context)
        assert Stage.IMPLEMENTATION in context["children"]
        child_result = context["children"][Stage.IMPLEMENTATION][0]
        assert child_result.answers
