"""Tests for problem-finding (§3.4): morphology and source collection."""

import pytest

from repro.core import DesignSpace, Dimension
from repro.core.problemfinding import (
    KnownSystem,
    MorphologicalField,
    ProblemCollector,
    ProblemStatement,
)


def p2p_space():
    return DesignSpace([
        Dimension("topology", ("centralized", "p2p", "hybrid")),
        Dimension("incentive", ("none", "tit-for-tat", "credit")),
        Dimension("discovery", ("tracker", "dht")),
    ])


def known_systems():
    return [
        KnownSystem("bittorrent", (("topology", "p2p"),
                                   ("incentive", "tit-for-tat"),
                                   ("discovery", "tracker"))),
        KnownSystem("bittorrent-dht", (("topology", "p2p"),
                                       ("incentive", "tit-for-tat"),
                                       ("discovery", "dht"))),
        KnownSystem("napster", (("topology", "centralized"),)),
    ]


class TestMorphologicalField:
    def test_coverage_counts_partial_assignments(self):
        field = MorphologicalField(p2p_space(), known_systems())
        # napster covers all centralized cells: 1×3×2 = 6; bittorrent two
        # specific cells -> 8 of 18 occupied.
        assert field.coverage_fraction() == pytest.approx(8 / 18)

    def test_gaps_are_the_complement(self):
        field = MorphologicalField(p2p_space(), known_systems())
        gaps = field.gaps()
        assert len(gaps) == 18 - 8
        for candidate in gaps:
            assert not field.occupied(candidate)

    def test_find_problems_tagged_p5(self):
        field = MorphologicalField(p2p_space(), known_systems())
        problems = field.find_problems(max_problems=3)
        assert len(problems) == 3
        for problem in problems:
            assert problem.archetype == "P5"
            assert problem.source == "morphological-analysis"
            assert problem.niche is not None

    def test_unknown_dimension_rejected(self):
        field = MorphologicalField(p2p_space())
        with pytest.raises(KeyError):
            field.add_system(KnownSystem("x", (("blockchain", "yes"),)))

    def test_unknown_option_rejected(self):
        field = MorphologicalField(p2p_space())
        with pytest.raises(ValueError):
            field.add_system(KnownSystem("x", (("topology", "mesh"),)))

    def test_fully_covered_field_has_no_problems(self):
        space = DesignSpace([Dimension("a", ("x", "y"))])
        field = MorphologicalField(space, [KnownSystem("everything", ())])
        assert field.coverage_fraction() == 1.0
        assert field.find_problems() == []

    def test_too_large_field_rejected(self):
        space = DesignSpace([
            Dimension(f"d{i}", tuple(str(j) for j in range(10)))
            for i in range(7)
        ])
        field = MorphologicalField(space)
        with pytest.raises(ValueError, match="too large"):
            field.gaps()


class TestProblemStatement:
    def test_archetype_validated(self):
        with pytest.raises(ValueError):
            ProblemStatement("x", archetype="P9", source="S1")

    def test_source_validated(self):
        with pytest.raises(ValueError):
            ProblemStatement("x", archetype="P1", source="S9")


class TestProblemCollector:
    def test_collects_by_source(self):
        collector = ProblemCollector()
        collector.from_study("flashcrowds degrade downloads", "P2",
                             detail="observed in [66]")
        collector.from_experts("legacy MR clusters need elasticity", "P3")
        collector.from_own_experiments("portfolio sim cost grows", "P1")
        assert len(collector.problems) == 3
        assert collector.by_archetype("P2")[0].source == "S1"

    def test_source_archetype_compatibility_enforced(self):
        collector = ProblemCollector()
        # P5 problems are found by morphology, not by expert interviews.
        with pytest.raises(ValueError):
            collector.from_experts("an unexplored niche", "P5")
