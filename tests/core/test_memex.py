"""Tests for the Distributed Systems Memex (Challenge C6)."""

import pytest

from repro.core import DesignDocument, Stage
from repro.core.memex import DistributedSystemsMemex, MemexEntry


def design_doc(name="graphalytics", with_events=True):
    doc = DesignDocument(problem=name)
    if with_events:
        doc.log(0, Stage.FORMULATE_REQUIREMENTS, "executed",
                note="benchmark must cover P, A, and D")
        doc.log(0, Stage.DESIGN, "executed", note="PAD sweep harness")
    return doc


class TestIngestion:
    def test_preserve_design_with_provenance(self):
        memex = DistributedSystemsMemex()
        entry = memex.preserve_design(design_doc(), year=2016,
                                      domain="graph-processing",
                                      keywords=["benchmark", "pad"])
        assert entry.has_provenance
        assert len(memex) == 1

    def test_duplicate_rejected(self):
        memex = DistributedSystemsMemex()
        memex.preserve_design(design_doc(), 2016, "graphs")
        with pytest.raises(ValueError):
            memex.preserve_design(design_doc(), 2016, "graphs")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            MemexEntry(kind="meme", name="x", year=2020, domain="d")

    def test_preserve_trace_header(self):
        from repro.workload import TraceArchive
        archive = TraceArchive("p2p-2010", domain="p2p")
        archive.add(0.0, "join")
        memex = DistributedSystemsMemex()
        entry = memex.preserve_trace(archive.header(), year=2010,
                                     keywords=["bittorrent"])
        assert entry.kind == "trace"
        assert entry.domain == "p2p"


class TestSearch:
    def _memex(self):
        memex = DistributedSystemsMemex()
        memex.preserve_design(design_doc("btworld"), 2010, "p2p",
                              ["monitoring"])
        memex.preserve_design(design_doc("graphalytics"), 2016,
                              "graph-processing", ["benchmark"])
        memex.preserve_design(design_doc("fission-wf"), 2018,
                              "serverless", ["workflows", "benchmark"])
        return memex

    def test_search_by_keyword(self):
        hits = self._memex().search(keyword="benchmark")
        assert [e.name for e in hits] == ["graphalytics", "fission-wf"]

    def test_search_by_domain_and_era(self):
        hits = self._memex().search(domain="p2p", era=(2005, 2012))
        assert [e.name for e in hits] == ["btworld"]
        assert self._memex().search(domain="p2p", era=(2015, 2020)) == []

    def test_search_by_kind(self):
        memex = self._memex()
        assert len(memex.search(kind="design")) == 3
        assert memex.search(kind="trace") == []

    def test_domains_listed(self):
        assert self._memex().domains() == ["graph-processing", "p2p",
                                           "serverless"]


class TestHeritageReport:
    def test_gaps_and_provenance_detected(self):
        memex = DistributedSystemsMemex()
        memex.preserve_design(design_doc("early"), 1995, "p2p")
        memex.preserve_design(design_doc("late", with_events=False), 2015,
                              "p2p")
        report = memex.heritage_report(1990, 2019)
        # The 2000s decade has nothing preserved for p2p.
        assert 2000 in report["decade_gaps"]["p2p"]
        assert 1990 not in report["decade_gaps"]["p2p"]
        # The design preserved without decisions is flagged (C6's second
        # loss mode).
        assert report["designs_without_provenance"] == ["late"]
        assert report["provenance_coverage"] == pytest.approx(0.5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            DistributedSystemsMemex().heritage_report(2020, 2010)

    def test_empty_memex_report(self):
        report = DistributedSystemsMemex().heritage_report(2000, 2010)
        assert report["entries"] == 0
        assert report["provenance_coverage"] == 1.0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        memex = DistributedSystemsMemex("test-memex")
        memex.preserve_design(design_doc("btworld"), 2010, "p2p",
                              ["monitoring"])
        memex.preserve_trace({"name": "gta", "domain": "gaming"}, 2012)
        path = memex.save(tmp_path / "memex.jsonl")
        loaded = DistributedSystemsMemex.load(path)
        assert loaded.name == "test-memex"
        assert len(loaded) == 2
        design = loaded.search(kind="design")[0]
        assert design.has_provenance  # provenance survived the round trip
        assert design.payload.events[0].stage == "FORMULATE_REQUIREMENTS"

    def test_truncation_detected(self, tmp_path):
        memex = DistributedSystemsMemex()
        memex.preserve_design(design_doc("a"), 2010, "p2p")
        memex.preserve_design(design_doc("b"), 2011, "p2p")
        path = memex.save(tmp_path / "m.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            DistributedSystemsMemex.load(path)
