"""Tests for the Dorst reasoning model (Figure 5)."""

import pytest

from repro.core import Frame, ReasoningMode, Universe, reason


@pytest.fixture
def universe():
    """A small universe: numbers and arithmetic relationships."""
    u = Universe()
    for name, value in [("two", 2), ("three", 3), ("five", 5)]:
        u.add_concept(name, value)
    u.add_relationship("add", lambda a, b: a + b)
    u.add_relationship("mul", lambda a, b: a * b)
    u.add_relationship("sub", lambda a, b: a - b)
    return u


class TestDeduction:
    def test_computes_outcome_from_what_and_how(self, universe):
        result = reason(universe, ReasoningMode.DEDUCTION,
                        what=("two", "three"), how="add")
        assert result.solved
        assert result.frames[0].outcome == 5
        assert result.examined == 1

    def test_requires_both_inputs(self, universe):
        with pytest.raises(ValueError):
            reason(universe, ReasoningMode.DEDUCTION, what=("two",))


class TestInduction:
    def test_finds_relationship_explaining_outcome(self, universe):
        result = reason(universe, ReasoningMode.INDUCTION,
                        what=("two", "three"), outcome=6)
        assert result.solved
        assert [f.how for f in result.frames] == ["mul"]

    def test_multiple_explanations_possible(self, universe):
        # 2+3=5 and concept five... only 'add' among relationships gives 5.
        result = reason(universe, ReasoningMode.INDUCTION,
                        what=("two", "three"), outcome=5)
        assert {f.how for f in result.frames} == {"add"}

    def test_no_explanation(self, universe):
        result = reason(universe, ReasoningMode.INDUCTION,
                        what=("two", "three"), outcome=1000)
        assert not result.solved
        assert result.examined == 3  # all relationships tried


class TestProblemSolvingAbduction:
    def test_finds_concepts_for_outcome(self, universe):
        result = reason(universe, ReasoningMode.ABDUCTION_PROBLEM_SOLVING,
                        how="add", outcome=5)
        assert result.solved
        whats = {f.what for f in result.frames}
        assert ("two", "three") in whats
        assert ("three", "two") in whats

    def test_requires_how(self, universe):
        with pytest.raises(ValueError):
            reason(universe, ReasoningMode.ABDUCTION_PROBLEM_SOLVING,
                   outcome=5)


class TestDesignAbduction:
    def test_searches_full_product_space(self, universe):
        result = reason(universe, ReasoningMode.ABDUCTION_DESIGN, outcome=6)
        assert result.solved
        # mul(two, three) and mul(three, two) both qualify; also sub? 2-3=-1 no.
        assert all(f.outcome == 6 for f in result.frames)

    def test_design_abduction_costs_more_than_other_modes(self, universe):
        """The formal core of 'design is different': the search space is
        the product of the induction and problem-solving spaces."""
        design = reason(universe, ReasoningMode.ABDUCTION_DESIGN, outcome=5)
        induction = reason(universe, ReasoningMode.INDUCTION,
                           what=("two", "three"), outcome=5)
        ps = reason(universe, ReasoningMode.ABDUCTION_PROBLEM_SOLVING,
                    how="add", outcome=5)
        assert design.examined > induction.examined
        assert design.examined > ps.examined
        assert design.examined == len(universe.relationships) * len(
            universe.concept_tuples(2))

    def test_max_frames_caps_search(self, universe):
        result = reason(universe, ReasoningMode.ABDUCTION_DESIGN, outcome=5,
                        max_frames=1)
        assert len(result.frames) == 1


class TestUnreasoning:
    def test_accepts_anything_without_evaluation(self, universe):
        result = reason(universe, ReasoningMode.UNREASONING,
                        outcome="alternative facts")
        assert result.solved
        assert result.examined == 0  # zero evidential work

    def test_unreasoning_frame_content(self, universe):
        result = reason(universe, ReasoningMode.UNREASONING,
                        what=("x",), how="y", outcome="z")
        assert result.frames[0] == Frame(what=("x",), how="y", outcome="z")


class TestUniverse:
    def test_concept_tuples_arity(self, universe):
        assert len(universe.concept_tuples(1)) == 3
        assert len(universe.concept_tuples(2)) == 9
        assert universe.concept_tuples(0) == [()]

    def test_apply(self, universe):
        assert universe.apply("mul", ("three", "five")) == 15

    def test_fluent_construction(self):
        u = Universe().add_concept("a", 1).add_relationship("id", lambda x: x)
        assert u.apply("id", ("a",)) == 1
