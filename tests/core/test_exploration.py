"""Tests for the exploration processes (Figures 6-7)."""

import pytest

from repro.core import (
    CoEvolvingExploration,
    DesignProblem,
    DesignSpace,
    Dimension,
    FixTheHowExploration,
    FixTheWhatExploration,
    FreeExploration,
    RuggedLandscape,
    compare_explorers,
)
from repro.sim import RandomStreams


def make_space(n_dims=6, n_opts=4):
    return DesignSpace([
        Dimension(f"d{i}", tuple(f"o{j}" for j in range(n_opts)))
        for i in range(n_dims)
    ])


def make_problem(seed=0, k=2, threshold=0.7, epoch=0):
    space = make_space()
    landscape = RuggedLandscape(space, seed=seed, k=k, epoch=epoch)
    return DesignProblem(f"p{seed}e{epoch}", space, quality=landscape,
                         satisfice_threshold=threshold)


@pytest.fixture
def rng():
    return RandomStreams(seed=11).get("exploration")


class TestFreeExploration:
    def test_respects_budget(self, rng):
        problem = make_problem()
        result = FreeExploration(rng).explore(problem, budget=50)
        assert result.evaluations == 50
        assert problem.evaluations == 50

    def test_finds_solutions_on_easy_problem(self, rng):
        problem = make_problem(threshold=0.4)
        result = FreeExploration(rng).explore(problem, budget=100)
        assert result.succeeded
        assert all(q >= 0.4 for _, q in result.solutions)

    def test_struggles_on_hard_threshold(self, rng):
        problem = make_problem(threshold=0.999)
        result = FreeExploration(rng).explore(problem, budget=100)
        assert not result.succeeded
        assert result.failures == 100
        assert result.best_candidate is not None  # best-so-far still tracked


class TestFixTheWhat:
    def test_respects_budget(self, rng):
        problem = make_problem()
        explorer = FixTheWhatExploration(rng, fix_fraction=0.5)
        result = explorer.explore(problem, budget=60)
        assert result.evaluations <= 60

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            FixTheWhatExploration(rng, fix_fraction=1.0)

    def test_fixing_narrows_the_space(self, rng):
        """All post-scout candidates share the fixed options."""
        problem = make_problem(threshold=0.0)  # everything satisfices
        explorer = FixTheWhatExploration(rng, fix_fraction=0.5,
                                         scout_budget=4)
        result = explorer.explore(problem, budget=40)
        # With threshold 0, every post-scout candidate is a solution.
        post_scout = result.solutions
        assert post_scout
        # Fixed dimensions -> among solutions, at least half the dimensions
        # show a single value each.
        dims = [d.name for d in problem.space.dimensions]
        constant_dims = sum(
            1 for d in dims
            if len({c[d] for c, _ in post_scout}) == 1)
        assert constant_dims >= len(dims) // 2


class TestFixTheHow:
    def test_hill_climbing_beats_random_on_smooth_landscape(self):
        streams = RandomStreams(seed=21)
        wins = 0
        reps = 10
        for rep in range(reps):
            space = make_space(n_dims=8, n_opts=5)
            landscape = RuggedLandscape(space, seed=100 + rep, k=0)
            free_problem = DesignProblem("a", space, quality=landscape,
                                         satisfice_threshold=0.99)
            how_problem = DesignProblem("b", space, quality=landscape,
                                        satisfice_threshold=0.99)
            free = FreeExploration(streams.get(f"free{rep}")).explore(
                free_problem, budget=120)
            how = FixTheHowExploration(
                streams.get(f"how{rep}"), restarts=3).explore(
                    how_problem, budget=120)
            if how.best_quality > free.best_quality:
                wins += 1
        assert wins >= 7, f"hill climbing won only {wins}/{reps}"

    def test_restart_validation(self, rng):
        with pytest.raises(ValueError):
            FixTheHowExploration(rng, restarts=0)

    def test_budget_respected(self, rng):
        problem = make_problem()
        result = FixTheHowExploration(rng).explore(problem, budget=30)
        assert result.evaluations <= 30


class TestCoEvolving:
    def test_poses_multiple_problems_on_stall(self, rng):
        problem = make_problem(threshold=0.98)  # very hard -> stalls

        def evolve(prob, idx):
            return make_problem(seed=0, threshold=0.98, epoch=idx + 1)

        explorer = CoEvolvingExploration(
            rng, inner=FreeExploration(rng), evolve_problem=evolve,
            max_problems=4, stall_iterations=1)
        result = explorer.explore(problem, budget=200)
        assert result.problems_posed >= 2
        assert len(result.per_problem_best) == result.problems_posed

    def test_stops_when_evolve_returns_none(self, rng):
        problem = make_problem(threshold=0.99)
        explorer = CoEvolvingExploration(
            rng, inner=FreeExploration(rng),
            evolve_problem=lambda p, i: None, max_problems=10,
            stall_iterations=1)
        result = explorer.explore(problem, budget=500)
        assert result.problems_posed == 1

    def test_keeps_best_across_problems(self, rng):
        problem = make_problem(threshold=0.5)

        def evolve(prob, idx):
            return make_problem(seed=0, threshold=0.5, epoch=idx + 1)

        explorer = CoEvolvingExploration(
            rng, inner=FreeExploration(rng), evolve_problem=evolve,
            max_problems=3, stall_iterations=1)
        result = explorer.explore(problem, budget=300)
        assert result.best_quality == max(
            q for _, q in result.solutions) if result.solutions else True

    def test_coevolving_finds_more_solutions_on_hard_problems(self):
        """Figure 7's claim: when a problem is too hard, evolving the
        problem yields solutions the fixed-problem process cannot find."""
        streams = RandomStreams(seed=31)
        free_total, coevolve_total = 0, 0
        for rep in range(6):
            # A hard problem: high threshold on this epoch's landscape...
            hard = make_problem(seed=200 + rep, threshold=0.92)
            free = FreeExploration(streams.get(f"f{rep}"))
            free_total += len(free.explore(hard, budget=300).solutions)

            # ...but evolved epochs can have easier optima.
            hard2 = make_problem(seed=200 + rep, threshold=0.92)

            def evolve(prob, idx, rep=rep):
                return make_problem(seed=200 + rep, threshold=0.92,
                                    epoch=idx + 1)

            co = CoEvolvingExploration(
                streams.get(f"c{rep}"),
                inner=FreeExploration(streams.get(f"ci{rep}")),
                evolve_problem=evolve, max_problems=6, stall_iterations=1)
            coevolve_total += len(co.explore(hard2, budget=300).solutions)
        assert coevolve_total >= free_total


class TestCompareExplorers:
    def test_structure_of_comparison(self, rng):
        streams = RandomStreams(seed=41)
        explorers = {
            "free": FreeExploration(streams.get("free")),
            "fix-how": FixTheHowExploration(streams.get("how")),
        }
        table = compare_explorers(
            lambda rep: make_problem(seed=rep, threshold=0.6),
            explorers, budget=60, repetitions=4)
        assert set(table) == {"free", "fix-how"}
        for row in table.values():
            assert 0 <= row["success_rate"] <= 1
            assert row["mean_problems_posed"] == 1.0

    def test_yield_per_evaluation(self, rng):
        problem = make_problem(threshold=0.3)
        result = FreeExploration(rng).explore(problem, budget=50)
        assert result.yield_per_evaluation == len(result.solutions) / 50
