"""Tests for the framework catalogs (Tables 1-3) and dissemination (§3.6)."""

import pytest

from repro.core import (
    ALTSHULLER_LEVELS,
    Artifact,
    ArtifactKind,
    CHALLENGES,
    CreativityLevel,
    DisseminationPlan,
    FAIR_CHECKLIST,
    FRAMEWORK_OVERVIEW,
    PERFORMANCE_BASELINES,
    PRINCIPLES,
    PROBLEM_ARCHETYPES,
    PROBLEM_SOURCES,
    assess_creativity,
    challenges_for_principle,
)


class TestPrinciples:
    def test_eight_principles(self):
        assert len(PRINCIPLES) == 8
        assert set(PRINCIPLES) == {f"P{i}" for i in range(1, 9)}

    def test_category_distribution_matches_table2(self):
        by_cat = {}
        for p in PRINCIPLES.values():
            by_cat.setdefault(p.category, []).append(p.index)
        assert by_cat["Highest"] == ["P1"]
        assert sorted(by_cat["Systems"]) == ["P2", "P3", "P4"]
        assert sorted(by_cat["Peopleware"]) == ["P5", "P6"]
        assert sorted(by_cat["Methodology"]) == ["P7", "P8"]

    def test_highest_principle_is_design_of_design(self):
        assert "design" in PRINCIPLES["P1"].statement.lower()
        assert PRINCIPLES["P1"].key_aspects == "design of design"


class TestChallenges:
    def test_ten_challenges(self):
        assert len(CHALLENGES) == 10
        assert set(CHALLENGES) == {f"C{i}" for i in range(1, 11)}

    def test_every_challenge_links_valid_principles(self):
        for c in CHALLENGES.values():
            assert c.principles, f"{c.index} links no principle"
            for p in c.principles:
                assert p in PRINCIPLES, f"{c.index} links unknown {p}"

    def test_table3_principle_column(self):
        assert CHALLENGES["C5"].principles == ("P3", "P4")
        assert CHALLENGES["C8"].principles == ("P5", "P6", "P7")
        assert CHALLENGES["C10"].principles == ("P7",)

    def test_challenges_for_principle(self):
        c_for_p1 = {c.index for c in challenges_for_principle("P1")}
        assert c_for_p1 == {"C1", "C2", "C3"}
        c_for_p7 = {c.index for c in challenges_for_principle("P7")}
        assert c_for_p7 == {"C8", "C9", "C10"}

    def test_unknown_principle_rejected(self):
        with pytest.raises(KeyError):
            challenges_for_principle("P99")

    def test_category_counts(self):
        cats = {}
        for c in CHALLENGES.values():
            cats[c.category] = cats.get(c.category, 0) + 1
        assert cats == {"Highest": 3, "Systems": 2, "Peopleware": 2,
                        "Methodology": 3}


class TestFrameworkOverview:
    def test_table1_rows(self):
        assert set(FRAMEWORK_OVERVIEW) == {"Who?", "What?", "How?"}
        assert "Stakeholders" in FRAMEWORK_OVERVIEW["Who?"]
        assert len(FRAMEWORK_OVERVIEW["How?"]) == 5

    def test_central_paradigm_statement(self):
        assert "different from science and engineering" in (
            FRAMEWORK_OVERVIEW["What?"]["Central Paradigm"])


class TestProblemArchetypes:
    def test_five_archetypes(self):
        assert set(PROBLEM_ARCHETYPES) == {f"P{i}" for i in range(1, 6)}

    def test_sources_wired(self):
        for idx in ("P1", "P2", "P3"):
            assert set(PROBLEM_ARCHETYPES[idx].finding) == {"S1", "S2", "S3"}
        assert PROBLEM_ARCHETYPES["P4"].finding == (
            "empirical-science-process",)

    def test_three_sources(self):
        assert set(PROBLEM_SOURCES) == {"S1", "S2", "S3"}


class TestAltshuller:
    def test_five_levels_described(self):
        assert len(ALTSHULLER_LEVELS) == 5
        assert ALTSHULLER_LEVELS[CreativityLevel.OUTSTANDING].startswith(
            "a completely new ecosystem")

    def test_four_performance_baselines(self):
        assert len(PERFORMANCE_BASELINES) == 4
        assert "random design" in PERFORMANCE_BASELINES

    def test_assessment_ladder(self):
        assert assess_creativity(True, 0.05, False, False) is (
            CreativityLevel.TRIVIAL)
        assert assess_creativity(True, 0.2, False, False) is (
            CreativityLevel.NORMAL)
        assert assess_creativity(True, 0.6, False, False) is (
            CreativityLevel.NOVEL)
        assert assess_creativity(False, 0.5, True, False) is (
            CreativityLevel.FUNDAMENTAL)
        assert assess_creativity(False, 0.0, False, True) is (
            CreativityLevel.OUTSTANDING)

    def test_new_ecosystem_dominates(self):
        assert assess_creativity(True, 0.1, True, True) is (
            CreativityLevel.OUTSTANDING)

    def test_extent_validation(self):
        with pytest.raises(ValueError):
            assess_creativity(True, 1.5, False, False)


class TestDissemination:
    def test_artifact_checklist_lifecycle(self):
        artifact = Artifact(ArtifactKind.SOFTWARE, "graphalytics")
        assert not artifact.release_ready
        for item in artifact.checklist:
            artifact.check(item)
        assert artifact.release_ready
        assert artifact.completeness == 1.0

    def test_unknown_checklist_item_rejected(self):
        artifact = Artifact(ArtifactKind.ARTICLE, "paper")
        with pytest.raises(KeyError):
            artifact.check("has nice fonts")

    def test_data_artifact_uses_fair(self):
        artifact = Artifact(ArtifactKind.DATA, "p2p-trace-archive")
        assert artifact.checklist == FAIR_CHECKLIST

    def test_plan_covers_all_kinds(self):
        plan = DisseminationPlan("graphalytics")
        plan.add(ArtifactKind.ARTICLE, "PVLDB paper")
        assert not plan.covers_all_kinds
        plan.add(ArtifactKind.SOFTWARE, "graphalytics 1.0")
        plan.add(ArtifactKind.DATA, "benchmark datasets")
        assert plan.covers_all_kinds

    def test_release_report(self):
        plan = DisseminationPlan("x")
        artifact = plan.add(ArtifactKind.ARTICLE, "paper")
        artifact.check(artifact.checklist[0])
        report = plan.release_report()
        assert report["paper"]["ready"] is False
        assert 0 < report["paper"]["completeness"] < 1
        assert len(report["paper"]["missing"]) == len(artifact.checklist) - 1
