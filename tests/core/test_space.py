"""Tests for design spaces, problems, and rugged landscapes."""

import pytest

from repro.core import (
    Candidate,
    DesignProblem,
    DesignSpace,
    Dimension,
    ProblemStructure,
    RuggedLandscape,
    classify_problem,
)
from repro.sim import RandomStreams


def small_space():
    return DesignSpace([
        Dimension("storage", ("local", "distributed", "in-memory")),
        Dimension("scheduler", ("fifo", "fair", "backfill")),
        Dimension("transport", ("tcp", "rdma")),
    ])


class TestDesignSpace:
    def test_size(self):
        assert small_space().size == 3 * 3 * 2

    def test_candidate_validation(self):
        space = small_space()
        c = space.candidate(storage="local", scheduler="fifo",
                            transport="tcp")
        assert c["storage"] == "local"
        with pytest.raises(ValueError):
            space.candidate(storage="local", scheduler="fifo")  # missing
        with pytest.raises(ValueError):
            space.candidate(storage="floppy", scheduler="fifo",
                            transport="tcp")  # bad option

    def test_neighbors_differ_in_one_dimension(self):
        space = small_space()
        c = space.candidate(storage="local", scheduler="fifo",
                            transport="tcp")
        neighbors = space.neighbors(c)
        assert len(neighbors) == (3 - 1) + (3 - 1) + (2 - 1)
        for n in neighbors:
            diffs = sum(1 for d in ("storage", "scheduler", "transport")
                        if n[d] != c[d])
            assert diffs == 1

    def test_all_candidates_enumerates_whole_space(self):
        space = small_space()
        candidates = list(space.all_candidates())
        assert len(candidates) == space.size
        assert len(set(candidates)) == space.size

    def test_restrict_pins_dimension(self):
        space = small_space()
        sub = space.restrict({"transport": "rdma"})
        assert sub.size == 9
        for c in sub.all_candidates():
            assert c["transport"] == "rdma"

    def test_restrict_invalid_option_rejected(self):
        with pytest.raises(ValueError):
            small_space().restrict({"transport": "pigeon"})

    def test_random_candidate_is_valid(self):
        space = small_space()
        rng = RandomStreams(seed=1).get("space")
        for _ in range(20):
            c = space.random_candidate(rng)
            for dim in space.dimensions:
                assert c[dim.name] in dim.options

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([Dimension("a", ("x",)), Dimension("a", ("y",))])

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            Dimension("a", ())

    def test_candidate_with_choice(self):
        space = small_space()
        c = space.candidate(storage="local", scheduler="fifo",
                            transport="tcp")
        c2 = c.with_choice("transport", "rdma")
        assert c2["transport"] == "rdma"
        assert c["transport"] == "tcp"  # immutability
        with pytest.raises(KeyError):
            c.with_choice("nonexistent", "x")


class TestDesignProblem:
    def test_evaluate_counts_and_validates(self):
        space = small_space()
        problem = DesignProblem("p", space, quality=lambda c: 0.5)
        c = space.candidate(storage="local", scheduler="fifo",
                            transport="tcp")
        assert problem.evaluate(c) == 0.5
        assert problem.evaluations == 1
        assert not problem.satisfices(c)
        assert problem.evaluations == 2

    def test_out_of_range_quality_rejected(self):
        space = small_space()
        problem = DesignProblem("p", space, quality=lambda c: 2.0)
        c = space.candidate(storage="local", scheduler="fifo",
                            transport="tcp")
        with pytest.raises(ValueError):
            problem.evaluate(c)


class TestClassification:
    def _base(self, **overrides):
        space = small_space()
        kwargs = dict(name="p", space=space, quality=lambda c: 1.0)
        kwargs.update(overrides)
        return DesignProblem(**kwargs)

    def test_well_structured_by_default(self):
        assert classify_problem(self._base()) is (
            ProblemStructure.WELL_STRUCTURED)

    def test_missing_simon_criterion_is_ill_structured(self):
        problem = self._base(has_complete_domain_knowledge=False)
        assert problem.structure() is ProblemStructure.ILL_STRUCTURED

    def test_intractable_is_ill_structured(self):
        problem = self._base(is_tractable=False)
        assert problem.structure() is ProblemStructure.ILL_STRUCTURED

    def test_wickedness_dominates(self):
        problem = self._base(has_final_formulation=False)
        assert problem.structure() is ProblemStructure.WICKED
        problem = self._base(stakeholders_agree_on_success=False,
                             has_complete_domain_knowledge=False)
        assert problem.structure() is ProblemStructure.WICKED


class TestRuggedLandscape:
    def _space(self, n_dims=6, n_opts=4):
        return DesignSpace([
            Dimension(f"d{i}", tuple(f"o{j}" for j in range(n_opts)))
            for i in range(n_dims)
        ])

    def test_deterministic(self):
        space = self._space()
        l1 = RuggedLandscape(space, seed=5, k=2)
        l2 = RuggedLandscape(space, seed=5, k=2)
        rng = RandomStreams(seed=9).get("x")
        for _ in range(10):
            c = space.random_candidate(rng)
            assert l1(c) == l2(c)

    def test_values_in_unit_interval(self):
        space = self._space()
        landscape = RuggedLandscape(space, seed=1, k=3)
        rng = RandomStreams(seed=2).get("x")
        for _ in range(50):
            assert 0.0 <= landscape(space.random_candidate(rng)) <= 1.0

    def test_epoch_shift_changes_landscape(self):
        space = self._space()
        l0 = RuggedLandscape(space, seed=1, k=2)
        l1 = l0.shifted()
        rng = RandomStreams(seed=3).get("x")
        candidates = [space.random_candidate(rng) for _ in range(20)]
        assert any(abs(l0(c) - l1(c)) > 1e-6 for c in candidates)
        assert l1.epoch == 1

    def test_smooth_landscape_k0_is_separable(self):
        """With k=0 each dimension contributes independently: improving one
        dimension never hurts another, so greedy per-dimension optimization
        reaches the global optimum."""
        space = self._space(n_dims=4, n_opts=3)
        landscape = RuggedLandscape(space, seed=11, k=0)
        # Greedy: optimize dimension by dimension.
        current = next(iter(space.all_candidates()))
        for dim in space.dimensions:
            best_opt = max(
                dim.options,
                key=lambda o: landscape(current.with_choice(dim.name, o)))
            current = current.with_choice(dim.name, best_opt)
        exhaustive_best = max(landscape(c) for c in space.all_candidates())
        assert landscape(current) == pytest.approx(exhaustive_best)

    def test_invalid_k_rejected(self):
        space = self._space(n_dims=3)
        with pytest.raises(ValueError):
            RuggedLandscape(space, k=3)
        with pytest.raises(ValueError):
            RuggedLandscape(space, k=-1)

    def test_best_quality_exact_for_small_space(self):
        space = self._space(n_dims=3, n_opts=3)
        landscape = RuggedLandscape(space, seed=4, k=1)
        exact = max(landscape(c) for c in space.all_candidates())
        assert landscape.best_quality() == pytest.approx(exact)
